//! Head-to-head: MapZero vs the baseline compilers (exact
//! branch-and-bound "ILP", simulated annealing, label-guided "LISA") on
//! a few kernels, the §4.2/§4.3 experiment in miniature.
//!
//! ```text
//! cargo run --release --example compare_mappers
//! ```

use mapzero::prelude::*;
use std::time::Duration;

fn main() {
    let limit = Duration::from_secs(20);
    let cgra = presets::hycube();
    let kernels = ["sum", "mac", "conv2", "accumulate"];

    let mut mapzero = Compiler::new(MapZeroConfig::fast_test());
    let mut ilp = ExactMapper::default();
    let mut sa = SaMapper::default();
    let mut lisa = LisaMapper::default();

    println!("fabric: {}  (time limit {limit:?} per attempt)\n", cgra.name());
    println!(
        "{:<12} {:<9} {:>4} {:>5} {:>10} {:>12}",
        "kernel", "mapper", "MII", "II", "time", "backtracks*"
    );
    for name in kernels {
        let dfg = suite::by_name(name).expect("kernel exists");
        let mut reports: Vec<MapReport> = Vec::new();
        reports.push(mapzero.map(&dfg, &cgra).expect("mappable"));
        for mapper in [&mut ilp as &mut dyn Mapper, &mut sa, &mut lisa] {
            reports.push(mapper.map(&dfg, &cgra, limit).expect("mappable"));
        }
        for r in reports {
            let ii = r
                .achieved_ii()
                .map_or_else(|| "--".to_owned(), |ii| ii.to_string());
            println!(
                "{:<12} {:<9} {:>4} {:>5} {:>10.1?} {:>12}",
                r.kernel, r.mapper, r.mii, ii, r.elapsed, r.backtracks
            );
        }
        println!();
    }
    println!("* annealing steps for the SA-family mappers");
}
