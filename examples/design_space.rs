//! Design-space exploration (§4.8): sweep interconnect styles and
//! memory-port coverage for a 4×4 fabric against a small workload, then
//! print the area/performance Pareto front.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mapzero::core::dse::{explore, pareto_count, DseConfig};
use mapzero::prelude::*;
use std::time::Duration;

fn main() {
    let workload: Vec<Dfg> = ["sum", "mac", "conv2"]
        .iter()
        .map(|n| suite::by_name(n).expect("kernel exists"))
        .collect();
    let config = DseConfig { rows: 4, cols: 4, time_limit: Duration::from_secs(5), ..Default::default() };

    // The exact mapper scores candidates: deterministic and optimal-II.
    let mut mapper = ExactMapper::default();
    println!(
        "exploring {} fabric candidates against {} kernels …\n",
        mapzero::core::dse::candidates(&config).len(),
        workload.len()
    );
    let points = explore(&workload, &config, &mut mapper);
    let front = pareto_count(&points);

    println!("{:<14} {:>7} {:>9} {:>7}  interconnects / memory", "fabric", "area", "sum(II)", "mapped");
    for (i, p) in points.iter().enumerate() {
        let marker = if i < front { "*" } else { " " };
        let styles: Vec<String> =
            p.cgra.interconnects().iter().map(ToString::to_string).collect();
        let mem = p
            .cgra
            .pe_ids()
            .filter(|&pe| p.cgra.pe(pe).capability.memory)
            .count();
        println!(
            "{marker}{:<13} {:>7.1} {:>9.1} {:>5}/{}  {} | {} mem ports",
            p.cgra.name(),
            p.area,
            p.total_ii,
            p.mapped,
            workload.len(),
            styles.join("+"),
            mem
        );
    }
    println!("\n* = Pareto-optimal (area vs total II); {front} points on the front");
}
