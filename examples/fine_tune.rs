//! Per-kernel fine-tuning (§3.6.2): start from a compiler's network,
//! fine-tune it on one particular DFG, and compare backtracking before
//! and after — "When higher quality solutions are expected, the
//! pre-trained agent can be further fine-tuned on the particular DFG."
//!
//! ```text
//! cargo run --release --example fine_tune
//! ```

use mapzero::core::checkpoint::save_compiler;
use mapzero::prelude::*;
use std::time::Duration;

fn main() {
    let cgra = presets::hrea();
    let dfg = suite::by_name("accumulate").expect("kernel exists");
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());

    let before = compiler.map(&dfg, &cgra).expect("mappable");
    println!(
        "before fine-tuning: II {:?} in {:.1?} with {} backtracks",
        before.achieved_ii(),
        before.elapsed,
        before.backtracks
    );

    let config = TrainConfig {
        epochs: 4,
        episodes_per_epoch: 4,
        episode_deadline: Duration::from_secs(10),
        ..TrainConfig::fast_test()
    };
    println!("\nfine-tuning on `{}` …", dfg.name());
    let metrics = compiler.fine_tune(&dfg, &cgra, config).expect("fine-tuning converges");
    for e in &metrics.epochs {
        println!(
            "  epoch {}: loss {:.3}, success rate {:.2}",
            e.epoch, e.total_loss, e.success_rate
        );
    }

    let after = compiler.map(&dfg, &cgra).expect("mappable");
    println!(
        "\nafter fine-tuning:  II {:?} in {:.1?} with {} backtracks",
        after.achieved_ii(),
        after.elapsed,
        after.backtracks
    );

    // Persist the tuned network for later sessions.
    let dir = std::env::temp_dir().join("mapzero_finetuned");
    match save_compiler(&compiler, &dir) {
        Ok(n) => println!("saved {n} network(s) to {}", dir.display()),
        Err(e) => eprintln!("checkpoint failed: {e}"),
    }
}
