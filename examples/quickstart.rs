//! Quickstart: map one benchmark kernel onto one CGRA and print the
//! resulting placement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mapzero::prelude::*;

fn main() {
    // Pick a kernel from the paper's Table 2 suite and a Table 1 fabric.
    let dfg = suite::by_name("mac").expect("kernel exists");
    let cgra = presets::hrea();
    println!(
        "kernel `{}`: {} ops, {} deps; fabric `{}`: {}x{} PEs",
        dfg.name(),
        dfg.node_count(),
        dfg.edge_count(),
        cgra.name(),
        cgra.rows(),
        cgra.cols()
    );

    // The compiler starts at the minimum initiation interval and climbs
    // until a valid mapping exists.
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).expect("instance is mappable");
    let mapping = report.mapping.expect("mac maps onto HReA");

    println!(
        "mapped at II = {} (MII = {}) in {:.1?} with {} backtracks",
        mapping.ii, report.mii, report.elapsed, report.backtracks
    );
    println!("\n node  op       PE   time  slot");
    for u in dfg.node_ids() {
        let p = mapping.placement(u);
        println!(
            " {:>4}  {:<7}  {:<4} {:>4}  {:>4}",
            u.to_string(),
            dfg.node(u).opcode.to_string(),
            p.pe.to_string(),
            p.time,
            p.time % mapping.ii
        );
    }
    let errs = mapping.validate(&dfg, &cgra);
    assert!(errs.is_empty(), "invalid mapping: {errs:?}");
    println!("\nmapping validated: all constraints satisfied");
}
