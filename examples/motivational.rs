//! The paper's motivational case study (Fig. 3): map a 5-node DFG onto
//! the 2×3 fabric whose shaded corner PEs have stronger routing
//! capability, and show how placement choices make or break the
//! mapping.
//!
//! ```text
//! cargo run --release --example motivational
//! ```

use mapzero::core::env::MapEnv;
use mapzero::core::viz;
use mapzero::prelude::*;

fn main() {
    // Fig. 3(b): A feeds B and C; E consumes B, C and D.
    let mut b = DfgBuilder::new("fig3");
    let a = b.node(Opcode::Load);
    let nb = b.node(Opcode::Add);
    let nc = b.node(Opcode::Mul);
    let nd = b.node(Opcode::Const);
    let ne = b.node(Opcode::Add);
    b.edge(a, nb).expect("valid edge");
    b.edge(a, nc).expect("valid edge");
    b.edge(nb, ne).expect("valid edge");
    b.edge(nc, ne).expect("valid edge");
    b.edge(nd, ne).expect("valid edge");
    let dfg = b.finish().expect("valid DFG");

    // Fig. 3(a): 2x3 mesh with extra links on the shaded PEs.
    let cgra = presets::motivational2x3();
    println!("fabric `{}`, II target from the schedule:", cgra.name());
    for p in cgra.pe_ids() {
        println!(
            "  {p}: fan-in {} fan-out {}",
            cgra.in_degree(p),
            cgra.out_degree(p)
        );
    }

    let problem = Problem::new(&dfg, &cgra, 3).expect("schedulable at II=3");

    // Fig. 3(d): a failing placement — A on a weak edge PE starves E.
    let mut bad = MapEnv::new(&problem);
    let fail = try_place(&mut bad, &[0, 1, 3, 2, 4]);
    println!("\nnaive placement (A on pe0):    {} routing failures", fail);

    // Fig. 3(c): a successful placement using the strong corners.
    let mut good = MapEnv::new(&problem);
    let ok = try_place(&mut good, &[1, 3, 0, 2, 4]);
    println!("informed placement (A on pe1): {} routing failures", ok);
    if good.success() {
        let mapping = good.final_mapping().expect("successful episode");
        println!("\n{}", viz::summary(&mapping, &dfg, &cgra));
        println!("{}", viz::ascii_grids(&mapping, &dfg, &cgra));
    }

    // MapZero finds a valid mapping on its own.
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).expect("mappable");
    match report.mapping {
        Some(m) => println!(
            "MapZero found II = {} with {} backtracks in {:.1?}",
            m.ii, report.backtracks, report.elapsed
        ),
        None => println!("MapZero did not find a mapping (unexpected)"),
    }
}

/// Place the nodes (in schedule order) on the given PE ids; returns the
/// number of routing failures.
fn try_place(env: &mut MapEnv<'_>, pes: &[u32]) -> usize {
    let mut failures = 0;
    for &pe in pes {
        if env.done() {
            break;
        }
        let action = PeId(pe);
        if !env.action_mask()[action.index()] {
            failures += 1;
            // Fall back to any legal PE to keep the episode moving.
            let legal = env.legal_actions();
            if let Some(&alt) = legal.first() {
                failures += env.step(alt).failed_routes;
            }
            continue;
        }
        failures += env.step(action).failed_routes;
    }
    failures
}
