//! Build a custom heterogeneous CGRA with the fabric builder, inspect
//! its properties, and map a hand-written DFG onto it — the workflow a
//! CGRA architect would use for design-space exploration (§4.8).
//!
//! ```text
//! cargo run --release --example custom_fabric
//! ```

use mapzero::dfg::dot;
use mapzero::prelude::*;

fn main() {
    // A 4x4 fabric: mesh + diagonal links, memory ports only on the
    // left column, logic units everywhere, one "dead" corner PE that
    // only routes.
    let mut builder = CgraBuilder::new("custom-het", 4, 4)
        .interconnect(Interconnect::Mesh)
        .interconnect(Interconnect::Diagonal)
        .all_capabilities(Capability::COMPUTE);
    for row in 0..4 {
        builder = builder.capability(row, 0, Capability::ALL);
    }
    let cgra = builder.capability(3, 3, Capability::NONE).finish();

    println!("fabric `{}`:", cgra.name());
    println!("  PEs: {}   directed links: {}", cgra.pe_count(), cgra.link_count());
    let caps = cgra.class_capacity();
    println!("  capacity: logic={} arith={} mem={}", caps[0], caps[1], caps[2]);
    println!("  homogeneous: {}", cgra.is_homogeneous());

    // A small stencil-like kernel written by hand.
    let mut b = DfgBuilder::new("stencil3");
    let loads: Vec<NodeId> = (0..3).map(|_| b.node(Opcode::Load)).collect();
    let m0 = b.node(Opcode::Mul);
    let m1 = b.node(Opcode::Mul);
    let s0 = b.node(Opcode::Add);
    let s1 = b.node(Opcode::Add);
    let out = b.node(Opcode::Store);
    b.edge(loads[0], m0).expect("valid edge");
    b.edge(loads[1], m0).expect("valid edge");
    b.edge(loads[1], m1).expect("valid edge");
    b.edge(loads[2], m1).expect("valid edge");
    b.edge(m0, s0).expect("valid edge");
    b.edge(m1, s0).expect("valid edge");
    b.edge(s0, s1).expect("valid edge");
    b.back_edge(s1, s1, 1).expect("valid self-cycle");
    b.edge(s1, out).expect("valid edge");
    let dfg = b.finish().expect("valid DFG");

    println!("\nDFG `{}` in Graphviz DOT:\n{}", dfg.name(), dot::to_dot(&dfg));

    let mii = Problem::mii(&dfg, &cgra).expect("fabric supports all op classes");
    println!("MII on this fabric: {mii}");

    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).expect("mappable");
    match &report.mapping {
        Some(m) => {
            println!("mapped at II = {} ({} routing resources)", m.ii, m.route_cost());
            for u in dfg.node_ids() {
                let p = m.placement(u);
                let pe = cgra.pe(p.pe);
                println!(
                    "  {} ({}) -> ({}, {}) @ t={}",
                    u,
                    dfg.node(u).opcode,
                    pe.row,
                    pe.col,
                    p.time
                );
            }
        }
        None => println!("no mapping found within the II window"),
    }
}
