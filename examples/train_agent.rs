//! Pre-train a MapZero agent on the random-DFG curriculum (§3.6.2),
//! watch the Fig. 12 learning curves, then map an unseen kernel with
//! the trained network.
//!
//! ```text
//! cargo run --release --example train_agent
//! ```

use mapzero::core::network::NetConfig;
use mapzero::prelude::*;
use std::time::Duration;

fn main() {
    let cgra = presets::simple_mesh(4, 4);
    let config = TrainConfig {
        epochs: 6,
        episodes_per_epoch: 4,
        batch_size: 16,
        updates_per_epoch: 4,
        curriculum_nodes: (3, 12),
        episode_deadline: Duration::from_secs(10),
        ..TrainConfig::fast_test()
    };

    println!("pre-training on {} (curriculum: 3-12 node random DFGs)\n", cgra.name());
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "epoch", "total loss", "value loss", "policy loss", "reward", "penalty", "lr"
    );
    let mut trainer = Trainer::new(cgra.clone(), NetConfig::tiny(), config);
    let metrics = trainer.run().expect("curriculum training converges");
    for e in &metrics.epochs {
        println!(
            "{:>5} {:>12.4} {:>12.4} {:>12.4} {:>10.2} {:>10.2} {:>8.5}",
            e.epoch, e.total_loss, e.value_loss, e.policy_loss, e.avg_reward, e.eval_penalty,
            e.lr
        );
    }

    // Use the trained network inside a compiler for an unseen kernel.
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    compiler.install_net(trainer.into_net());
    let dfg = suite::by_name("mac").expect("kernel exists");
    let report = compiler.map(&dfg, &cgra).expect("mappable");
    match report.mapping {
        Some(m) => println!(
            "\nunseen kernel `{}` mapped at II = {} with {} backtracks",
            report.kernel, m.ii, report.backtracks
        ),
        None => println!("\nunseen kernel `{}` did not map (try more training)", report.kernel),
    }
}
