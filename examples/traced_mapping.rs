//! Traced mapping: one compile with telemetry enabled, printing the
//! per-phase budget attribution and headline search counters.
//!
//! ```text
//! cargo run --release --example traced_mapping
//! MAPZERO_TRACE=out.jsonl cargo run --release --example traced_mapping
//! ```
//!
//! With `MAPZERO_TRACE` set, every span (`compile.map`, `mcts.search`,
//! …) is also written as one JSONL line; fold the file with
//! `cargo run -p mapzero-obs --bin trace_summary -- out.jsonl`.

use mapzero::obs;
use mapzero::prelude::*;

fn main() {
    // `MAPZERO_TRACE` installs a JSONL file sink (which also enables
    // telemetry); without it, enable phase timing + metrics explicitly.
    let trace_path = obs::init_from_env();
    obs::set_enabled(true);

    let dfg = suite::by_name("mac").expect("kernel exists");
    let cgra = presets::hycube();
    let mut compiler = Compiler::new(MapZeroConfig::fast_test());
    let report = compiler.map(&dfg, &cgra).expect("instance is mappable");
    let mapping = report.mapping.as_ref().expect("mac maps onto HyCube");

    println!(
        "mapped `{}` on `{}` at II = {} (MII = {}) in {:.1?}\n",
        report.kernel, report.fabric, mapping.ii, report.mii, report.elapsed
    );

    let telemetry = report.telemetry.as_ref().expect("telemetry was enabled");
    print!("{}", obs::summary::render_run(telemetry, report.elapsed));

    if let Some(path) = trace_path {
        // Append the final counter snapshot so the trace file carries
        // the cache hit rates etc. alongside the spans.
        obs::sink::dump_counters();
        obs::sink::flush();
        println!("\nspan trace written to {path}");
    }
}
