# Common developer tasks. `just` (no args) lists the recipes.

default:
    @just --list

# Tier-1 gate: release build, full test suite, clippy with -D warnings.
ci:
    scripts/ci.sh

# Fast feedback loop: debug build + tests.
test:
    cargo test --workspace -q

# Lint exactly as CI does.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Chaos suite: failpoint injection, kill/resume, torn-write proptest.
chaos:
    PROPTEST_SEED=20260807 cargo test -q --test chaos

# Compile-service smoke: fixture batch through the serve binary with a
# worker-death failpoint armed; all responses must still arrive.
serve-smoke:
    scripts/serve_smoke.sh

# Durability smoke: journal crash-replay (abort mid-batch, restart,
# exactly-once), SIGTERM drain exits 0, validator gate on a corrupted
# mapping.
serve-recovery:
    scripts/serve_recovery_smoke.sh

# Compile-service load bench: throughput/latency/shed rate at 1x/4x/16x
# offered load, written to results/BENCH_serve.json.
bench-serve:
    cargo run --release -p mapzero-bench --bin serve_load

# Launch the service on the fixture batch with an admin socket, scrape
# /status with mapzero_top, and print the per-tenant table.
serve-status:
    scripts/serve_status.sh

# Criterion microbenchmarks.
bench:
    cargo bench --workspace

# Inference hot-path bench: predictions/sec (tape vs tape-free) and
# end-to-end compile time, written to results/BENCH_hotpath.json.
bench-hotpath:
    cargo run --release -p mapzero-bench --bin hotpath

# Search-space bench: §2.5.1 size estimates plus the candidate-pruning
# speedup and effective branching factor on the fig13 16x16 workload,
# written to results/BENCH_search_space.json.
bench-searchspace:
    cargo run --release -p mapzero-bench --bin search_space

# Batch-scaling slice of the hot-path bench: rerun it and print the
# K=1/4/8/16 predictions/sec table (batched SIMD arm vs the scalar
# one-at-a-time baseline) from results/BENCH_hotpath.json.
bench-batch:
    cargo run --release -p mapzero-bench --bin hotpath
    @python3 -c "import json; rows = json.load(open('results/BENCH_hotpath.json'))['batch_scaling']; print('batch  pred/s   vs scalar'); [print(f\"{int(r['batch']):>5}  {r['predictions_per_sec']:>7.0f}  {r['speedup_vs_scalar']:>8.2f}x\") for r in rows]"

# Regenerate every paper table/figure (quick mode).
figures:
    cargo run --release -p mapzero-bench --bin run_all

# Fold a MAPZERO_TRACE JSONL trace into a per-span table.
trace-summary file:
    cargo run --release -p mapzero-obs --bin trace_summary -- {{file}}
