#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
# Usage: scripts/ci.sh (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> telemetry smoke (traced run + JSONL schema check)"
trace="$(mktemp -t mapzero-ci-trace.XXXXXX.jsonl)"
trap 'rm -f "$trace"' EXIT
MAPZERO_TRACE="$trace" cargo run --release -q --example traced_mapping
test -s "$trace" || { echo "telemetry smoke: empty trace at $trace" >&2; exit 1; }
cargo run --release -q -p mapzero-obs --bin trace_summary -- --check "$trace"

echo "==> chaos smoke (failpoint injection + kill/resume + torn-write proptest)"
# Fixed seed so the torn-write property exercises the same offsets on
# every CI run; local `just chaos` uses the same seed.
PROPTEST_SEED=20260807 cargo test --release -q --test chaos

echo "==> serve smoke (service batch with an armed worker-death failpoint)"
scripts/serve_smoke.sh

echo "==> serve recovery smoke (journal crash-replay + SIGTERM drain + validator gate)"
scripts/serve_recovery_smoke.sh

echo "==> perf smoke (hotpath bench on a tiny kernel + schema check)"
perf_dir="$(mktemp -d -t mapzero-ci-perf.XXXXXX)"
trap 'rm -f "$trace"; rm -rf "$perf_dir"' EXIT
MAPZERO_RESULTS_DIR="$perf_dir" cargo run --release -q -p mapzero-bench --bin hotpath
python3 - "$perf_dir/BENCH_hotpath.json" results/BENCH_hotpath.json <<'PY'
import json, sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f)

# Schema: the fields the nightly aggregation and the README point at.
required = [
    "bench", "elapsed_secs", "metrics",
    "predictions_per_sec_reference", "predictions_per_sec_fast",
    "predict_speedup", "batch_scaling", "batch8_speedup", "compile_kernel",
    "compile_secs_before", "compile_secs_after", "compile_speedup",
    "prune_speedup",
]
missing = [k for k in required if k not in fresh]
if missing:
    sys.exit(f"perf smoke: BENCH_hotpath.json missing fields {missing}")
counters = fresh["metrics"]["counters"]
for c in ("search.predict_cache.hit", "search.predict_cache.miss",
          "nn.dfg_embed.hit", "nn.dfg_embed.miss",
          "search.batch.flush", "search.batch.partial",
          "search.batch.cache_short_circuit",
          "search.prune.candidate_rebuild", "search.prune.masked_actions",
          "search.prune.dead_state", "search.expand.offered"):
    if c not in counters:
        sys.exit(f"perf smoke: counter {c!r} absent from metrics delta")
for hname in ("nn.batch.size", "search.candidates.per_node"):
    if hname not in fresh["metrics"].get("histograms", {}):
        sys.exit(f"perf smoke: histogram {hname!r} absent from metrics delta")
if fresh["metrics"]["counters"]["search.prune.candidate_rebuild"] == 0:
    sys.exit("perf smoke: no candidate map was ever built (pruning inert?)")

# Batch-scaling gate: one leaf batch of 8 must not be slower than
# one-at-a-time prediction. Both rates come from the same interleaved
# sweep (median of per-pair ratios), so this holds with a wide margin
# unless batching itself regressed.
rate = {int(row["batch"]): row["predictions_per_sec"]
        for row in fresh["batch_scaling"]}
if not {1, 8} <= set(rate):
    sys.exit(f"perf smoke: batch_scaling missing K=1/K=8 rows, got {sorted(rate)}")
if rate[8] < rate[1]:
    sys.exit(f"perf smoke: batch-8 throughput {rate[8]:.0f}/s below "
             f"batch-1 {rate[1]:.0f}/s")

# Regression check vs the committed baseline: warn (non-fatal) when the
# fresh run is more than 2x slower — CI machines vary, so this is a
# signal, not a gate.
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except OSError:
    print("perf smoke: no committed baseline, skipping regression check")
    sys.exit(0)
for key in ("predictions_per_sec_fast", "batch8_speedup"):
    fresh_v, base_v = fresh.get(key, 0.0), baseline.get(key, 0.0)
    if base_v > 0 and fresh_v < base_v / 2:
        print(f"WARNING: perf smoke: {key} regressed >2x "
              f"({fresh_v:.0f} vs committed {base_v:.0f})")
print(f"perf smoke: OK (predict {fresh['predict_speedup']:.1f}x, "
      f"batch8 {fresh['batch8_speedup']:.2f}x, "
      f"compile {fresh['compile_speedup']:.2f}x, "
      f"prune {fresh['prune_speedup']:.2f}x)")
PY

echo "==> prune smoke (search_space bench: fig13 16x16 pairs + schema check)"
# Short per-attempt limit: it caps how long each unpruned arm can burn,
# which is what dominates this smoke's wall time.
MAPZERO_RESULTS_DIR="$perf_dir" MAPZERO_TIME_LIMIT_SECS=8 \
    cargo run --release -q -p mapzero-bench --bin search_space
python3 - "$perf_dir/BENCH_search_space.json" results/BENCH_search_space.json <<'PY'
import json, sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f)

required = ["bench", "elapsed_secs", "metrics", "prune_speedup",
            "prune_speedup_per_kernel", "branching_factor_unpruned",
            "branching_factor_pruned", "fabric"]
missing = [k for k in required if k not in fresh]
if missing:
    sys.exit(f"prune smoke: BENCH_search_space.json missing fields {missing}")
counters = fresh["metrics"]["counters"]
for c in ("search.prune.candidate_rebuild", "search.prune.masked_actions",
          "search.prune.dead_state"):
    if counters.get(c) is None:
        sys.exit(f"prune smoke: counter {c!r} absent from metrics delta")
if counters["search.prune.candidate_rebuild"] == 0:
    sys.exit("prune smoke: pruned arms never built a candidate map")

# Hard gate: pruning must never make the fig13 16x16 quick compile
# slower than the unpruned arm measured in the same interleaved run.
if fresh["prune_speedup"] < 1.0:
    sys.exit(f"prune smoke: prune_speedup {fresh['prune_speedup']:.2f}x < 1.0 "
             "(pruning is a net slowdown)")
if fresh["branching_factor_pruned"] >= fresh["branching_factor_unpruned"]:
    sys.exit("prune smoke: pruning did not shrink the effective branching "
             f"factor ({fresh['branching_factor_unpruned']:.1f} -> "
             f"{fresh['branching_factor_pruned']:.1f})")

# Non-fatal drift check vs the committed baseline (CI machines vary,
# and this smoke runs with a shorter time limit than the committed run).
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except OSError:
    print("prune smoke: no committed baseline, skipping regression check")
    sys.exit(0)
base_v = baseline.get("prune_speedup", 0.0)
if base_v > 0 and fresh["prune_speedup"] < base_v / 2:
    print(f"WARNING: prune smoke: prune_speedup regressed >2x "
          f"({fresh['prune_speedup']:.2f}x vs committed {base_v:.2f}x)")
print(f"prune smoke: OK (prune {fresh['prune_speedup']:.2f}x, branching "
      f"{fresh['branching_factor_unpruned']:.1f} -> "
      f"{fresh['branching_factor_pruned']:.1f})")
PY

echo "==> serve bench smoke (tiny load run + schema + regression check)"
serve_dir="$(mktemp -d -t mapzero-ci-serve.XXXXXX)"
trap 'rm -f "$trace"; rm -rf "$perf_dir" "$serve_dir"' EXIT
MAPZERO_RESULTS_DIR="$serve_dir" MAPZERO_SERVE_LOAD_BASE=2 \
    cargo run --release -q -p mapzero-bench --bin serve_load
python3 - "$serve_dir/BENCH_serve.json" results/BENCH_serve.json <<'PY'
import json, sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f)

tiers = fresh.get("tiers", [])
if not tiers:
    sys.exit("serve bench smoke: no tiers in BENCH_serve.json")
required = ["load", "offered", "completed", "shed", "deadline_miss",
            "shed_rate", "throughput_rps", "p50_ms", "p99_ms"]
for tier in tiers:
    missing = [k for k in required if k not in tier]
    if missing:
        sys.exit(f"serve bench smoke: tier {tier.get('load')} missing {missing}")

# Regression check vs the committed baseline: warn (non-fatal) when the
# fresh run is >2x slower on latency or throughput — the CI run uses a
# smaller burst, so per-tier comparison keyed by load multiplier.
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except OSError:
    print("serve bench smoke: no committed baseline, skipping regression check")
    sys.exit(0)
base_by_load = {t["load"]: t for t in baseline.get("tiers", [])}
for tier in tiers:
    base = base_by_load.get(tier["load"])
    if not base:
        continue
    load = tier["load"]
    if base.get("p99_ms", 0) > 0 and tier["p99_ms"] > 2 * base["p99_ms"]:
        print(f"WARNING: serve bench: {load}x p99 regressed >2x "
              f"({tier['p99_ms']:.1f}ms vs committed {base['p99_ms']:.1f}ms)")
    # Throughput is only comparable at equal burst size: the CI run
    # uses a shrunken burst where startup cost dominates rps.
    if tier.get("offered") == base.get("offered") and \
            base.get("throughput_rps", 0) > 0 and \
            tier["throughput_rps"] < base["throughput_rps"] / 2:
        print(f"WARNING: serve bench: {load}x throughput regressed >2x "
              f"({tier['throughput_rps']:.0f} vs committed "
              f"{base['throughput_rps']:.0f} rps)")
print(f"serve bench smoke: OK ({len(tiers)} tiers)")
PY

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "tier-1 gate: OK"
