#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
# Usage: scripts/ci.sh (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1 gate: OK"
