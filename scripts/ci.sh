#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
# Usage: scripts/ci.sh (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> telemetry smoke (traced run + JSONL schema check)"
trace="$(mktemp -t mapzero-ci-trace.XXXXXX.jsonl)"
trap 'rm -f "$trace"' EXIT
MAPZERO_TRACE="$trace" cargo run --release -q --example traced_mapping
test -s "$trace" || { echo "telemetry smoke: empty trace at $trace" >&2; exit 1; }
cargo run --release -q -p mapzero-obs --bin trace_summary -- --check "$trace"

echo "==> chaos smoke (failpoint injection + kill/resume + torn-write proptest)"
# Fixed seed so the torn-write property exercises the same offsets on
# every CI run; local `just chaos` uses the same seed.
PROPTEST_SEED=20260807 cargo test --release -q --test chaos

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "tier-1 gate: OK"
