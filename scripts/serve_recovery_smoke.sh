#!/usr/bin/env bash
# Durable-serve smoke: three gates over the release binary.
#
# 1. Crash recovery — run a 4-request batch with `--journal` and an
#    abort failpoint armed after the third admit record's fsync
#    (kill -9 semantics, nothing flushed, no response written). The
#    next start with the same journal must replay exactly the three
#    durable requests, answer each once, and a third start must find
#    nothing to do behind a compacted single-generation journal.
# 2. Graceful drain — start with `--hold`, send SIGTERM, and require a
#    clean exit 0 after the drain message.
# 3. Validator gate — a request whose `validate.corrupt` failpoint
#    damages the mapping post-compile must come back `internal` (never
#    shipping the bad mapping) while a clean request still maps, with
#    the summary counting exactly one validation failure.
#
# Usage: scripts/serve_recovery_smoke.sh (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

batch="crates/serve/tests/fixtures/recovery_batch.txt"
corrupt="crates/serve/tests/fixtures/corrupt_batch.txt"
journal="$(mktemp -d -t mapzero-serve-recovery.XXXXXX)"
out="$(mktemp -t mapzero-serve-recovery-out.XXXXXX.jsonl)"
trap 'rm -rf "$journal"; rm -f "$out"' EXIT

# Resolve the binary once so the crash run's exit code is the binary's,
# not cargo's wrapper.
cargo build --release -q -p mapzero-serve --bin mapzero_serve
bin="target/release/mapzero_serve"

echo "serve recovery smoke: run 1 (abort after third durable admit)"
set +e
MAPZERO_FAILPOINTS="global:serve.journal.post_admit=abort@3" \
  "$bin" --workers 2 --journal "$journal" < "$batch" > "$out" 2>/dev/null
crash_code=$?
set -e
if [ "$crash_code" -eq 0 ]; then
  echo "serve recovery smoke: crash run unexpectedly exited 0" >&2
  exit 1
fi
if grep -q '"outcome"' "$out"; then
  echo "serve recovery smoke: a response outran the crash" >&2
  exit 1
fi

echo "serve recovery smoke: run 2 (replay the three durable requests)"
"$bin" --workers 2 --journal "$journal" < /dev/null > "$out"
python3 - "$out" <<'PY'
import json, sys
responses = {}
with open(sys.argv[1]) as f:
    for line in f:
        record = json.loads(line)
        if "summary" in record:
            continue
        rid = record["id"]
        if rid in responses:
            sys.exit(f"recovery smoke: duplicate response for {rid!r}")
        responses[rid] = record
if set(responses) != {"r-0", "r-1", "r-2"}:
    sys.exit(f"recovery smoke: replayed {sorted(responses)}, "
             "expected exactly the three durable admits")
unmapped = {r: v["outcome"] for r, v in responses.items()
            if v["outcome"] != "mapped"}
if unmapped:
    sys.exit(f"recovery smoke: replayed requests not mapped: {unmapped}")
print("recovery smoke: replay OK (3 requests, exactly once, all mapped)")
PY

echo "serve recovery smoke: run 3 (nothing left; journal compacted)"
"$bin" --workers 2 --journal "$journal" < /dev/null > "$out"
if grep -q '"outcome"' "$out"; then
  echo "serve recovery smoke: delivered requests replayed again" >&2
  exit 1
fi
logs=$(find "$journal" -name 'journal_*.log' | wc -l)
if [ "$logs" -ne 1 ]; then
  echo "serve recovery smoke: expected 1 journal generation, found $logs" >&2
  exit 1
fi

echo "serve recovery smoke: drain (SIGTERM on a held service exits 0)"
"$bin" --workers 2 --journal "$journal" --hold < /dev/null > "$out" 2>/dev/null &
pid=$!
sleep 1
kill -TERM "$pid"
set +e
wait "$pid"
drain_code=$?
set -e
if [ "$drain_code" -ne 0 ]; then
  echo "serve recovery smoke: SIGTERM drain exited $drain_code, want 0" >&2
  exit 1
fi

echo "serve recovery smoke: validator gate (corrupted mapping -> internal)"
"$bin" --workers 2 --summary < "$corrupt" > "$out" 2>/dev/null
python3 - "$out" <<'PY'
import json, sys
responses, summary = {}, None
with open(sys.argv[1]) as f:
    for line in f:
        record = json.loads(line)
        if "summary" in record:
            summary = record["summary"]
        else:
            responses[record["id"]] = record
if set(responses) != {"v-corrupt", "v-clean"}:
    sys.exit(f"recovery smoke: validator batch answered {sorted(responses)}")
if responses["v-corrupt"]["outcome"] != "internal":
    sys.exit("recovery smoke: corrupted mapping was not rejected "
             f"(outcome {responses['v-corrupt']['outcome']!r})")
if "mapping" in responses["v-corrupt"] and responses["v-corrupt"]["mapping"]:
    sys.exit("recovery smoke: an invalid mapping was shipped")
if responses["v-clean"]["outcome"] != "mapped":
    sys.exit("recovery smoke: clean request did not map "
             f"(outcome {responses['v-clean']['outcome']!r})")
if summary is None or summary.get("validate_fail") != 1:
    sys.exit(f"recovery smoke: summary validate_fail != 1 ({summary})")
print("recovery smoke: validator gate OK (internal + counter, clean maps)")
PY

echo "serve recovery smoke: OK"
