#!/usr/bin/env bash
# Compile-service smoke: run the serve binary on a mixed two-tenant
# batch with a worker-death failpoint armed (`global:` = fires exactly
# once process-wide). The gate: every request still gets exactly one
# response, every kernel still maps, the summary records the death and
# the respawn, and the process exits 0.
# Usage: scripts/serve_smoke.sh (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

fixture="crates/serve/tests/fixtures/smoke_batch.txt"
out="$(mktemp -t mapzero-serve-smoke.XXXXXX.jsonl)"
trap 'rm -f "$out"' EXIT

MAPZERO_FAILPOINTS="global:serve.worker.pre_map=panic" \
  cargo run --release -q -p mapzero-serve --bin mapzero_serve -- \
  --workers 2 --summary < "$fixture" > "$out"

python3 - "$out" <<'PY'
import json, sys

expected = {"acme-dot", "acme-acc", "beta-saxpy", "beta-chain"}
responses, summary = {}, None
with open(sys.argv[1]) as f:
    for line in f:
        record = json.loads(line)
        if "summary" in record:
            summary = record["summary"]
        else:
            rid = record["id"]
            if rid in responses:
                sys.exit(f"serve smoke: duplicate response for {rid!r}")
            responses[rid] = record

if set(responses) != expected:
    sys.exit(f"serve smoke: got responses for {sorted(responses)}, "
             f"expected {sorted(expected)}")
unmapped = {rid: r["outcome"] for rid, r in responses.items()
            if r["outcome"] != "mapped"}
if unmapped:
    sys.exit(f"serve smoke: requests not mapped: {unmapped}")
if summary is None:
    sys.exit("serve smoke: no summary line")
if summary["responses"] != len(expected):
    sys.exit(f"serve smoke: summary counted {summary['responses']} responses")
if summary["worker_deaths"] < 1:
    sys.exit("serve smoke: armed failpoint never killed a worker")
if summary["respawns"] != summary["worker_deaths"]:
    sys.exit(f"serve smoke: {summary['worker_deaths']} death(s) but "
             f"{summary['respawns']} respawn(s)")
survivors = sum(1 for r in responses.values() if r["worker_deaths"] > 0)
print(f"serve smoke: OK ({len(responses)} mapped, "
      f"{summary['worker_deaths']} worker death(s) contained, "
      f"{survivors} request(s) survived a death)")
PY
