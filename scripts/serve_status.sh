#!/usr/bin/env bash
# Launch the compile service on the fixture batch with an admin socket,
# scrape `/status` with mapzero_top, pretty-print the per-tenant table,
# and shut the service down. A quick end-to-end check of the
# observability plane — and a copy-paste example of operating it.
# Usage: scripts/serve_status.sh (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

fixture="crates/serve/tests/fixtures/smoke_batch.txt"
sock="$(mktemp -u -t mapzero-admin.XXXXXX.sock)"
out="$(mktemp -t mapzero-serve-status.XXXXXX.jsonl)"

cargo build --release -q -p mapzero-serve --bin mapzero_serve --bin mapzero_top

target/release/mapzero_serve --workers 2 \
    --admin-socket "$sock" --hold < "$fixture" > "$out" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$sock" "$out"' EXIT

# The service holds after the batch; wait for the batch to finish (all
# responses written) and the admin socket to exist.
for _ in $(seq 1 100); do
    if [ -S "$sock" ] && [ "$(wc -l < "$out")" -ge 4 ]; then
        break
    fi
    sleep 0.2
done
if ! [ -S "$sock" ]; then
    echo "serve-status: admin socket never appeared at $sock" >&2
    exit 1
fi

echo "--- mapzero_top status ---"
target/release/mapzero_top "$sock"
echo "--- flight recorder (last records) ---"
target/release/mapzero_top "$sock" flight
