//! The write-ahead request journal: crash durability for admitted
//! requests.
//!
//! Every admitted request is appended as a checksummed, fsync'd record
//! *before* the admission result is returned, and every terminal
//! response appends a matching `done` record after it has been
//! delivered to the transport. On restart with the same directory,
//! [`Journal::open`] replays the requests that were admitted but never
//! answered — so across a `kill -9` every admitted request is answered
//! exactly once: either its response reached the client before the
//! crash (a `done` record exists) or it is re-run.
//!
//! On-disk format: numbered generation files `journal_NNNNNN.log`, each
//! starting with a `mapzero-journal v1` header line followed by
//! records. A record is one header line
//!
//! ```text
//! admit <payload-bytes> <fnv1a64-hex>
//! done <payload-bytes> <fnv1a64-hex>
//! ```
//!
//! followed by exactly `<payload-bytes>` of payload — the `wire.rs`
//! textfmt encoding of the request for `admit`, `<id> <outcome>\n` for
//! `done`. The FNV-1a 64 checksum (the same primitive as
//! `checkpoint.rs`) covers the payload, so a torn tail — a crash mid
//! `write(2)` — is detected and dropped instead of replayed as garbage.
//!
//! Recovery follows the checkpoint store's atomic-rename discipline: the
//! surviving (unanswered) requests are rewritten into the *next*
//! generation via temp-file → fsync → rename → directory fsync, and
//! only then are the old generations deleted. A crash anywhere inside
//! recovery leaves either the old generations (recovery re-runs) or a
//! fully-committed new one — never a half-written file under a live
//! name. This doubles as compaction: fully-terminal generations vanish
//! instead of growing forever.
//!
//! Failpoints: `serve.journal.append` (io) fires before an admit record
//! is written; `serve.journal.post_admit` (abort) fires *after* the
//! admit fsync — the kill -9 point where the request is durable but the
//! caller never learned it was admitted.

use crate::wire::{parse_batch, MapRequest, Outcome};
use mapzero_core::checkpoint::fnv1a64;
use mapzero_core::failpoint;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const HEADER: &str = "mapzero-journal v1";

/// Monotone counters describing a journal's life so far (exposed in the
/// service `status`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Current generation number.
    pub generation: u64,
    /// Admit records appended this process (excluding replayed ones).
    pub appended: u64,
    /// Terminal (`done`) records appended this process.
    pub terminal: u64,
    /// Requests replayed from previous generations at open.
    pub replayed: u64,
    /// Old generation files removed by compaction at open.
    pub compacted: u64,
    /// Corrupt or torn records dropped at open.
    pub torn: u64,
}

#[derive(Default)]
struct Counters {
    appended: AtomicU64,
    terminal: AtomicU64,
    replayed: AtomicU64,
    compacted: AtomicU64,
    torn: AtomicU64,
}

/// An open journal: one append-only generation file plus counters.
pub struct Journal {
    dir: PathBuf,
    file: Mutex<File>,
    generation: u64,
    counters: Counters,
}

impl Journal {
    /// Open (or create) the journal in `dir`, recovering the requests
    /// that were admitted but never marked terminal by any previous
    /// generation — in their original admission order. The survivors
    /// are re-admitted into a fresh generation and the old files are
    /// deleted, so the journal never grows across restarts.
    ///
    /// # Errors
    /// I/O errors creating the directory or committing the new
    /// generation. Corrupt records in old generations are *not* errors:
    /// they are counted as torn and dropped.
    pub fn open(dir: &Path) -> io::Result<(Journal, Vec<MapRequest>)> {
        fs::create_dir_all(dir)?;
        let counters = Counters::default();

        // Scan existing generations in order.
        let mut gens: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                // A recovery that died before its rename: never valid.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(n) = name
                .strip_prefix("journal_")
                .and_then(|r| r.strip_suffix(".log"))
                .and_then(|r| r.parse::<u64>().ok())
            {
                gens.push((n, entry.path()));
            }
        }
        gens.sort_unstable();

        let mut pending: Vec<MapRequest> = Vec::new();
        for (_, path) in &gens {
            match fs::read(path) {
                Ok(bytes) => parse_generation(&bytes, &mut pending, &counters.torn),
                Err(_) => {
                    counters.torn.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        counters.replayed.store(pending.len() as u64, Ordering::Relaxed);

        // Commit the survivors as the next generation: temp-file →
        // fsync → rename → dir fsync, then drop the old files.
        let generation = gens.last().map_or(1, |(n, _)| n + 1);
        let final_path = dir.join(format!("journal_{generation:06}.log"));
        let tmp_path = dir.join(format!("journal_{generation:06}.log.tmp"));
        let mut file =
            OpenOptions::new().create(true).append(true).open(&tmp_path)?;
        writeln!(file, "{HEADER}")?;
        for req in &pending {
            write_record(&mut file, "admit", req.emit().as_bytes())?;
        }
        file.sync_data()?;
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(dir)?;
        let compacted = gens.len() as u64;
        for (_, path) in gens {
            let _ = fs::remove_file(path);
        }
        counters.compacted.store(compacted, Ordering::Relaxed);

        let journal =
            Journal { dir: dir.to_owned(), file: Mutex::new(file), generation, counters };
        Ok((journal, pending))
    }

    /// Append an admit record and make it durable. Returns only after
    /// the fsync — the admission path calls this before acknowledging,
    /// so an admitted request is always recoverable.
    ///
    /// # Errors
    /// The underlying write or sync failure (or an armed
    /// `serve.journal.append` io failpoint).
    pub fn record_admit(&self, req: &MapRequest) -> io::Result<()> {
        failpoint::trigger("serve.journal.append")?;
        {
            let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            write_record(&mut file, "admit", req.emit().as_bytes())?;
            file.sync_data()?;
        }
        self.counters.appended.fetch_add(1, Ordering::Relaxed);
        // The crash-recovery chaos point: the record is durable, the
        // caller has not yet been told. An abort here must replay.
        mapzero_core::failpoint!("serve.journal.post_admit");
        Ok(())
    }

    /// Append a terminal record for `id` once its response has been
    /// handed to the transport. A later replay will skip this request.
    ///
    /// # Errors
    /// The underlying write or sync failure.
    pub fn record_terminal(&self, id: &str, outcome: Outcome) -> io::Result<()> {
        let payload = format!("{id} {}\n", outcome.as_str());
        {
            let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            write_record(&mut file, "done", payload.as_bytes())?;
            file.sync_data()?;
        }
        self.counters.terminal.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Force everything buffered to disk (drain path; appends already
    /// sync per record, so this is a belt-and-braces barrier).
    ///
    /// # Errors
    /// The underlying sync failure.
    pub fn flush(&self) -> io::Result<()> {
        self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner).sync_all()
    }

    /// The directory this journal lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot for `status`.
    #[must_use]
    pub fn snapshot(&self) -> JournalSnapshot {
        JournalSnapshot {
            generation: self.generation,
            appended: self.counters.appended.load(Ordering::Relaxed),
            terminal: self.counters.terminal.load(Ordering::Relaxed),
            replayed: self.counters.replayed.load(Ordering::Relaxed),
            compacted: self.counters.compacted.load(Ordering::Relaxed),
            torn: self.counters.torn.load(Ordering::Relaxed),
        }
    }
}

/// Append one checksummed record: a header line then the raw payload.
fn write_record(file: &mut File, kind: &str, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(payload.len() + 64);
    writeln!(buf, "{kind} {} {:016x}", payload.len(), fnv1a64(payload))?;
    buf.extend_from_slice(payload);
    file.write_all(&buf)
}

/// Replay one generation file into `pending`. Stops at the first torn
/// record (a crash truncates only the tail of the newest file);
/// checksum-valid records that fail to parse are dropped and counted
/// but do not stop the scan — the record boundary is still sound.
fn parse_generation(bytes: &[u8], pending: &mut Vec<MapRequest>, torn: &AtomicU64) {
    let mut rest = bytes;
    let Some(header) = take_line(&mut rest) else {
        torn.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if header.trim_end() != HEADER {
        torn.fetch_add(1, Ordering::Relaxed);
        return;
    }
    while !rest.is_empty() {
        let Some((kind, payload)) = take_record(&mut rest) else {
            torn.fetch_add(1, Ordering::Relaxed);
            return;
        };
        match kind.as_str() {
            "admit" => match parse_batch(&payload) {
                Ok(mut reqs) if reqs.len() == 1 => {
                    let req = reqs.remove(0);
                    // A re-admit of an id already pending (a previous
                    // recovery's rewrite) replaces it in place, keeping
                    // the original admission order.
                    match pending.iter_mut().find(|p| p.id == req.id) {
                        Some(slot) => *slot = req,
                        None => pending.push(req),
                    }
                }
                _ => {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
            },
            "done" => {
                if let Some((id, outcome)) = payload.trim_end().rsplit_once(' ') {
                    if Outcome::from_wire(outcome).is_some() {
                        pending.retain(|p| p.id != id);
                        continue;
                    }
                }
                torn.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                torn.fetch_add(1, Ordering::Relaxed);
                return; // unknown kind: lost framing, stop the file
            }
        }
    }
}

/// Split one `\n`-terminated line off the front of `rest`. `None` when
/// no full line remains (torn tail).
fn take_line(rest: &mut &[u8]) -> Option<String> {
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let line = String::from_utf8_lossy(&rest[..nl]).into_owned();
    *rest = &rest[nl + 1..];
    Some(line)
}

/// Split one full record off the front of `rest`, verifying its length
/// and checksum. `None` on any framing or checksum violation.
fn take_record(rest: &mut &[u8]) -> Option<(String, String)> {
    let header = take_line(rest)?;
    let mut parts = header.split_whitespace();
    let kind = parts.next()?.to_owned();
    let len: usize = parts.next()?.parse().ok()?;
    let sum = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() || rest.len() < len {
        return None;
    }
    let payload = &rest[..len];
    if fnv1a64(payload) != sum {
        return None;
    }
    *rest = &rest[len..];
    Some((kind, String::from_utf8_lossy(payload).into_owned()))
}

/// Fsync a directory so a rename inside it is durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;
    use std::time::Duration;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "mapzero-journal-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn request(id: &str, tenant: &str) -> MapRequest {
        let mut req = MapRequest::new(
            id,
            tenant,
            suite::by_name("sum").unwrap(),
            presets::simple_mesh(4, 4),
        );
        req.deadline = Some(Duration::from_secs(30));
        req
    }

    #[test]
    fn fresh_journal_replays_nothing() {
        let tmp = TempDir::new("fresh");
        let (journal, pending) = Journal::open(&tmp.0).unwrap();
        assert!(pending.is_empty());
        let snap = journal.snapshot();
        assert_eq!((snap.replayed, snap.torn), (0, 0));
        assert_eq!(snap.generation, 1);
    }

    #[test]
    fn unanswered_requests_replay_in_admission_order() {
        let tmp = TempDir::new("replay");
        {
            let (journal, _) = Journal::open(&tmp.0).unwrap();
            journal.record_admit(&request("a", "t1")).unwrap();
            journal.record_admit(&request("b", "t2")).unwrap();
            journal.record_admit(&request("c", "t1")).unwrap();
            journal.record_terminal("b", Outcome::Mapped).unwrap();
        }
        let (journal, pending) = Journal::open(&tmp.0).unwrap();
        let ids: Vec<&str> = pending.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["a", "c"]);
        assert_eq!(pending[0], request("a", "t1"), "replay is byte-faithful");
        assert_eq!(journal.snapshot().replayed, 2);
        assert_eq!(journal.snapshot().generation, 2);
    }

    #[test]
    fn fully_terminal_generation_compacts_to_nothing() {
        let tmp = TempDir::new("compact");
        {
            let (journal, _) = Journal::open(&tmp.0).unwrap();
            journal.record_admit(&request("a", "t1")).unwrap();
            journal.record_terminal("a", Outcome::Failed).unwrap();
        }
        let (journal, pending) = Journal::open(&tmp.0).unwrap();
        assert!(pending.is_empty());
        assert_eq!(journal.snapshot().compacted, 1);
        // Exactly one file remains: the fresh (empty) generation.
        let logs: Vec<_> = fs::read_dir(&tmp.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".log"))
            .collect();
        assert_eq!(logs.len(), 1, "old generations must be deleted");
    }

    #[test]
    fn torn_tail_is_dropped_not_replayed() {
        let tmp = TempDir::new("torn");
        let path;
        {
            let (journal, _) = Journal::open(&tmp.0).unwrap();
            journal.record_admit(&request("whole", "t1")).unwrap();
            journal.record_admit(&request("torn", "t1")).unwrap();
            path = tmp.0.join("journal_000001.log");
        }
        // Truncate mid-payload of the last record: a crash mid-write.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (journal, pending) = Journal::open(&tmp.0).unwrap();
        let ids: Vec<&str> = pending.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["whole"], "only the intact record replays");
        assert_eq!(journal.snapshot().torn, 1);
    }

    #[test]
    fn corrupt_checksum_stops_the_file() {
        let tmp = TempDir::new("bitflip");
        let path;
        {
            let (journal, _) = Journal::open(&tmp.0).unwrap();
            journal.record_admit(&request("x", "t1")).unwrap();
            path = tmp.0.join("journal_000001.log");
        }
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (journal, pending) = Journal::open(&tmp.0).unwrap();
        assert!(pending.is_empty(), "a corrupt record must not replay");
        assert!(journal.snapshot().torn >= 1);
    }

    #[test]
    fn generation_numbers_are_monotone_across_recoveries() {
        let tmp = TempDir::new("monotone");
        for expect in 1..=3u64 {
            let (journal, _) = Journal::open(&tmp.0).unwrap();
            assert_eq!(journal.snapshot().generation, expect);
            journal.record_admit(&request("r", "t")).unwrap();
        }
        // Three opens, each carrying the still-pending `r` forward.
        let (_, pending) = Journal::open(&tmp.0).unwrap();
        assert_eq!(pending.len(), 1, "re-admits replace, never duplicate");
    }

    #[test]
    fn append_failpoint_surfaces_as_io_error() {
        let tmp = TempDir::new("failpoint");
        let (journal, _) = Journal::open(&tmp.0).unwrap();
        let _guard = failpoint::scoped(
            "serve.journal.append",
            1,
            mapzero_core::failpoint::FailAction::IoError,
        );
        assert!(journal.record_admit(&request("x", "t")).is_err());
        // The failed admit never reached the file: a replay sees nothing.
        drop(journal);
        let (_, pending) = Journal::open(&tmp.0).unwrap();
        assert!(pending.is_empty());
    }

    #[test]
    fn done_without_admit_is_harmless() {
        let tmp = TempDir::new("orphan-done");
        {
            let (journal, _) = Journal::open(&tmp.0).unwrap();
            journal.record_terminal("ghost", Outcome::Internal).unwrap();
        }
        let (_, pending) = Journal::open(&tmp.0).unwrap();
        assert!(pending.is_empty());
    }
}
