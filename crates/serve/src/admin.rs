//! The admin plane: a line-command Unix socket and a SIGUSR1 dump.
//!
//! The admin socket is deliberately not the service socket — operators
//! introspect a live service without competing with request traffic,
//! and the protocol is one text command per connection:
//!
//! - `status`  — the `/status` JSON document (one line); feed it to
//!   `mapzero_top` for the rendered view.
//! - `metrics` — the full registry as Prometheus-style text exposition.
//! - `flight`  — the flight recorder as JSONL, oldest record first.
//! - `shutdown` — begin a graceful drain (same effect as `SIGTERM`):
//!   admission stops, in-flight work finishes, the binary flushes its
//!   journal and trace sink and exits 0.
//!
//! `SIGUSR1` triggers the same dump (status + exposition) to stderr,
//! for when the service was started without an admin socket. Signal
//! handlers may only do async-signal-safe work, so the handler just
//! sets a flag; a watcher thread polls it and does the actual dump.
//! `SIGTERM` follows the identical flag-and-watch pattern for drains.

use crate::service::MapService;
use mapzero_obs::metrics::registry;
use mapzero_obs::summary::{render_exposition, render_status};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// `SIGUSR1` on Linux.
const SIGUSR1: i32 = 10;
/// `SIGTERM` on Linux.
const SIGTERM: i32 = 15;

static SIGUSR1_PENDING: AtomicBool = AtomicBool::new(false);
static DRAIN_PENDING: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigusr1(_signum: i32) {
    // Async-signal-safe: one relaxed store, nothing else.
    SIGUSR1_PENDING.store(true, Ordering::Relaxed);
}

extern "C" fn on_sigterm(_signum: i32) {
    DRAIN_PENDING.store(true, Ordering::Relaxed);
}

extern "C" {
    // From the platform C library (no libc crate): install a handler.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

/// Install the `SIGUSR1` dump: on signal, write the rendered status
/// and the metrics exposition to stderr. Spawns the watcher thread
/// (detached; it holds a service handle for the process lifetime).
pub fn install_sigusr1_dump(service: &MapService) {
    unsafe {
        signal(SIGUSR1, on_sigusr1);
    }
    let service = service.clone();
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_millis(50));
        if SIGUSR1_PENDING.swap(false, Ordering::Relaxed) {
            eprintln!("--- mapzero_serve status (SIGUSR1) ---");
            eprint!("{}", render_status(&service.status_json()));
            eprint!("{}", render_exposition(&registry().snapshot()));
            eprintln!("--- end status ---");
        }
    });
}

/// Install the `SIGTERM` handler: the signal requests a graceful drain,
/// observable via [`drain_requested`]. The binary's drain watcher (not
/// a thread here) owns the actual drain-and-exit sequence, because only
/// it can flush its transports before exiting.
pub fn install_sigterm_drain() {
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// Whether a drain was requested via `SIGTERM` or the admin `shutdown`
/// command. Sticky until the process exits.
#[must_use]
pub fn drain_requested() -> bool {
    DRAIN_PENDING.load(Ordering::Relaxed)
}

/// Request a drain programmatically (the admin `shutdown` path).
pub fn request_drain() {
    DRAIN_PENDING.store(true, Ordering::Relaxed);
}

/// The response payload for one admin command line.
#[must_use]
pub fn handle_command(service: &MapService, command: &str) -> String {
    match command.trim() {
        "status" => {
            let mut line = service.status_json().to_string_compact();
            line.push('\n');
            line
        }
        "metrics" => render_exposition(&registry().snapshot()),
        "flight" => {
            let mut out = String::new();
            for record in service.flight_snapshot() {
                out.push_str(&record.to_json().to_string_compact());
                out.push('\n');
            }
            out
        }
        "shutdown" => {
            // Stop admission immediately so the acknowledgement below
            // is already true; the binary's drain watcher finishes the
            // flush-and-exit half.
            service.begin_drain();
            request_drain();
            "draining\n".to_owned()
        }
        other => {
            format!("error: unknown command `{other}` (status | metrics | flight | shutdown)\n")
        }
    }
}

/// Bind the admin socket and serve it from a detached thread: one
/// command line per connection, payload out, close. Errors only on
/// bind failure; a failed accept or write affects that connection
/// alone.
///
/// # Errors
/// Returns the bind error when the socket path cannot be bound.
pub fn spawn_admin_socket(service: &MapService, path: &str) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let service = service.clone();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let service = service.clone();
            std::thread::spawn(move || {
                let mut reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut command = String::new();
                if reader.read_line(&mut command).is_err() {
                    return;
                }
                let payload = handle_command(&service, &command);
                let mut stream = stream;
                let _ = stream.write_all(payload.as_bytes());
            });
        }
    });
    Ok(())
}
