//! The long-lived mapping service: a worker pool over the tenant-fair
//! queue, sharing one network per fabric size and one prediction cache,
//! wrapped in the supervision layer that makes one request unable to
//! hurt another:
//!
//! - **Admission**: [`MapService::submit`] load-sheds with a `Rejected`
//!   response (carrying the observed queue depth) instead of queueing
//!   without bound.
//! - **Deadlines**: a request's wall-clock allowance is charged from
//!   *enqueue* time ([`Budget::from_deadline_at`]), so queue wait counts
//!   and an expired request is answered `deadline` without burning a
//!   worker on it.
//! - **Retries**: a contained internal fault ([`MapError::Internal`],
//!   e.g. a panic inside the compiler's isolation boundary) is retried
//!   with exponential backoff up to `max_retries`, never past the
//!   deadline.
//! - **Worker death**: a panic that escapes the compiler's own
//!   isolation (e.g. the `serve.worker.pre_map` failpoint) kills only
//!   that worker; the thread is respawned, and the in-flight request is
//!   either requeued (front of its tenant's lane — admission already
//!   happened) or answered `internal`. Exactly one response per
//!   admitted request, always.
//! - **Hedging**: with [`ServeConfig::hedge`], each worker's compiler
//!   carries the SA baseline as a fallback lane — the primary gets ~70%
//!   of the remaining deadline (the compiler's `PRIMARY_SHARE`), the
//!   annealer the rest.
//!
//! Shared state is confined to things a dying worker cannot poison: the
//! queue (mutex with explicit poison recovery), `Arc`'d read-only
//! networks, and the prediction cache (drained by value per episode — a
//! panic loses borrowed entries, never corrupts the slot).

use crate::queue::{Job, JobQueue, QueueConfig, SubmitError};
use crate::wire::{MapRequest, MapResponse, Outcome};
use mapzero_baselines::{SaConfig, SaMapper};
use mapzero_core::failpoint::{self, FailScope};
use mapzero_core::mapping::MapError;
use mapzero_core::mcts::PredictCache;
use mapzero_core::network::MapZeroNet;
use mapzero_core::supervise::Budget;
use mapzero_core::{Compiler, IiBounds, MapZeroConfig};
use mapzero_obs::metrics::registry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Queue capacity and per-tenant in-flight caps.
    pub queue: QueueConfig,
    /// Compiler configuration shared by every worker.
    pub compiler: MapZeroConfig,
    /// Retries for contained internal faults (and worker deaths) per
    /// request.
    pub max_retries: u32,
    /// Base backoff before an internal-fault retry; doubles per retry,
    /// always capped by the request's remaining deadline.
    pub retry_backoff: Duration,
    /// Install the SA baseline as each worker's hedged fallback lane.
    pub hedge: bool,
    /// Deadline applied to requests that carry none (`None` = such
    /// requests run unbounded).
    pub default_deadline: Option<Duration>,
    /// Per-request cap on MCTS tree expansions (deterministic work
    /// bound composing with the wall-clock deadline).
    pub expansion_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue: QueueConfig::default(),
            compiler: MapZeroConfig::fast_test(),
            max_retries: 2,
            retry_backoff: Duration::from_millis(25),
            hedge: true,
            default_deadline: Some(Duration::from_secs(300)),
            expansion_budget: None,
        }
    }
}

impl ServeConfig {
    /// Seconds-scale deterministic configuration for tests: small pool,
    /// no hedging (one engine = bit-reproducible outputs), tiny
    /// backoff.
    #[must_use]
    pub fn fast_test() -> Self {
        ServeConfig {
            workers: 2,
            queue: QueueConfig { capacity: 32, tenant_inflight_cap: 2 },
            compiler: MapZeroConfig::fast_test(),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            hedge: false,
            default_deadline: None,
            expansion_budget: None,
        }
    }
}

/// Monotonic service-level counters (also mirrored into the global
/// metrics registry as `serve.*`).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests shed at admission.
    pub shed: AtomicU64,
    /// Contained internal-fault retries.
    pub retries: AtomicU64,
    /// Worker threads killed by an escaping panic.
    pub worker_deaths: AtomicU64,
    /// Worker threads respawned after a death.
    pub respawns: AtomicU64,
    /// Responses delivered (every admitted request produces exactly
    /// one).
    pub responses: AtomicU64,
}

struct QueuedRequest {
    request: MapRequest,
    respond: Sender<MapResponse>,
    /// Worker deaths this request has survived so far.
    worker_deaths: u32,
}

struct Shared {
    config: ServeConfig,
    queue: JobQueue<QueuedRequest>,
    /// One network per fabric size, shared by every worker's compiler.
    nets: Mutex<HashMap<usize, Arc<MapZeroNet>>>,
    /// One prediction cache shared by every worker.
    cache: Arc<Mutex<PredictCache>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    stats: ServiceStats,
    /// Interned `serve.inflight.<tenant>` gauge names (the registry
    /// wants `&'static str`; one leak per distinct tenant).
    tenant_gauges: Mutex<HashMap<String, &'static str>>,
}

/// The running service. Cloneable handle; [`MapService::shutdown`]
/// drains and joins the pool.
#[derive(Clone)]
pub struct MapService {
    shared: Arc<Shared>,
}

impl MapService {
    /// Start the worker pool.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let cache_capacity = config.compiler.agent.mcts.cache_capacity.max(2);
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue),
            nets: Mutex::new(HashMap::new()),
            cache: Arc::new(Mutex::new(PredictCache::new(cache_capacity))),
            handles: Mutex::new(Vec::new()),
            stats: ServiceStats::default(),
            tenant_gauges: Mutex::new(HashMap::new()),
            config,
        });
        for _ in 0..workers {
            spawn_worker(Arc::clone(&shared));
        }
        MapService { shared }
    }

    /// Submit one request. Exactly one response — including a
    /// `Rejected` one when the queue sheds it, or an `Internal` one
    /// after shutdown — arrives on `respond`. Returns whether the
    /// request was admitted into the queue.
    pub fn submit(&self, request: MapRequest, respond: &Sender<MapResponse>) -> bool {
        mapzero_core::failpoint!("serve.enqueue");
        let tenant = request.tenant.clone();
        let weight = request.weight;
        let queued = QueuedRequest { request, respond: respond.clone(), worker_deaths: 0 };
        match self.shared.queue.submit(&tenant, weight, queued) {
            Ok(()) => {
                mapzero_obs::gauge!("serve.queue.depth", self.shared.queue.depth() as u64);
                true
            }
            Err((SubmitError::Shed { queue_depth }, refused)) => {
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.shed");
                let response =
                    rejected_response(&refused.request.id, &refused.request.tenant, queue_depth);
                self.shared.stats.responses.fetch_add(1, Ordering::Relaxed);
                let _ = refused.respond.send(response);
                false
            }
            Err((SubmitError::Closed, refused)) => {
                let mut response = rejected_response(&refused.request.id, &refused.request.tenant, 0);
                response.outcome = Outcome::Internal;
                response.queue_depth = None;
                response.error = Some("service is shut down".to_owned());
                self.shared.stats.responses.fetch_add(1, Ordering::Relaxed);
                let _ = refused.respond.send(response);
                false
            }
        }
    }

    /// Submit a whole batch and block for every response; returned in
    /// request order. Shed requests appear as `Rejected` records.
    pub fn process_batch(&self, requests: Vec<MapRequest>) -> Vec<MapResponse> {
        let (tx, rx) = std::sync::mpsc::channel();
        let order: Vec<String> = requests.iter().map(|r| r.id.clone()).collect();
        let mut received = Vec::with_capacity(order.len());
        for request in requests {
            // Every submit produces exactly one response on `tx`
            // (mapped, rejected, or internal) — admitted or not.
            let _ = self.submit(request, &tx);
        }
        for _ in 0..order.len() {
            match rx.recv() {
                Ok(resp) => received.push(resp),
                Err(_) => break,
            }
        }
        // Request order, not completion order.
        let mut by_id: HashMap<String, Vec<MapResponse>> = HashMap::new();
        for resp in received {
            by_id.entry(resp.id.clone()).or_default().push(resp);
        }
        order
            .iter()
            .filter_map(|id| by_id.get_mut(id).and_then(Vec::pop))
            .collect()
    }

    /// Current queue depth (jobs admitted but not yet running).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// In-flight jobs for one tenant.
    #[must_use]
    pub fn inflight(&self, tenant: &str) -> usize {
        self.shared.queue.inflight(tenant)
    }

    /// Service counters.
    #[must_use]
    pub fn stats(&self) -> &ServiceStats {
        &self.shared.stats
    }

    /// Stop admissions, drain the queue, and join every worker.
    pub fn shutdown(self) {
        self.shared.queue.close();
        loop {
            let handle = {
                let mut handles =
                    self.shared.handles.lock().unwrap_or_else(PoisonError::into_inner);
                handles.pop()
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// A `Rejected` response built at the shed point.
fn rejected_response(id: &str, tenant: &str, queue_depth: usize) -> MapResponse {
    MapResponse {
        id: id.to_owned(),
        tenant: tenant.to_owned(),
        outcome: Outcome::Rejected,
        engine: None,
        mii: None,
        achieved_ii: None,
        mapping: None,
        queue_wait: Duration::ZERO,
        service_time: Duration::ZERO,
        retries: 0,
        worker_deaths: 0,
        queue_depth: Some(queue_depth),
        error: Some("queue full".to_owned()),
        telemetry: None,
    }
}

fn spawn_worker(shared: Arc<Shared>) {
    let for_thread = Arc::clone(&shared);
    let handle = std::thread::spawn(move || worker_loop(&for_thread));
    shared.handles.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
}

fn build_compiler(shared: &Shared) -> Compiler {
    let mut compiler = Compiler::new(shared.config.compiler)
        .with_shared_cache(Arc::clone(&shared.cache));
    if shared.config.hedge {
        let sa = SaConfig {
            max_extra_ii: shared.config.compiler.max_extra_ii,
            ..SaConfig::default()
        };
        compiler = compiler.with_fallback(Box::new(SaMapper::new(sa)));
    }
    compiler
}

/// Look up (or deterministically create) the shared network for this
/// fabric size and install it into the worker's compiler, so every
/// worker maps with identical weights.
fn install_net(shared: &Shared, compiler: &mut Compiler, pe_count: usize) {
    if compiler.net_for(pe_count).is_some() {
        return;
    }
    let mut nets = shared.nets.lock().unwrap_or_else(PoisonError::into_inner);
    let net = nets.entry(pe_count).or_insert_with(|| {
        // MapZeroNet::new is deterministic in (size, config.seed): every
        // service instance with the same config serves identical nets.
        Arc::new(MapZeroNet::new(pe_count, shared.config.compiler.net))
    });
    compiler.install_shared_net(Arc::clone(net));
}

fn tenant_inflight_gauge(shared: &Shared, tenant: &str) {
    let value = shared.queue.inflight(tenant) as u64;
    let mut names = shared.tenant_gauges.lock().unwrap_or_else(PoisonError::into_inner);
    let name: &'static str = names
        .entry(tenant.to_owned())
        .or_insert_with(|| Box::leak(format!("serve.inflight.{tenant}").into_boxed_str()));
    registry().gauge(name).set(value);
}

/// The request's absolute deadline (enqueue instant + allowance); a
/// duration too large for the clock degrades to unbounded, matching the
/// `Budget::with_deadline` contract.
fn effective_deadline(config: &ServeConfig, job: &Job<QueuedRequest>) -> Option<Instant> {
    let allowance = job.item.request.deadline.or(config.default_deadline)?;
    job.enqueued_at.checked_add(allowance)
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut compiler = build_compiler(shared);
    while let Some((tenant, job)) = shared.queue.pop() {
        mapzero_obs::gauge!("serve.queue.depth", shared.queue.depth() as u64);
        tenant_inflight_gauge(shared, &tenant);
        let outcome =
            catch_unwind(AssertUnwindSafe(|| process_job(shared, &mut compiler, &job)));
        shared.queue.finish(&tenant);
        tenant_inflight_gauge(shared, &tenant);
        match outcome {
            Ok(response) => deliver(shared, &job.item.respond, response),
            Err(_) => {
                // Worker death: contain, account, hand the request back
                // (retry) or answer it (structural failure) — never
                // lose it, never answer twice (nothing was delivered
                // yet), then respawn a clean worker and die.
                shared.stats.worker_deaths.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.worker.death");
                // Account the respawn and start the replacement before
                // handing the request back: the retry's response must
                // not be able to outrun the death bookkeeping (a caller
                // reading stats after its last response would see a
                // death with no matching respawn).
                shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.worker.respawn");
                spawn_worker(Arc::clone(shared));
                let mut job = job;
                job.attempts += 1;
                job.item.worker_deaths += 1;
                let expired = effective_deadline(&shared.config, &job)
                    .is_some_and(|d| Instant::now() >= d);
                if job.attempts <= shared.config.max_retries && !expired {
                    shared.queue.requeue_front(&tenant, job);
                } else {
                    let response = death_response(&job);
                    deliver(shared, &job.item.respond, response);
                }
                return;
            }
        }
    }
}

/// Terminal response for a request whose worker died past its retry or
/// deadline allowance.
fn death_response(job: &Job<QueuedRequest>) -> MapResponse {
    let req = &job.item.request;
    MapResponse {
        id: req.id.clone(),
        tenant: req.tenant.clone(),
        outcome: Outcome::Internal,
        engine: None,
        mii: None,
        achieved_ii: None,
        mapping: None,
        queue_wait: Instant::now().saturating_duration_since(job.enqueued_at),
        service_time: Duration::ZERO,
        retries: 0,
        worker_deaths: job.item.worker_deaths,
        queue_depth: None,
        error: Some(format!(
            "worker died {} time(s) processing this request",
            job.item.worker_deaths
        )),
        telemetry: None,
    }
}

/// Deliver exactly one response line. The `serve.respond` failpoint
/// models a broken transport: a fired fault drops the line (counted)
/// without killing the worker or affecting any other request.
fn deliver(shared: &Shared, respond: &Sender<MapResponse>, response: MapResponse) {
    let transport = catch_unwind(|| failpoint::trigger("serve.respond"));
    match transport {
        Ok(Ok(())) => {
            shared.stats.responses.fetch_add(1, Ordering::Relaxed);
            // A hung-up receiver (caller stopped listening) is its
            // problem, not the worker's.
            let _ = respond.send(response);
        }
        _ => {
            mapzero_obs::counter!("serve.respond.dropped");
        }
    }
}

/// Process one admitted request on this worker: deadline gate, fault
/// arming, budgeted mapping with bounded internal-fault retries.
/// Panics escaping this function (e.g. `serve.worker.pre_map`) are the
/// worker-death path handled by the caller.
fn process_job(shared: &Shared, compiler: &mut Compiler, job: &Job<QueuedRequest>) -> MapResponse {
    let req = &job.item.request;
    let started = Instant::now();
    let queue_wait = started.saturating_duration_since(job.enqueued_at);
    mapzero_obs::observe!(
        "serve.queue_wait_us",
        u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX)
    );
    let capture = mapzero_obs::RunCapture::begin();
    let deadline = effective_deadline(&shared.config, job);

    let mut response = MapResponse {
        id: req.id.clone(),
        tenant: req.tenant.clone(),
        outcome: Outcome::Internal,
        engine: None,
        mii: None,
        achieved_ii: None,
        mapping: None,
        queue_wait,
        service_time: Duration::ZERO,
        retries: 0,
        worker_deaths: job.item.worker_deaths,
        queue_depth: None,
        error: None,
        telemetry: None,
    };

    // Expired while queued: answer structurally, burn no search time.
    if deadline.is_some_and(|d| started >= d) {
        mapzero_obs::counter!("serve.deadline.queued");
        response.outcome = Outcome::Deadline;
        response.error = Some("deadline expired while queued".to_owned());
        response.telemetry = capture.map(mapzero_obs::RunCapture::finish);
        return response;
    }

    // Per-request chaos faults, armed thread-locally for exactly this
    // request's processing (scope guards disarm even on unwind).
    let _fault_scopes: Vec<FailScope> = req
        .fault
        .as_deref()
        .and_then(|spec| failpoint::parse_spec(spec).ok())
        .unwrap_or_default()
        .into_iter()
        .map(|(name, action, after)| failpoint::scoped(&name, after, action))
        .collect();

    mapzero_core::failpoint!("serve.worker.pre_map");

    install_net(shared, compiler, req.cgra.pe_count());
    let mut budget = deadline.map_or_else(Budget::unlimited, Budget::from_deadline_at);
    if let Some(cap) = shared.config.expansion_budget {
        budget = budget.with_expansion_cap(cap);
    }
    let bounds = IiBounds { min: req.ii_min, max: req.ii_max };

    let mut retries: u32 = 0;
    let result = loop {
        let attempt = compiler.map_request(&req.dfg, &req.cgra, &budget, bounds);
        match attempt {
            Err(MapError::Internal(_))
                if retries < shared.config.max_retries && !budget.exhausted() =>
            {
                retries += 1;
                shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.retry");
                let backoff = shared
                    .config
                    .retry_backoff
                    .saturating_mul(1 << (retries - 1).min(16));
                let nap = match budget.remaining_time() {
                    Some(remaining) => backoff.min(remaining),
                    None => backoff,
                };
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
            other => break other,
        }
    };

    response.retries = retries;
    match result {
        Ok(report) => {
            response.outcome = Outcome::Mapped;
            response.engine = Some(report.engine.clone());
            response.mii = Some(report.mii);
            response.achieved_ii = report.achieved_ii();
            response.mapping = report.mapping;
        }
        Err(MapError::Unmappable(msg)) => {
            response.outcome = Outcome::Failed;
            response.error = Some(format!("unmappable: {msg}"));
        }
        Err(MapError::NoSchedule(msg)) => {
            response.outcome = Outcome::Failed;
            response.error = Some(format!("no schedule: {msg}"));
        }
        Err(MapError::Timeout { best_partial }) => {
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            response.outcome = if expired { Outcome::Deadline } else { Outcome::Timeout };
            response.error = Some(format!(
                "budget exhausted: {}/{} nodes placed, best II {:?}",
                best_partial.nodes_placed, best_partial.total_nodes, best_partial.best_ii
            ));
        }
        Err(MapError::Diverged { epoch }) => {
            response.outcome = Outcome::Internal;
            response.error = Some(format!("training diverged at epoch {epoch}"));
        }
        Err(MapError::Internal(msg)) => {
            response.outcome = Outcome::Internal;
            response.error = Some(msg);
        }
    }
    response.service_time = started.elapsed();
    mapzero_obs::observe!(
        "serve.service_us",
        u64::try_from(response.service_time.as_micros()).unwrap_or(u64::MAX)
    );
    response.telemetry = capture.map(mapzero_obs::RunCapture::finish);
    response
}
