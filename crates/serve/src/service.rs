//! The long-lived mapping service: a worker pool over the tenant-fair
//! queue, sharing one network per fabric size and one prediction cache,
//! wrapped in the supervision layer that makes one request unable to
//! hurt another:
//!
//! - **Admission**: [`MapService::submit`] load-sheds with a `Rejected`
//!   response (carrying the observed queue depth) instead of queueing
//!   without bound.
//! - **Deadlines**: a request's wall-clock allowance is charged from
//!   *enqueue* time ([`Budget::from_deadline_at`]), so queue wait counts
//!   and an expired request is answered `deadline` without burning a
//!   worker on it.
//! - **Retries**: a contained internal fault ([`MapError::Internal`],
//!   e.g. a panic inside the compiler's isolation boundary) is retried
//!   with exponential backoff up to `max_retries`, never past the
//!   deadline.
//! - **Worker death**: a panic that escapes the compiler's own
//!   isolation (e.g. the `serve.worker.pre_map` failpoint) kills only
//!   that worker; the thread is respawned, and the in-flight request is
//!   either requeued (front of its tenant's lane — admission already
//!   happened) or answered `internal`. Exactly one response per
//!   admitted request, always.
//! - **Hedging**: with [`ServeConfig::hedge`], each worker's compiler
//!   carries the SA baseline as a fallback lane — the primary gets ~70%
//!   of the remaining deadline (the compiler's `PRIMARY_SHARE`), the
//!   annealer the rest.
//!
//! Shared state is confined to things a dying worker cannot poison: the
//! queue (mutex with explicit poison recovery), `Arc`'d read-only
//! networks, and the prediction cache (drained by value per episode — a
//! panic loses borrowed entries, never corrupts the slot).

use crate::breaker::{Admission, BreakerConfig, CircuitBreakers};
use crate::journal::{Journal, JournalSnapshot};
use crate::queue::{Job, JobQueue, QueueConfig, SubmitError};
use crate::slo::{Anomaly, RequestRecord, SloConfig, SloTable};
use crate::wire::{MapRequest, MapResponse, Outcome};
use mapzero_baselines::{SaConfig, SaMapper};
use mapzero_core::failpoint::{self, FailScope};
use mapzero_core::mapping::MapError;
use mapzero_core::mcts::PredictCache;
use mapzero_core::network::MapZeroNet;
use mapzero_core::supervise::Budget;
use mapzero_core::validate;
use mapzero_core::{Compiler, IiBounds, MapZeroConfig};
use mapzero_obs::json::Json;
use mapzero_obs::metrics::registry;
use mapzero_obs::FlightRecorder;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service lifecycle: admitting and processing.
const STATE_RUNNING: u8 = 0;
/// Draining: admission rejects, in-flight work finishes.
const STATE_DRAINING: u8 = 1;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Queue capacity and per-tenant in-flight caps.
    pub queue: QueueConfig,
    /// Compiler configuration shared by every worker.
    pub compiler: MapZeroConfig,
    /// Retries for contained internal faults (and worker deaths) per
    /// request.
    pub max_retries: u32,
    /// Base backoff before an internal-fault retry; doubles per retry,
    /// always capped by the request's remaining deadline.
    pub retry_backoff: Duration,
    /// Install the SA baseline as each worker's hedged fallback lane.
    pub hedge: bool,
    /// Deadline applied to requests that carry none (`None` = such
    /// requests run unbounded).
    pub default_deadline: Option<Duration>,
    /// Per-request cap on MCTS tree expansions (deterministic work
    /// bound composing with the wall-clock deadline).
    pub expansion_budget: Option<u64>,
    /// SLO windows and anomaly-detection thresholds.
    pub slo: SloConfig,
    /// Flight-recorder capacity (last N terminal request records).
    pub flight_capacity: usize,
    /// Per-tenant circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue: QueueConfig::default(),
            compiler: MapZeroConfig::fast_test(),
            max_retries: 2,
            retry_backoff: Duration::from_millis(25),
            hedge: true,
            default_deadline: Some(Duration::from_secs(300)),
            expansion_budget: None,
            slo: SloConfig::default(),
            flight_capacity: 256,
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Seconds-scale deterministic configuration for tests: small pool,
    /// no hedging (one engine = bit-reproducible outputs), tiny
    /// backoff.
    #[must_use]
    pub fn fast_test() -> Self {
        ServeConfig {
            workers: 2,
            queue: QueueConfig { capacity: 32, tenant_inflight_cap: 2 },
            compiler: MapZeroConfig::fast_test(),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            hedge: false,
            default_deadline: None,
            expansion_budget: None,
            slo: SloConfig::default(),
            flight_capacity: 64,
            breaker: BreakerConfig::fast_test(),
        }
    }
}

/// Monotonic service-level counters (also mirrored into the global
/// metrics registry as `serve.*`).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted into the queue.
    pub admitted: AtomicU64,
    /// Requests shed at admission.
    pub shed: AtomicU64,
    /// Contained internal-fault retries.
    pub retries: AtomicU64,
    /// Worker threads killed by an escaping panic.
    pub worker_deaths: AtomicU64,
    /// Worker threads respawned after a death.
    pub respawns: AtomicU64,
    /// Responses delivered (every admitted request produces exactly
    /// one).
    pub responses: AtomicU64,
    /// Anomalies detected (shed bursts, worker deaths, deadline-miss
    /// streaks), each of which dumped the flight recorder.
    pub anomalies: AtomicU64,
    /// Mapped responses rejected by the independent validator (each
    /// became an `internal` response; healthy runs hold this at zero).
    pub validate_fail: AtomicU64,
    /// Admissions rejected fast because the tenant's breaker was open.
    pub breaker_rejected: AtomicU64,
    /// Requests re-admitted from the journal at startup.
    pub replayed: AtomicU64,
}

struct QueuedRequest {
    request: MapRequest,
    respond: Sender<MapResponse>,
    /// Worker deaths this request has survived so far.
    worker_deaths: u32,
}

struct Shared {
    config: ServeConfig,
    queue: JobQueue<QueuedRequest>,
    /// One network per fabric size, shared by every worker's compiler.
    nets: Mutex<HashMap<usize, Arc<MapZeroNet>>>,
    /// One prediction cache shared by every worker.
    cache: Arc<Mutex<PredictCache>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    stats: ServiceStats,
    /// Interned `serve.inflight.<tenant>` gauge names (the registry
    /// wants `&'static str`; one leak per distinct tenant).
    tenant_gauges: Mutex<HashMap<String, &'static str>>,
    /// Per-tenant SLO windows and anomaly detectors.
    slo: SloTable,
    /// Last N terminal request records, dumped on demand and on
    /// anomalies.
    flight: FlightRecorder<RequestRecord>,
    /// Service start instant (`/status` uptime).
    started_at: Instant,
    /// Write-ahead request journal (`--journal DIR`); `None` runs
    /// without durability.
    journal: Option<Journal>,
    /// Per-tenant circuit breakers.
    breakers: CircuitBreakers,
    /// `STATE_RUNNING` or `STATE_DRAINING`.
    state: AtomicU8,
}

/// The running service. Cloneable handle; [`MapService::shutdown`]
/// drains and joins the pool.
#[derive(Clone)]
pub struct MapService {
    shared: Arc<Shared>,
}

impl MapService {
    /// Start the worker pool without a journal.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        Self::start_with_journal(config, None)
    }

    /// Start the worker pool with an (optional) write-ahead journal.
    /// Requests recovered by [`Journal::open`] should be re-admitted via
    /// [`MapService::submit_replayed`] after this returns.
    #[must_use]
    pub fn start_with_journal(config: ServeConfig, journal: Option<Journal>) -> Self {
        let cache_capacity = config.compiler.agent.mcts.cache_capacity.max(2);
        let workers = config.workers.max(1);
        let breakers = CircuitBreakers::new(config.breaker);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue),
            nets: Mutex::new(HashMap::new()),
            cache: Arc::new(Mutex::new(PredictCache::new(cache_capacity))),
            handles: Mutex::new(Vec::new()),
            stats: ServiceStats::default(),
            tenant_gauges: Mutex::new(HashMap::new()),
            slo: SloTable::new(config.slo),
            flight: FlightRecorder::new(config.flight_capacity),
            started_at: Instant::now(),
            journal,
            breakers,
            state: AtomicU8::new(STATE_RUNNING),
            config,
        });
        for _ in 0..workers {
            spawn_worker(Arc::clone(&shared));
        }
        MapService { shared }
    }

    /// Submit one request. Exactly one response — including a
    /// `Rejected` one when the queue sheds it, or an `Internal` one
    /// after shutdown — arrives on `respond`. Returns whether the
    /// request was admitted into the queue.
    pub fn submit(&self, request: MapRequest, respond: &Sender<MapResponse>) -> bool {
        self.submit_inner(request, respond, true)
    }

    /// Re-admit a request recovered from the journal. Identical to
    /// [`MapService::submit`] except the admit record is *not*
    /// re-appended: [`Journal::open`] already carried it into the
    /// current generation during compaction.
    pub fn submit_replayed(&self, request: MapRequest, respond: &Sender<MapResponse>) -> bool {
        self.shared.stats.replayed.fetch_add(1, Ordering::Relaxed);
        mapzero_obs::counter!("serve.journal.replayed");
        self.submit_inner(request, respond, false)
    }

    fn submit_inner(
        &self,
        request: MapRequest,
        respond: &Sender<MapResponse>,
        journal_admit: bool,
    ) -> bool {
        mapzero_core::failpoint!("serve.enqueue");
        // Draining: answer fast, never queue — in-flight work is what
        // the drain is waiting on.
        if self.shared.state.load(Ordering::SeqCst) != STATE_RUNNING {
            let mut response = rejected_response(&request.id, &request.tenant, 0);
            response.queue_depth = None;
            response.error = Some("service is draining".to_owned());
            mapzero_obs::counter!("serve.drain.rejected");
            account_and_send(&self.shared, respond, response, None);
            return false;
        }
        // Circuit breaker: a tenant that has been killing workers is
        // answered from here, without touching the queue or a worker.
        match self.shared.breakers.admit(&request.tenant, Instant::now()) {
            Admission::Reject => {
                let mut response = rejected_response(&request.id, &request.tenant, 0);
                response.queue_depth = None;
                response.error = Some("breaker_open: tenant circuit breaker is open".to_owned());
                self.shared.stats.breaker_rejected.fetch_add(1, Ordering::Relaxed);
                registry().counter_family("serve.breaker.rejected").with(&request.tenant).inc();
                account_and_send(&self.shared, respond, response, None);
                return false;
            }
            Admission::Probe => {
                mapzero_obs::counter!("serve.breaker.probe");
            }
            Admission::Allow => {}
        }
        // Write-ahead: the admit record is durable before the request
        // becomes processable, so a crash after this point replays it.
        // A journal I/O failure degrades to an unjournaled admission
        // (counted) rather than refusing service.
        if journal_admit {
            if let Some(journal) = &self.shared.journal {
                if let Err(e) = journal.record_admit(&request) {
                    mapzero_obs::counter!("serve.journal.error");
                    eprintln!("serve: journal append failed for `{}`: {e}", request.id);
                }
            }
        }
        let tenant = request.tenant.clone();
        let weight = request.weight;
        let queued = QueuedRequest { request, respond: respond.clone(), worker_deaths: 0 };
        match self.shared.queue.submit(&tenant, weight, queued) {
            Ok(()) => {
                self.shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
                self.shared.slo.record_admitted(&tenant);
                registry().counter_family("serve.admitted").with(&tenant).inc();
                mapzero_obs::gauge!("serve.queue.depth", self.shared.queue.depth() as u64);
                true
            }
            Err((SubmitError::Shed { queue_depth }, refused)) => {
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.shed");
                registry().counter_family("serve.shed.tenant").with(&tenant).inc();
                if let Some(anomaly) = self.shared.slo.record_shed(&tenant, Instant::now()) {
                    note_anomaly(&self.shared, &anomaly);
                }
                let response =
                    rejected_response(&refused.request.id, &refused.request.tenant, queue_depth);
                account_and_send(&self.shared, &refused.respond, response, None);
                false
            }
            Err((SubmitError::Closed, refused)) => {
                let mut response = rejected_response(&refused.request.id, &refused.request.tenant, 0);
                response.outcome = Outcome::Internal;
                response.queue_depth = None;
                response.error = Some("service is shut down".to_owned());
                account_and_send(&self.shared, &refused.respond, response, None);
                false
            }
        }
    }

    /// Submit a whole batch and block for every response; returned in
    /// request order. Shed requests appear as `Rejected` records.
    pub fn process_batch(&self, requests: Vec<MapRequest>) -> Vec<MapResponse> {
        let (tx, rx) = std::sync::mpsc::channel();
        let order: Vec<String> = requests.iter().map(|r| r.id.clone()).collect();
        let mut received = Vec::with_capacity(order.len());
        for request in requests {
            // Every submit produces exactly one response on `tx`
            // (mapped, rejected, or internal) — admitted or not.
            let _ = self.submit(request, &tx);
        }
        for _ in 0..order.len() {
            match rx.recv() {
                Ok(resp) => received.push(resp),
                Err(_) => break,
            }
        }
        // Request order, not completion order.
        let mut by_id: HashMap<String, Vec<MapResponse>> = HashMap::new();
        for resp in received {
            by_id.entry(resp.id.clone()).or_default().push(resp);
        }
        order
            .iter()
            .filter_map(|id| by_id.get_mut(id).and_then(Vec::pop))
            .collect()
    }

    /// Current queue depth (jobs admitted but not yet running).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// In-flight jobs for one tenant.
    #[must_use]
    pub fn inflight(&self, tenant: &str) -> usize {
        self.shared.queue.inflight(tenant)
    }

    /// Service counters.
    #[must_use]
    pub fn stats(&self) -> &ServiceStats {
        &self.shared.stats
    }

    /// The retained flight records (last N terminal requests, oldest
    /// first).
    #[must_use]
    pub fn flight_snapshot(&self) -> Vec<RequestRecord> {
        self.shared.flight.snapshot()
    }

    /// Mark one response as delivered to the client. Called by the
    /// transport *after* the response line is written and flushed — not
    /// at accounting time — so a crash between compute and delivery
    /// still replays the request (at-least-once delivery, exactly-once
    /// across the journal's admit/terminal pair). No-op without a
    /// journal.
    pub fn mark_delivered(&self, response: &MapResponse) {
        if let Some(journal) = &self.shared.journal {
            if let Err(e) = journal.record_terminal(&response.id, response.outcome) {
                mapzero_obs::counter!("serve.journal.error");
                eprintln!("serve: journal terminal append failed for `{}`: {e}", response.id);
            }
        }
    }

    /// Stop admission (new submissions are answered `rejected` with a
    /// drain reason) while letting queued and in-flight work finish.
    /// Returns whether this call initiated the drain (idempotent).
    pub fn begin_drain(&self) -> bool {
        let first = self
            .shared
            .state
            .compare_exchange(STATE_RUNNING, STATE_DRAINING, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if first {
            mapzero_obs::counter!("serve.drain.begin");
            eprintln!("serve: draining — admission stopped, finishing in-flight work");
        }
        first
    }

    /// Whether the service is draining.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.state.load(Ordering::SeqCst) != STATE_RUNNING
    }

    /// Block until the queue and every in-flight job are empty, or the
    /// deadline passes. Returns `true` when fully drained.
    #[must_use]
    pub fn await_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.queue.depth() == 0 && self.shared.queue.inflight_total() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Fsync the journal (drain/shutdown hygiene). No-op without one.
    pub fn flush_journal(&self) {
        if let Some(journal) = &self.shared.journal {
            if let Err(e) = journal.flush() {
                eprintln!("serve: journal flush failed: {e}");
            }
        }
    }

    /// Journal counters, when a journal is attached.
    #[must_use]
    pub fn journal_snapshot(&self) -> Option<JournalSnapshot> {
        self.shared.journal.as_ref().map(Journal::snapshot)
    }

    /// Per-tenant circuit-breaker states, sorted by tenant.
    #[must_use]
    pub fn breaker_status(&self) -> Vec<crate::breaker::BreakerStatus> {
        self.shared.breakers.status()
    }

    /// The `/status` document: uptime, queue depth, worker liveness,
    /// service counters, cache hit rates, flight-recorder occupancy,
    /// and a per-tenant object merging queue occupancy with the SLO
    /// table. The per-tenant invariant (once the queue is idle):
    /// `admitted == mapped + failed + timeout + deadline + internal`,
    /// with `shed` counted separately.
    #[must_use]
    pub fn status_json(&self) -> Json {
        let shared = &self.shared;
        let stats = &shared.stats;
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        let depths: HashMap<String, (usize, usize)> = shared
            .queue
            .tenant_depths()
            .into_iter()
            .map(|(name, queued, inflight)| (name, (queued, inflight)))
            .collect();
        let tenants: Vec<(String, Json)> = shared
            .slo
            .snapshot()
            .into_iter()
            .map(|(name, t)| {
                let (queued, inflight) = depths.get(&name).copied().unwrap_or((0, 0));
                let mut fields = vec![
                    ("queued", Json::from(queued as u64)),
                    ("inflight", Json::from(inflight as u64)),
                    ("admitted", Json::from(t.admitted)),
                    ("shed", Json::from(t.shed)),
                    ("mapped", Json::from(t.mapped)),
                    ("failed", Json::from(t.failed)),
                    ("timeout", Json::from(t.timeout)),
                    ("deadline", Json::from(t.deadline)),
                    ("internal", Json::from(t.internal)),
                ];
                if let Some(rate) = t.deadline_hit_rate {
                    fields.push(("deadline_hit_rate", Json::from(rate)));
                }
                (name, Json::obj(fields))
            })
            .collect();
        let breakers: Vec<(String, Json)> = shared
            .breakers
            .status()
            .into_iter()
            .map(|b| {
                (
                    b.tenant,
                    Json::obj(vec![
                        ("state", Json::from(b.state)),
                        ("failures", Json::from(u64::from(b.failures))),
                        ("trips", Json::from(b.trips)),
                    ]),
                )
            })
            .collect();
        let journal = match shared.journal.as_ref().map(Journal::snapshot) {
            Some(j) => Json::obj(vec![
                ("generation", Json::from(j.generation)),
                ("appended", Json::from(j.appended)),
                ("terminal", Json::from(j.terminal)),
                ("replayed", Json::from(j.replayed)),
                ("compacted", Json::from(j.compacted)),
                ("torn", Json::from(j.torn)),
            ]),
            None => Json::Null,
        };
        let reg = registry();
        Json::obj(vec![
            (
                "uptime_us",
                Json::from(
                    u64::try_from(shared.started_at.elapsed().as_micros()).unwrap_or(u64::MAX),
                ),
            ),
            (
                "state",
                Json::from(if self.draining() { "draining" } else { "running" }),
            ),
            ("queue_depth", Json::from(shared.queue.depth() as u64)),
            (
                "workers",
                Json::obj(vec![
                    ("configured", Json::from(shared.config.workers.max(1) as u64)),
                    ("deaths", load(&stats.worker_deaths)),
                    ("respawns", load(&stats.respawns)),
                ]),
            ),
            (
                "stats",
                Json::obj(vec![
                    ("admitted", load(&stats.admitted)),
                    ("responses", load(&stats.responses)),
                    ("shed", load(&stats.shed)),
                    ("retries", load(&stats.retries)),
                    ("anomalies", load(&stats.anomalies)),
                    ("validate_fail", load(&stats.validate_fail)),
                    ("breaker_rejected", load(&stats.breaker_rejected)),
                    ("replayed", load(&stats.replayed)),
                ]),
            ),
            ("journal", journal),
            ("breakers", Json::Obj(breakers)),
            (
                "cache",
                Json::obj(vec![
                    ("predict_hit", Json::from(reg.counter("search.predict_cache.hit").get())),
                    ("predict_miss", Json::from(reg.counter("search.predict_cache.miss").get())),
                ]),
            ),
            (
                "flight",
                Json::obj(vec![
                    ("capacity", Json::from(shared.flight.capacity() as u64)),
                    ("recorded", Json::from(shared.flight.recorded())),
                ]),
            ),
            ("tenants", Json::Obj(tenants)),
        ])
    }

    /// Stop admissions, drain the queue, and join every worker.
    pub fn shutdown(self) {
        self.shared.queue.close();
        loop {
            let handle = {
                let mut handles =
                    self.shared.handles.lock().unwrap_or_else(PoisonError::into_inner);
                handles.pop()
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// A `Rejected` response built at the shed point.
fn rejected_response(id: &str, tenant: &str, queue_depth: usize) -> MapResponse {
    MapResponse {
        id: id.to_owned(),
        tenant: tenant.to_owned(),
        outcome: Outcome::Rejected,
        engine: None,
        mii: None,
        achieved_ii: None,
        mapping: None,
        queue_wait: Duration::ZERO,
        service_time: Duration::ZERO,
        retries: 0,
        worker_deaths: 0,
        queue_depth: Some(queue_depth),
        error: Some("queue full".to_owned()),
        telemetry: None,
    }
}

fn spawn_worker(shared: Arc<Shared>) {
    let for_thread = Arc::clone(&shared);
    let handle = std::thread::spawn(move || worker_loop(&for_thread));
    shared.handles.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
}

fn build_compiler(shared: &Shared) -> Compiler {
    let mut compiler = Compiler::new(shared.config.compiler)
        .with_shared_cache(Arc::clone(&shared.cache));
    if shared.config.hedge {
        let sa = SaConfig {
            max_extra_ii: shared.config.compiler.max_extra_ii,
            ..SaConfig::default()
        };
        compiler = compiler.with_fallback(Box::new(SaMapper::new(sa)));
    }
    compiler
}

/// Look up (or deterministically create) the shared network for this
/// fabric size and install it into the worker's compiler, so every
/// worker maps with identical weights.
fn install_net(shared: &Shared, compiler: &mut Compiler, pe_count: usize) {
    if compiler.net_for(pe_count).is_some() {
        return;
    }
    let mut nets = shared.nets.lock().unwrap_or_else(PoisonError::into_inner);
    let net = nets.entry(pe_count).or_insert_with(|| {
        // MapZeroNet::new is deterministic in (size, config.seed): every
        // service instance with the same config serves identical nets.
        Arc::new(MapZeroNet::new(pe_count, shared.config.compiler.net))
    });
    compiler.install_shared_net(Arc::clone(net));
}

fn tenant_inflight_gauge(shared: &Shared, tenant: &str) {
    let value = shared.queue.inflight(tenant) as u64;
    let mut names = shared.tenant_gauges.lock().unwrap_or_else(PoisonError::into_inner);
    let name: &'static str = names
        .entry(tenant.to_owned())
        .or_insert_with(|| Box::leak(format!("serve.inflight.{tenant}").into_boxed_str()));
    registry().gauge(name).set(value);
}

/// The request's absolute deadline (enqueue instant + allowance); a
/// duration too large for the clock degrades to unbounded, matching the
/// `Budget::with_deadline` contract.
fn effective_deadline(config: &ServeConfig, job: &Job<QueuedRequest>) -> Option<Instant> {
    let allowance = job.item.request.deadline.or(config.default_deadline)?;
    job.enqueued_at.checked_add(allowance)
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut compiler = build_compiler(shared);
    while let Some((tenant, job)) = shared.queue.pop() {
        mapzero_obs::gauge!("serve.queue.depth", shared.queue.depth() as u64);
        tenant_inflight_gauge(shared, &tenant);
        let outcome =
            catch_unwind(AssertUnwindSafe(|| process_job(shared, &mut compiler, &job)));
        shared.queue.finish(&tenant);
        tenant_inflight_gauge(shared, &tenant);
        let deadline_applied = effective_deadline(&shared.config, &job).is_some();
        match outcome {
            Ok(response) => deliver(shared, &job.item.respond, response, deadline_applied),
            Err(_) => {
                // Worker death: contain, account, hand the request back
                // (retry) or answer it (structural failure) — never
                // lose it, never answer twice (nothing was delivered
                // yet), then respawn a clean worker and die.
                shared.stats.worker_deaths.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.worker.death");
                note_anomaly(shared, &Anomaly::WorkerDeath);
                record_breaker_failure(shared, &tenant);
                // Account the respawn and start the replacement before
                // handing the request back: the retry's response must
                // not be able to outrun the death bookkeeping (a caller
                // reading stats after its last response would see a
                // death with no matching respawn).
                shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.worker.respawn");
                spawn_worker(Arc::clone(shared));
                let mut job = job;
                job.attempts += 1;
                job.item.worker_deaths += 1;
                let expired = effective_deadline(&shared.config, &job)
                    .is_some_and(|d| Instant::now() >= d);
                if job.attempts <= shared.config.max_retries && !expired {
                    shared.queue.requeue_front(&tenant, job);
                } else {
                    let response = death_response(&job);
                    deliver(shared, &job.item.respond, response, deadline_applied);
                }
                return;
            }
        }
    }
}

/// Terminal response for a request whose worker died past its retry or
/// deadline allowance.
fn death_response(job: &Job<QueuedRequest>) -> MapResponse {
    let req = &job.item.request;
    MapResponse {
        id: req.id.clone(),
        tenant: req.tenant.clone(),
        outcome: Outcome::Internal,
        engine: None,
        mii: None,
        achieved_ii: None,
        mapping: None,
        queue_wait: Instant::now().saturating_duration_since(job.enqueued_at),
        service_time: Duration::ZERO,
        retries: 0,
        worker_deaths: job.item.worker_deaths,
        queue_depth: None,
        error: Some(format!(
            "worker died {} time(s) processing this request",
            job.item.worker_deaths
        )),
        telemetry: None,
    }
}

/// Deliver exactly one response line. The `serve.respond` failpoint
/// models a broken transport: a fired fault drops the line (counted)
/// without killing the worker or affecting any other request.
fn deliver(
    shared: &Shared,
    respond: &Sender<MapResponse>,
    response: MapResponse,
    deadline_applied: bool,
) {
    let transport = catch_unwind(|| failpoint::trigger("serve.respond"));
    match transport {
        Ok(Ok(())) => account_and_send(shared, respond, response, Some(deadline_applied)),
        _ => {
            mapzero_obs::counter!("serve.respond.dropped");
        }
    }
}

/// Terminal accounting for one response — the single place a request
/// becomes observable: the response counter, the flight record, the
/// labeled outcome/engine counters, the latency sketches, and (for
/// admitted requests, `slo = Some(deadline_applied)`) the tenant's SLO
/// window — then the send itself. A hung-up receiver (caller stopped
/// listening) is its problem, not the worker's.
fn account_and_send(
    shared: &Shared,
    respond: &Sender<MapResponse>,
    response: MapResponse,
    slo: Option<bool>,
) {
    shared.stats.responses.fetch_add(1, Ordering::Relaxed);
    shared.flight.push(RequestRecord::from_response(&response));
    let reg = registry();
    reg.counter_family("serve.outcome").with(response.outcome.as_str()).inc();
    if let Some(engine) = &response.engine {
        reg.counter_family("serve.engine").with(engine).inc();
    }
    if response.outcome != Outcome::Rejected {
        let wait_us = u64::try_from(response.queue_wait.as_micros()).unwrap_or(u64::MAX);
        let service_us = u64::try_from(response.service_time.as_micros()).unwrap_or(u64::MAX);
        reg.sketch("serve.latency.queue_wait_us").record(wait_us);
        reg.sketch("serve.latency.service_us").record(service_us);
        reg.sketch_family("serve.tenant.service_us").with(&response.tenant).record(service_us);
    }
    if let Some(deadline_applied) = slo {
        if let Some(anomaly) =
            shared.slo.record_outcome(&response.tenant, response.outcome, deadline_applied)
        {
            note_anomaly(shared, &anomaly);
        }
        // Breaker verdict for this admitted request. Worker deaths were
        // already recorded at death time (`worker_deaths == 0` gate
        // avoids double-counting a death that ended `internal`); honest
        // negative answers (failed/timeout/deadline) count as successes
        // — they close a half-open probe instead of punishing hard
        // kernels.
        match response.outcome {
            Outcome::Internal if response.worker_deaths == 0 => {
                record_breaker_failure(shared, &response.tenant);
            }
            Outcome::Mapped | Outcome::Failed | Outcome::Timeout | Outcome::Deadline => {
                shared.breakers.record_success(&response.tenant);
            }
            _ => {}
        }
    }
    let _ = respond.send(response);
}

/// Record one tenant-caused failure; when it trips the breaker open,
/// surface the transition as an anomaly (flight-recorder dump included).
fn record_breaker_failure(shared: &Shared, tenant: &str) {
    if let Some(failures) = shared.breakers.record_failure(tenant, Instant::now()) {
        registry().counter_family("serve.breaker.open").with(tenant).inc();
        note_anomaly(shared, &Anomaly::BreakerOpen { tenant: tenant.to_owned(), failures });
    }
}

/// Count an anomaly and dump the flight recorder to stderr: the last N
/// terminal requests, oldest first, as JSONL under a one-line header.
fn note_anomaly(shared: &Shared, anomaly: &Anomaly) {
    shared.stats.anomalies.fetch_add(1, Ordering::Relaxed);
    mapzero_obs::counter!("serve.anomaly");
    let dump = shared.flight.snapshot();
    eprintln!("serve: anomaly: {} — flight recorder ({} records):", anomaly.describe(), dump.len());
    for record in dump {
        eprintln!("{}", record.to_json().to_string_compact());
    }
}

/// Process one admitted request on this worker: deadline gate, fault
/// arming, budgeted mapping with bounded internal-fault retries.
/// Panics escaping this function (e.g. `serve.worker.pre_map`) are the
/// worker-death path handled by the caller.
fn process_job(shared: &Shared, compiler: &mut Compiler, job: &Job<QueuedRequest>) -> MapResponse {
    let req = &job.item.request;
    let started = Instant::now();
    let queue_wait = started.saturating_duration_since(job.enqueued_at);
    let wait_us = u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX);
    mapzero_obs::observe!("serve.queue_wait_us", wait_us);
    // Scope every span emitted while this request is on the worker —
    // including the compiler's own tree, and including spans emitted
    // during a worker-death unwind — to the request id. Declared before
    // the `serve.request` guard so the guard's drop still sees the id.
    let _req_scope = mapzero_obs::trace::request_scope(&req.id);
    // No code runs while a request waits in the queue, so its wait is
    // reconstructed as a synthetic span at pickup time.
    mapzero_obs::trace::emit_span(
        "serve.queue.wait",
        mapzero_obs::trace::now_us().saturating_sub(wait_us),
        wait_us,
        Some(&req.id),
    );
    let _request_span = mapzero_obs::span!("serve.request");
    let capture = mapzero_obs::RunCapture::begin();
    let deadline = effective_deadline(&shared.config, job);

    let mut response = MapResponse {
        id: req.id.clone(),
        tenant: req.tenant.clone(),
        outcome: Outcome::Internal,
        engine: None,
        mii: None,
        achieved_ii: None,
        mapping: None,
        queue_wait,
        service_time: Duration::ZERO,
        retries: 0,
        worker_deaths: job.item.worker_deaths,
        queue_depth: None,
        error: None,
        telemetry: None,
    };

    // Expired while queued: answer structurally, burn no search time.
    if deadline.is_some_and(|d| started >= d) {
        mapzero_obs::counter!("serve.deadline.queued");
        response.outcome = Outcome::Deadline;
        response.error = Some("deadline expired while queued".to_owned());
        response.telemetry = capture.map(mapzero_obs::RunCapture::finish);
        return response;
    }

    // Per-request chaos faults, armed thread-locally for exactly this
    // request's processing (scope guards disarm even on unwind).
    let _fault_scopes: Vec<FailScope> = req
        .fault
        .as_deref()
        .and_then(|spec| failpoint::parse_spec(spec).ok())
        .unwrap_or_default()
        .into_iter()
        .map(|(name, action, after)| failpoint::scoped(&name, after, action))
        .collect();

    mapzero_core::failpoint!("serve.worker.pre_map");

    install_net(shared, compiler, req.cgra.pe_count());
    let mut budget = deadline.map_or_else(Budget::unlimited, Budget::from_deadline_at);
    if let Some(cap) = shared.config.expansion_budget {
        budget = budget.with_expansion_cap(cap);
    }
    let bounds = IiBounds { min: req.ii_min, max: req.ii_max };

    let mut retries: u32 = 0;
    let result = loop {
        let attempt = compiler.map_request(&req.dfg, &req.cgra, &budget, bounds);
        match attempt {
            Err(MapError::Internal(_))
                if retries < shared.config.max_retries && !budget.exhausted() =>
            {
                retries += 1;
                shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                mapzero_obs::counter!("serve.retry");
                let backoff = shared
                    .config
                    .retry_backoff
                    .saturating_mul(1 << (retries - 1).min(16));
                let nap = match budget.remaining_time() {
                    Some(remaining) => backoff.min(remaining),
                    None => backoff,
                };
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
            other => break other,
        }
    };

    response.retries = retries;
    match result {
        Ok(report) => {
            response.engine = Some(report.engine.clone());
            response.mii = Some(report.mii);
            match report.mapping {
                Some(mut mapping) => {
                    // The `validate.corrupt` failpoint damages the
                    // mapping *after* the compiler produced it — the
                    // only way to prove the validator gate fires, since
                    // a correct compiler never feeds it garbage.
                    if failpoint::trigger("validate.corrupt").is_err() {
                        validate::corrupt(&mut mapping);
                    }
                    let ii = mapping.ii;
                    match validate::check_mapping(&req.dfg, &req.cgra, &mapping, ii) {
                        Ok(()) => {
                            response.outcome = Outcome::Mapped;
                            response.achieved_ii = Some(ii);
                            response.mapping = Some(mapping);
                        }
                        Err(violations) => {
                            shared.stats.validate_fail.fetch_add(1, Ordering::Relaxed);
                            mapzero_obs::counter!("serve.validate.fail");
                            note_anomaly(
                                shared,
                                &Anomaly::InvalidMapping {
                                    id: req.id.clone(),
                                    tenant: req.tenant.clone(),
                                },
                            );
                            response.outcome = Outcome::Internal;
                            response.error = Some(format!(
                                "mapping rejected by independent validation ({} violation(s), first: {})",
                                violations.len(),
                                violations.first().map_or("?", String::as_str),
                            ));
                        }
                    }
                }
                None => {
                    // The compiler can answer Ok with no mapping (II
                    // window exhausted without a legal result); that is
                    // a structural failure, not a success.
                    response.outcome = Outcome::Failed;
                    response.error =
                        Some("no mapping produced within the II window".to_owned());
                }
            }
        }
        Err(MapError::Unmappable(msg)) => {
            response.outcome = Outcome::Failed;
            response.error = Some(format!("unmappable: {msg}"));
        }
        Err(MapError::NoSchedule(msg)) => {
            response.outcome = Outcome::Failed;
            response.error = Some(format!("no schedule: {msg}"));
        }
        Err(MapError::Timeout { best_partial }) => {
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            response.outcome = if expired { Outcome::Deadline } else { Outcome::Timeout };
            response.error = Some(format!(
                "budget exhausted: {}/{} nodes placed, best II {:?}",
                best_partial.nodes_placed, best_partial.total_nodes, best_partial.best_ii
            ));
        }
        Err(MapError::Diverged { epoch }) => {
            response.outcome = Outcome::Internal;
            response.error = Some(format!("training diverged at epoch {epoch}"));
        }
        Err(MapError::Internal(msg)) => {
            response.outcome = Outcome::Internal;
            response.error = Some(msg);
        }
    }
    response.service_time = started.elapsed();
    mapzero_obs::observe!(
        "serve.service_us",
        u64::try_from(response.service_time.as_micros()).unwrap_or(u64::MAX)
    );
    response.telemetry = capture.map(mapzero_obs::RunCapture::finish);
    response
}
