//! The bounded, tenant-fair job queue.
//!
//! Three admission/scheduling properties, all enforced here so the
//! worker pool above stays trivial:
//!
//! 1. **Bounded depth** — [`JobQueue::submit`] sheds (returns the
//!    observed depth) instead of queueing past capacity; an admitted
//!    job is never dropped ([`JobQueue::requeue_front`] bypasses the
//!    cap so retries of already-admitted work cannot be shed).
//! 2. **Weighted fairness** — tenants are stride-scheduled: each pop
//!    takes the runnable tenant with the lowest virtual *pass*, and a
//!    tenant's pass advances by `STRIDE_SCALE / weight` per pop, so a
//!    weight-3 tenant drains three jobs for every one of a weight-1
//!    tenant under contention, without starving anyone.
//! 3. **In-flight caps** — a tenant at its concurrency cap is skipped
//!    (not popped) until [`JobQueue::finish`] frees a slot, so one
//!    tenant cannot occupy every worker no matter how fast it submits.
//!
//! The queue is a plain `Mutex<State>` + `Condvar`; scheduling
//! decisions are deterministic given the submit/pop order (ties broken
//! by tenant name), which the fairness unit tests rely on.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Stride-scheduling scale: pass increments are `STRIDE_SCALE / weight`.
const STRIDE_SCALE: u64 = 1 << 20;

/// Queue sizing and per-tenant limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum queued (not yet running) jobs before shedding.
    pub capacity: usize,
    /// Maximum concurrently running jobs per tenant.
    pub tenant_inflight_cap: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig { capacity: 64, tenant_inflight_cap: 2 }
    }
}

/// One unit of queued work (the service layer wraps the request with
/// its delivery channel and bookkeeping).
#[derive(Debug)]
pub struct Job<T> {
    /// The payload (a request plus service bookkeeping).
    pub item: T,
    /// When the job was first admitted — queue wait and deadlines are
    /// measured from here, surviving requeues.
    pub enqueued_at: Instant,
    /// Processing attempts so far (0 for a fresh job).
    pub attempts: u32,
}

#[derive(Debug)]
struct TenantLane<T> {
    jobs: VecDeque<Job<T>>,
    weight: u32,
    inflight: usize,
    /// Stride-scheduling virtual time; lowest runnable pass pops next.
    pass: u64,
}

// Manual impl: `derive(Default)` would needlessly bound `T: Default`.
impl<T> Default for TenantLane<T> {
    fn default() -> Self {
        TenantLane { jobs: VecDeque::new(), weight: 1, inflight: 0, pass: 0 }
    }
}

#[derive(Debug)]
struct State<T> {
    lanes: HashMap<String, TenantLane<T>>,
    queued: usize,
    closed: bool,
    /// Global virtual time: new/idle tenants join at the current floor
    /// so a freshly-arrived tenant cannot monopolize (tiny pass) nor be
    /// locked out (huge pass).
    virtual_time: u64,
}

/// The bounded tenant-fair queue. `T` is the job payload.
#[derive(Debug)]
pub struct JobQueue<T> {
    config: QueueConfig,
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity; the payload carries the depth observed.
    Shed {
        /// Queued jobs at the moment of shedding.
        queue_depth: usize,
    },
    /// The queue is shut down.
    Closed,
}

impl<T> JobQueue<T> {
    /// An empty open queue.
    #[must_use]
    pub fn new(config: QueueConfig) -> Self {
        JobQueue {
            config,
            state: Mutex::new(State {
                lanes: HashMap::new(),
                queued: 0,
                closed: false,
                virtual_time: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admit a job, or shed it when the queue is full. A refused item
    /// is handed back so the caller can answer it (the service sends a
    /// `Rejected` response on the request's own channel).
    ///
    /// # Errors
    /// [`SubmitError::Shed`] at capacity, [`SubmitError::Closed`] after
    /// [`JobQueue::close`]; both return the item.
    pub fn submit(&self, tenant: &str, weight: u32, item: T) -> Result<(), (SubmitError, T)> {
        let mut s = self.lock();
        if s.closed {
            return Err((SubmitError::Closed, item));
        }
        if s.queued >= self.config.capacity {
            return Err((SubmitError::Shed { queue_depth: s.queued }, item));
        }
        let vt = s.virtual_time;
        let lane = s.lanes.entry(tenant.to_owned()).or_default();
        lane.weight = weight.max(1);
        if lane.jobs.is_empty() && lane.inflight == 0 {
            // (Re)joining tenant starts at the current virtual floor.
            lane.pass = lane.pass.max(vt);
        }
        lane.jobs.push_back(Job { item, enqueued_at: Instant::now(), attempts: 0 });
        s.queued += 1;
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Re-admit an already-admitted job at the front of its tenant's
    /// lane, bypassing the capacity check: a retry (worker death,
    /// transient internal fault) must never be shed — the admission
    /// decision was already made.
    pub fn requeue_front(&self, tenant: &str, job: Job<T>) {
        let mut s = self.lock();
        let lane = s.lanes.entry(tenant.to_owned()).or_default();
        lane.jobs.push_front(job);
        s.queued += 1;
        drop(s);
        self.ready.notify_one();
    }

    /// Block until a job is runnable (fairness- and cap-aware) or the
    /// queue closes with nothing left. Returns the tenant name with the
    /// job; the caller must pair every `pop` with [`JobQueue::finish`].
    pub fn pop(&self) -> Option<(String, Job<T>)> {
        let mut s = self.lock();
        loop {
            // Runnable = has queued jobs and spare in-flight quota.
            let next = s
                .lanes
                .iter()
                .filter(|(_, lane)| {
                    !lane.jobs.is_empty() && lane.inflight < self.config.tenant_inflight_cap
                })
                .min_by(|(na, a), (nb, b)| a.pass.cmp(&b.pass).then_with(|| na.cmp(nb)))
                .map(|(name, _)| name.clone());
            if let Some(name) = next {
                let lane = s.lanes.get_mut(&name).expect("lane exists");
                let job = lane.jobs.pop_front().expect("non-empty lane");
                lane.inflight += 1;
                lane.pass += STRIDE_SCALE / u64::from(lane.weight.max(1));
                let pass = lane.pass;
                s.virtual_time = s.virtual_time.max(pass);
                s.queued -= 1;
                return Some((name, job));
            }
            if s.closed && s.queued == 0 {
                return None;
            }
            // Either empty, or every backlogged tenant is at its cap.
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Release the in-flight slot a [`JobQueue::pop`] took.
    pub fn finish(&self, tenant: &str) {
        let mut s = self.lock();
        if let Some(lane) = s.lanes.get_mut(tenant) {
            lane.inflight = lane.inflight.saturating_sub(1);
        }
        drop(s);
        // A freed cap slot may make a skipped lane runnable.
        self.ready.notify_all();
    }

    /// Jobs queued (not running) right now.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().queued
    }

    /// In-flight jobs for one tenant.
    #[must_use]
    pub fn inflight(&self, tenant: &str) -> usize {
        self.lock().lanes.get(tenant).map_or(0, |l| l.inflight)
    }

    /// In-flight jobs across all tenants (the drain path polls this
    /// together with [`JobQueue::depth`] to know when the pool is idle).
    #[must_use]
    pub fn inflight_total(&self) -> usize {
        self.lock().lanes.values().map(|l| l.inflight).sum()
    }

    /// Per-tenant `(queued, inflight)` occupancy, sorted by tenant name
    /// (the `/status` endpoint's queue view).
    #[must_use]
    pub fn tenant_depths(&self) -> Vec<(String, usize, usize)> {
        let s = self.lock();
        let mut rows: Vec<(String, usize, usize)> = s
            .lanes
            .iter()
            .map(|(name, lane)| (name.clone(), lane.jobs.len(), lane.inflight))
            .collect();
        rows.sort();
        rows
    }

    /// Stop admissions; blocked `pop`s return `None` once drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, cap: usize) -> QueueConfig {
        QueueConfig { capacity, tenant_inflight_cap: cap }
    }

    #[test]
    fn sheds_at_capacity_with_observed_depth() {
        let q = JobQueue::new(cfg(2, 8));
        q.submit("a", 1, 1).unwrap();
        q.submit("a", 1, 2).unwrap();
        let (err, item) = q.submit("a", 1, 3).unwrap_err();
        assert_eq!(err, SubmitError::Shed { queue_depth: 2 });
        assert_eq!(item, 3, "refused item handed back");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn requeue_front_bypasses_capacity_and_pops_first() {
        let q = JobQueue::new(cfg(1, 8));
        q.submit("a", 1, 1).unwrap();
        let (_, mut job) = q.pop().unwrap();
        q.finish("a");
        job.attempts += 1;
        q.submit("a", 1, 2).unwrap(); // fills capacity again
        q.requeue_front("a", job); // must still be admitted
        assert_eq!(q.depth(), 2);
        let (_, first) = q.pop().unwrap();
        assert_eq!(first.item, 1, "requeued job runs before newer work");
        assert_eq!(first.attempts, 1);
    }

    #[test]
    fn requeue_preserves_the_original_enqueue_time() {
        // Deadline accounting regression: a job requeued after a worker
        // death must keep its first admission instant — deadlines and
        // queue wait are charged from there, not from the requeue.
        let q = JobQueue::new(cfg(8, 8));
        q.submit("a", 1, 1).unwrap();
        let (_, job) = q.pop().unwrap();
        let original = job.enqueued_at;
        q.finish("a");
        std::thread::sleep(std::time::Duration::from_millis(15));
        q.requeue_front("a", job);
        let (_, retried) = q.pop().unwrap();
        assert_eq!(retried.enqueued_at, original);
        assert!(
            q.depth() == 0 && q.inflight_total() == 1,
            "popped job counts as in-flight"
        );
    }

    #[test]
    fn weighted_tenants_drain_proportionally() {
        let q = JobQueue::new(cfg(64, 64));
        for i in 0..12 {
            q.submit("heavy", 3, i).unwrap();
            q.submit("light", 1, 100 + i).unwrap();
        }
        // Drain the first 8 pops and count per tenant: stride order
        // gives `heavy` ~3 of every 4 slots.
        let mut heavy = 0;
        for _ in 0..8 {
            let (tenant, _) = q.pop().unwrap();
            if tenant == "heavy" {
                heavy += 1;
            }
        }
        assert_eq!(heavy, 6, "weight-3 tenant gets 3/4 of contended slots");
    }

    #[test]
    fn equal_weights_alternate() {
        let q = JobQueue::new(cfg(64, 64));
        for i in 0..4 {
            q.submit("a", 1, i).unwrap();
            q.submit("b", 1, i).unwrap();
        }
        let order: Vec<String> = (0..8).map(|_| q.pop().unwrap().0).collect();
        let a_first: Vec<&str> = order.iter().map(String::as_str).collect();
        assert_eq!(a_first, ["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn inflight_cap_skips_saturated_tenant() {
        let q = JobQueue::new(cfg(64, 1));
        q.submit("a", 1, 1).unwrap();
        q.submit("a", 1, 2).unwrap();
        q.submit("b", 1, 3).unwrap();
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, "a");
        // `a` is at its cap: the next pop must take `b` even though `a`
        // has the lower pass.
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, "b");
        // Freeing `a`'s slot makes its second job runnable again.
        q.finish("a");
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, "a");
    }

    #[test]
    fn rejoining_tenant_does_not_monopolize() {
        let q = JobQueue::new(cfg(64, 64));
        for i in 0..4 {
            q.submit("old", 1, i).unwrap();
        }
        // Advance `old`'s pass by draining two jobs.
        for _ in 0..2 {
            let _ = q.pop().unwrap();
            q.finish("old");
        }
        // A newcomer joins at the virtual floor: it gets the next slot
        // but cannot claim *all* subsequent slots.
        q.submit("new", 1, 100).unwrap();
        q.submit("new", 1, 101).unwrap();
        let order: Vec<String> = (0..4).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(order.iter().filter(|t| *t == "new").count(), 2);
        assert_ne!(order[..2].iter().filter(|t| *t == "new").count(), 2, "{order:?}");
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = JobQueue::new(cfg(8, 8));
        q.submit("a", 1, 1).unwrap();
        q.close();
        assert_eq!(q.submit("a", 1, 2).unwrap_err().0, SubmitError::Closed);
        assert!(q.pop().is_some(), "closed queue still drains admitted work");
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = std::sync::Arc::new(JobQueue::new(cfg(8, 8)));
        let q2 = std::sync::Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop().map(|(t, j)| (t, j.item)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit("a", 1, 42).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(("a".to_owned(), 42)));
    }
}
