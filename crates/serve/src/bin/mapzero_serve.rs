//! The `mapzero_serve` binary: the compile service behind stdin/stdout
//! batches or a Unix socket.
//!
//! Default (stdin) mode reads one request batch from stdin, writes one
//! JSONL response per request to stdout in completion order, and exits
//! 0 — the CI smoke gate and shell pipelines use this:
//!
//! ```text
//! mapzero_serve --workers 4 --summary < batch.txt
//! ```
//!
//! Socket mode (`--socket PATH`) accepts connections forever; each
//! connection is an independent batch (requests in, JSONL out, close).
//!
//! Flags:
//! - `--workers N`        worker threads (default 2)
//! - `--queue-cap N`      queue capacity before shedding (default 64)
//! - `--inflight-cap N`   per-tenant concurrent jobs (default 2)
//! - `--retries N`        internal-fault/worker-death retries (default 2)
//! - `--no-hedge`         disable the SA fallback lane
//! - `--summary`          append one `{"summary":...}` JSONL line
//! - `--socket PATH`      serve a Unix socket instead of stdin
//! - `--admin-socket P`   introspection socket (status | metrics | flight)
//! - `--hold`             stdin mode: stay alive after the batch for
//!   scraping the admin socket; stop with SIGTERM
//!
//! `SIGUSR1` dumps the rendered status and the metrics exposition to
//! stderr at any time, admin socket or not.

use mapzero_serve::service::{MapService, ServeConfig};
use mapzero_serve::wire::RequestReader;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::mpsc;

fn main() -> ExitCode {
    if let Some(path) = mapzero_obs::init_from_env() {
        eprintln!("telemetry trace -> {path}");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    let mut socket: Option<String> = None;
    let mut admin_socket: Option<String> = None;
    let mut summary = false;
    let mut hold = false;

    fn num<'a>(it: &mut impl Iterator<Item = &'a String>, what: &str) -> Option<usize> {
        match it.next().map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => Some(n),
            _ => {
                eprintln!("{what}: expected a number");
                None
            }
        }
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match num(&mut it, "--workers") {
                Some(n) => config.workers = n.max(1),
                None => return ExitCode::FAILURE,
            },
            "--queue-cap" => match num(&mut it, "--queue-cap") {
                Some(n) => config.queue.capacity = n.max(1),
                None => return ExitCode::FAILURE,
            },
            "--inflight-cap" => match num(&mut it, "--inflight-cap") {
                Some(n) => config.queue.tenant_inflight_cap = n.max(1),
                None => return ExitCode::FAILURE,
            },
            "--retries" => match num(&mut it, "--retries") {
                Some(n) => config.max_retries = u32::try_from(n).unwrap_or(u32::MAX),
                None => return ExitCode::FAILURE,
            },
            "--no-hedge" => config.hedge = false,
            "--summary" => summary = true,
            "--hold" => hold = true,
            "--socket" => match it.next() {
                Some(path) => socket = Some(path.clone()),
                None => {
                    eprintln!("--socket: expected a path");
                    return ExitCode::FAILURE;
                }
            },
            "--admin-socket" => match it.next() {
                Some(path) => admin_socket = Some(path.clone()),
                None => {
                    eprintln!("--admin-socket: expected a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let service = MapService::start(config);
    mapzero_serve::admin::install_sigusr1_dump(&service);
    if let Some(path) = &admin_socket {
        if let Err(e) = mapzero_serve::admin::spawn_admin_socket(&service, path) {
            eprintln!("cannot bind admin socket {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("admin socket on {path}");
    }
    let code = match socket {
        Some(path) => serve_socket(&service, &path),
        None => serve_stdin(&service, summary, hold),
    };
    service.shutdown();
    if let Some(path) = &admin_socket {
        let _ = std::fs::remove_file(path);
    }
    code
}

/// One batch from stdin, JSONL to stdout, exit (or park with `--hold`).
fn serve_stdin(service: &MapService, summary: bool, hold: bool) -> ExitCode {
    let stdin = std::io::stdin();
    let mut reader = RequestReader::new(stdin.lock());
    let (tx, rx) = mpsc::channel();
    let mut submitted = 0usize;
    loop {
        match reader.next_request() {
            Ok(Some(request)) => {
                let _ = service.submit(request, &tx);
                submitted += 1;
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("bad request batch: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    drop(tx);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for _ in 0..submitted {
        match rx.recv() {
            Ok(resp) => {
                if writeln!(out, "{}", resp.to_jsonl()).is_err() {
                    return ExitCode::FAILURE;
                }
            }
            Err(_) => break,
        }
    }
    if summary {
        let _ = writeln!(out, "{}", summary_line(service));
    }
    // The MAPZERO_TRACE sink buffers; push the batch's spans to disk
    // before exiting (or parking) so readers see a complete trace.
    mapzero_obs::sink::flush();
    if hold {
        // Keep the service (and its admin socket) alive for scraping;
        // flush first so pipelines reading stdout see the batch.
        let _ = out.flush();
        drop(out);
        eprintln!("batch done; holding (stop with SIGTERM)");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    ExitCode::SUCCESS
}

/// Accept loop: each connection is one batch.
fn serve_socket(service: &MapService, path: &str) -> ExitCode {
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("serving on {path}");
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let service = service.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            serve_connection(&service, reader, stream);
        });
    }
    ExitCode::SUCCESS
}

fn serve_connection<R: BufRead, W: Write>(service: &MapService, input: R, mut output: W) {
    let mut reader = RequestReader::new(input);
    let (tx, rx) = mpsc::channel();
    let mut submitted = 0usize;
    loop {
        match reader.next_request() {
            Ok(Some(request)) => {
                let _ = service.submit(request, &tx);
                submitted += 1;
            }
            Ok(None) => break,
            Err(e) => {
                let _ = writeln!(output, "{{\"error\":\"{e}\"}}");
                return;
            }
        }
    }
    drop(tx);
    for _ in 0..submitted {
        match rx.recv() {
            Ok(resp) => {
                if writeln!(output, "{}", resp.to_jsonl()).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    mapzero_obs::sink::flush();
}

/// Service-level counters as one JSONL record.
fn summary_line(service: &MapService) -> String {
    use mapzero_obs::json::Json;
    let stats = service.stats();
    Json::obj(vec![(
        "summary",
        Json::obj(vec![
            ("shed", Json::from(stats.shed.load(Ordering::Relaxed))),
            ("retries", Json::from(stats.retries.load(Ordering::Relaxed))),
            ("worker_deaths", Json::from(stats.worker_deaths.load(Ordering::Relaxed))),
            ("respawns", Json::from(stats.respawns.load(Ordering::Relaxed))),
            ("responses", Json::from(stats.responses.load(Ordering::Relaxed))),
            ("queue_depth", Json::from(service.queue_depth() as u64)),
        ]),
    )])
    .to_string_compact()
}
