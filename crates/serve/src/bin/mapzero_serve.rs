//! The `mapzero_serve` binary: the compile service behind stdin/stdout
//! batches or a Unix socket.
//!
//! Default (stdin) mode reads one request batch from stdin, writes one
//! JSONL response per request to stdout in completion order, and exits
//! 0 — the CI smoke gate and shell pipelines use this:
//!
//! ```text
//! mapzero_serve --workers 4 --summary < batch.txt
//! ```
//!
//! Socket mode (`--socket PATH`) accepts connections forever; each
//! connection is an independent batch (requests in, JSONL out, close).
//!
//! Flags:
//! - `--workers N`        worker threads (default 2)
//! - `--queue-cap N`      queue capacity before shedding (default 64)
//! - `--inflight-cap N`   per-tenant concurrent jobs (default 2)
//! - `--retries N`        internal-fault/worker-death retries (default 2)
//! - `--no-hedge`         disable the SA fallback lane
//! - `--summary`          append one `{"summary":...}` JSONL line
//! - `--socket PATH`      serve a Unix socket instead of stdin
//! - `--admin-socket P`   introspection socket
//!   (status | metrics | flight | shutdown)
//! - `--journal DIR`      write-ahead request journal: admitted requests
//!   whose responses were never delivered replay at the next start
//! - `--drain-deadline-ms N`  grace period for in-flight work on a
//!   `SIGTERM`/`shutdown` drain (default 5000)
//! - `--hold`             stdin mode: stay alive after the batch for
//!   scraping the admin socket; stop with SIGTERM (drains, exits 0)
//!
//! `SIGUSR1` dumps the rendered status and the metrics exposition to
//! stderr at any time, admin socket or not. `SIGTERM` (or the admin
//! `shutdown` command) begins a graceful drain: admission stops,
//! in-flight work finishes under the drain deadline, the journal and
//! trace sink are flushed, and the process exits 0.

use mapzero_serve::journal::Journal;
use mapzero_serve::service::{MapService, ServeConfig};
use mapzero_serve::wire::{MapRequest, RequestReader};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::Duration;

fn main() -> ExitCode {
    if let Some(path) = mapzero_obs::init_from_env() {
        eprintln!("telemetry trace -> {path}");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    let mut socket: Option<String> = None;
    let mut admin_socket: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let mut drain_deadline = Duration::from_millis(5000);
    let mut summary = false;
    let mut hold = false;

    fn num<'a>(it: &mut impl Iterator<Item = &'a String>, what: &str) -> Option<usize> {
        match it.next().map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => Some(n),
            _ => {
                eprintln!("{what}: expected a number");
                None
            }
        }
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match num(&mut it, "--workers") {
                Some(n) => config.workers = n.max(1),
                None => return ExitCode::FAILURE,
            },
            "--queue-cap" => match num(&mut it, "--queue-cap") {
                Some(n) => config.queue.capacity = n.max(1),
                None => return ExitCode::FAILURE,
            },
            "--inflight-cap" => match num(&mut it, "--inflight-cap") {
                Some(n) => config.queue.tenant_inflight_cap = n.max(1),
                None => return ExitCode::FAILURE,
            },
            "--retries" => match num(&mut it, "--retries") {
                Some(n) => config.max_retries = u32::try_from(n).unwrap_or(u32::MAX),
                None => return ExitCode::FAILURE,
            },
            "--no-hedge" => config.hedge = false,
            "--summary" => summary = true,
            "--hold" => hold = true,
            "--socket" => match it.next() {
                Some(path) => socket = Some(path.clone()),
                None => {
                    eprintln!("--socket: expected a path");
                    return ExitCode::FAILURE;
                }
            },
            "--admin-socket" => match it.next() {
                Some(path) => admin_socket = Some(path.clone()),
                None => {
                    eprintln!("--admin-socket: expected a path");
                    return ExitCode::FAILURE;
                }
            },
            "--journal" => match it.next() {
                Some(dir) => journal_dir = Some(dir.clone()),
                None => {
                    eprintln!("--journal: expected a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--drain-deadline-ms" => match num(&mut it, "--drain-deadline-ms") {
                Some(n) => drain_deadline = Duration::from_millis(n as u64),
                None => return ExitCode::FAILURE,
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    // Open (or create) the journal before the pool exists: recovery —
    // parse, compact, and the pending-request list — happens on a quiet
    // process. The pending requests are re-admitted below, after the
    // transports are up to receive their responses.
    let (journal, pending) = match &journal_dir {
        Some(dir) => match Journal::open(Path::new(dir)) {
            Ok((journal, pending)) => {
                if !pending.is_empty() {
                    eprintln!(
                        "journal: replaying {} unanswered request(s) from {dir}",
                        pending.len()
                    );
                }
                (Some(journal), pending)
            }
            Err(e) => {
                eprintln!("cannot open journal {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => (None, Vec::new()),
    };
    let service = MapService::start_with_journal(config, journal);
    mapzero_serve::admin::install_sigusr1_dump(&service);
    mapzero_serve::admin::install_sigterm_drain();
    spawn_drain_watcher(&service, drain_deadline);
    if let Some(path) = &admin_socket {
        if let Err(e) = mapzero_serve::admin::spawn_admin_socket(&service, path) {
            eprintln!("cannot bind admin socket {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("admin socket on {path}");
    }
    let code = match socket {
        Some(path) => {
            replay_to_stdout(&service, pending);
            serve_socket(&service, &path)
        }
        None => serve_stdin(&service, pending, summary, hold),
    };
    service.flush_journal();
    service.shutdown();
    if let Some(path) = &admin_socket {
        let _ = std::fs::remove_file(path);
    }
    code
}

/// Watch for a drain request (`SIGTERM` or admin `shutdown`): stop
/// admission, let in-flight work finish under the deadline, flush the
/// journal and the trace sink, exit 0.
fn spawn_drain_watcher(service: &MapService, deadline: Duration) {
    let service = service.clone();
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_millis(25));
        if mapzero_serve::admin::drain_requested() {
            service.begin_drain();
            if !service.await_drained(deadline) {
                eprintln!("serve: drain deadline passed with work still in flight");
            }
            // Give the transports a beat to write (and journal-mark)
            // the final responses the workers just produced.
            std::thread::sleep(Duration::from_millis(100));
            service.flush_journal();
            mapzero_obs::sink::flush();
            eprintln!("serve: drained; exiting");
            std::process::exit(0);
        }
    });
}

/// Socket mode has no client to answer recovered requests to; their
/// responses go to the server's own stdout (JSONL, same shape), which
/// keeps the exactly-once ledger intact across restarts.
fn replay_to_stdout(service: &MapService, pending: Vec<MapRequest>) {
    if pending.is_empty() {
        return;
    }
    let (tx, rx) = mpsc::channel();
    let mut submitted = 0usize;
    for request in pending {
        let _ = service.submit_replayed(request, &tx);
        submitted += 1;
    }
    drop(tx);
    let service = service.clone();
    std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for _ in 0..submitted {
            let Ok(resp) = rx.recv() else { break };
            let mut out = stdout.lock();
            if writeln!(out, "{}", resp.to_jsonl()).is_err() || out.flush().is_err() {
                break;
            }
            drop(out);
            service.mark_delivered(&resp);
        }
    });
}

/// One batch from stdin, JSONL to stdout, exit (or park with `--hold`).
/// Journal-recovered requests are re-admitted ahead of the batch and
/// answered on the same stdout stream.
fn serve_stdin(
    service: &MapService,
    pending: Vec<MapRequest>,
    summary: bool,
    hold: bool,
) -> ExitCode {
    let stdin = std::io::stdin();
    let mut reader = RequestReader::new(stdin.lock());
    let (tx, rx) = mpsc::channel();
    let mut submitted = 0usize;
    for request in pending {
        let _ = service.submit_replayed(request, &tx);
        submitted += 1;
    }
    let mut parse_failed = false;
    loop {
        match reader.next_request() {
            Ok(Some(request)) => {
                let _ = service.submit(request, &tx);
                submitted += 1;
            }
            Ok(None) => break,
            Err(e) => {
                // Structured parse error (with the offending request id
                // when the header was readable) on the response stream;
                // requests already admitted still get their answers.
                eprintln!("bad request batch: {e}");
                let stdout = std::io::stdout();
                let _ = writeln!(stdout.lock(), "{}", e.to_json().to_string_compact());
                parse_failed = true;
                break;
            }
        }
    }
    drop(tx);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for _ in 0..submitted {
        match rx.recv() {
            Ok(resp) => {
                // Write + flush before the journal's terminal mark: a
                // crash in between replays the request (the client
                // may see a duplicate response line, never a missing
                // one).
                if writeln!(out, "{}", resp.to_jsonl()).is_err() || out.flush().is_err() {
                    return ExitCode::FAILURE;
                }
                service.mark_delivered(&resp);
            }
            Err(_) => break,
        }
    }
    if parse_failed {
        return ExitCode::FAILURE;
    }
    if summary {
        let _ = writeln!(out, "{}", summary_line(service));
    }
    // The MAPZERO_TRACE sink buffers; push the batch's spans to disk
    // before exiting (or parking) so readers see a complete trace.
    mapzero_obs::sink::flush();
    if hold {
        // Keep the service (and its admin socket) alive for scraping;
        // flush first so pipelines reading stdout see the batch.
        let _ = out.flush();
        drop(out);
        eprintln!("batch done; holding (stop with SIGTERM)");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    ExitCode::SUCCESS
}

/// Accept loop: each connection is one batch.
fn serve_socket(service: &MapService, path: &str) -> ExitCode {
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("serving on {path}");
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let service = service.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            serve_connection(&service, reader, stream);
        });
    }
    ExitCode::SUCCESS
}

fn serve_connection<R: BufRead, W: Write>(service: &MapService, input: R, mut output: W) {
    let mut reader = RequestReader::new(input);
    let (tx, rx) = mpsc::channel();
    let mut submitted = 0usize;
    loop {
        match reader.next_request() {
            Ok(Some(request)) => {
                let _ = service.submit(request, &tx);
                submitted += 1;
            }
            Ok(None) => break,
            Err(e) => {
                let _ = writeln!(output, "{}", e.to_json().to_string_compact());
                break;
            }
        }
    }
    drop(tx);
    for _ in 0..submitted {
        match rx.recv() {
            Ok(resp) => {
                if writeln!(output, "{}", resp.to_jsonl()).is_err() || output.flush().is_err() {
                    return;
                }
                service.mark_delivered(&resp);
            }
            Err(_) => return,
        }
    }
    mapzero_obs::sink::flush();
}

/// Service-level counters as one JSONL record.
fn summary_line(service: &MapService) -> String {
    use mapzero_obs::json::Json;
    let stats = service.stats();
    Json::obj(vec![(
        "summary",
        Json::obj(vec![
            ("shed", Json::from(stats.shed.load(Ordering::Relaxed))),
            ("retries", Json::from(stats.retries.load(Ordering::Relaxed))),
            ("worker_deaths", Json::from(stats.worker_deaths.load(Ordering::Relaxed))),
            ("respawns", Json::from(stats.respawns.load(Ordering::Relaxed))),
            ("responses", Json::from(stats.responses.load(Ordering::Relaxed))),
            ("validate_fail", Json::from(stats.validate_fail.load(Ordering::Relaxed))),
            ("replayed", Json::from(stats.replayed.load(Ordering::Relaxed))),
            ("queue_depth", Json::from(service.queue_depth() as u64)),
        ]),
    )])
    .to_string_compact()
}
