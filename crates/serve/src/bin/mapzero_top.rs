//! `mapzero_top`: one-shot console view of a live compile service.
//!
//! Connects to the service's admin socket, runs one command, renders:
//!
//! ```text
//! mapzero_top /run/mapzero-admin.sock            # rendered status table
//! mapzero_top /run/mapzero-admin.sock status     # same
//! mapzero_top /run/mapzero-admin.sock metrics    # raw text exposition
//! mapzero_top /run/mapzero-admin.sock flight     # flight-record JSONL
//! mapzero_top --json /run/mapzero-admin.sock     # raw status JSON
//! ```

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let raw_json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let (path, command) = match args.as_slice() {
        [path] => (path.clone(), "status".to_owned()),
        [path, command] => (path.clone(), command.clone()),
        _ => {
            eprintln!("usage: mapzero_top [--json] <admin-socket> [status|metrics|flight]");
            return ExitCode::from(2);
        }
    };

    let mut stream = match UnixStream::connect(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mapzero_top: cannot connect to {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if writeln!(stream, "{command}").is_err() {
        eprintln!("mapzero_top: write to {path} failed");
        return ExitCode::FAILURE;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut payload = String::new();
    if stream.read_to_string(&mut payload).is_err() {
        eprintln!("mapzero_top: read from {path} failed");
        return ExitCode::FAILURE;
    }

    if command == "status" && !raw_json {
        match mapzero_obs::json::parse(payload.trim()) {
            Ok(status) => print!("{}", mapzero_obs::summary::render_status(&status)),
            Err(e) => {
                eprintln!("mapzero_top: bad status payload: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{payload}");
    }
    ExitCode::SUCCESS
}
