//! Per-tenant circuit breakers: one poisonous tenant cannot serially
//! kill the shared worker pool.
//!
//! Each tenant gets a classic three-state breaker. **Closed** admits
//! normally while counting worker deaths and terminal internal errors
//! in a sliding window; reaching the threshold trips it **Open**, and
//! every admission is answered `rejected` with a `breaker_open` reason
//! — instantly, without touching the queue or a worker. After the
//! cooldown the next admission becomes a **half-open probe**: exactly
//! one request is let through; its success closes the breaker, another
//! failure re-opens it for a fresh cooldown.
//!
//! Failures are events the tenant *caused in the service* — a worker
//! death while processing its request, or a terminal `internal`
//! response — not mere unsuccessful mappings: `failed`, `timeout` and
//! `deadline` are honest answers, and counting them would punish hard
//! kernels instead of harmful ones.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Breaker tuning, part of `ServeConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Failures within `window` that trip the breaker.
    pub threshold: u32,
    /// Sliding window over which failures are counted.
    pub window: Duration,
    /// How long an open breaker rejects before allowing a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            window: Duration::from_secs(30),
            cooldown: Duration::from_secs(2),
        }
    }
}

impl BreakerConfig {
    /// Effectively-disabled breakers for tests that hammer failpoints:
    /// the accounting still runs (the code path is exercised) but no
    /// realistic fault burst trips it.
    #[must_use]
    pub fn fast_test() -> Self {
        BreakerConfig {
            threshold: 1000,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(50),
        }
    }
}

/// What the breaker says about one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: admit normally.
    Allow,
    /// Breaker was open and the cooldown elapsed: admit this single
    /// request as the half-open probe.
    Probe,
    /// Breaker open (or a probe is already in flight): reject fast.
    Reject,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { until: Instant },
    /// A probe has been admitted and has not yet reached a verdict.
    HalfOpen,
}

#[derive(Debug)]
struct TenantBreaker {
    state: State,
    failures: VecDeque<Instant>,
    /// Times this breaker transitioned to Open (monotone, for status).
    trips: u64,
}

impl TenantBreaker {
    fn new() -> Self {
        TenantBreaker { state: State::Closed, failures: VecDeque::new(), trips: 0 }
    }
}

/// One tenant's externally visible breaker state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerStatus {
    /// Tenant name.
    pub tenant: String,
    /// `closed`, `open` or `half_open`.
    pub state: &'static str,
    /// Failures currently inside the sliding window.
    pub failures: u32,
    /// Times the breaker has tripped open.
    pub trips: u64,
}

/// The per-tenant breaker table (one per service).
#[derive(Debug)]
pub struct CircuitBreakers {
    config: BreakerConfig,
    tenants: Mutex<HashMap<String, TenantBreaker>>,
}

impl CircuitBreakers {
    /// An empty table with the given tuning.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreakers { config, tenants: Mutex::new(HashMap::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, TenantBreaker>> {
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consult the breaker at admission time.
    pub fn admit(&self, tenant: &str, now: Instant) -> Admission {
        let mut tenants = self.lock();
        let Some(b) = tenants.get_mut(tenant) else {
            return Admission::Allow; // no history at all
        };
        match b.state {
            State::Closed => Admission::Allow,
            State::Open { until } if now >= until => {
                b.state = State::HalfOpen;
                Admission::Probe
            }
            State::Open { .. } | State::HalfOpen => Admission::Reject,
        }
    }

    /// Record a tenant-caused failure (worker death or terminal
    /// internal error). Returns `Some(failure_count)` exactly when this
    /// failure tripped the breaker open — the caller's anomaly hook.
    pub fn record_failure(&self, tenant: &str, now: Instant) -> Option<u32> {
        let mut tenants = self.lock();
        let b = tenants.entry(tenant.to_owned()).or_insert_with(TenantBreaker::new);
        match b.state {
            State::HalfOpen => {
                // The probe failed: straight back to open.
                b.state = State::Open { until: now + self.config.cooldown };
                b.failures.clear();
                b.trips += 1;
                Some(1)
            }
            State::Open { .. } => None, // already open; in-flight stragglers
            State::Closed => {
                b.failures.push_back(now);
                let horizon = now.checked_sub(self.config.window);
                while b
                    .failures
                    .front()
                    .is_some_and(|t| horizon.is_some_and(|h| *t < h))
                {
                    b.failures.pop_front();
                }
                let count = u32::try_from(b.failures.len()).unwrap_or(u32::MAX);
                if count >= self.config.threshold {
                    b.state = State::Open { until: now + self.config.cooldown };
                    b.failures.clear();
                    b.trips += 1;
                    Some(count)
                } else {
                    None
                }
            }
        }
    }

    /// Record a clean terminal outcome for the tenant: closes a
    /// half-open breaker (the probe succeeded).
    pub fn record_success(&self, tenant: &str) {
        let mut tenants = self.lock();
        if let Some(b) = tenants.get_mut(tenant) {
            if b.state == State::HalfOpen {
                b.state = State::Closed;
                b.failures.clear();
            }
        }
    }

    /// Per-tenant breaker states, sorted by tenant (for `status`).
    #[must_use]
    pub fn status(&self) -> Vec<BreakerStatus> {
        let tenants = self.lock();
        let mut out: Vec<BreakerStatus> = tenants
            .iter()
            .map(|(name, b)| BreakerStatus {
                tenant: name.clone(),
                state: match b.state {
                    State::Closed => "closed",
                    State::Open { .. } => "open",
                    State::HalfOpen => "half_open",
                },
                failures: u32::try_from(b.failures.len()).unwrap_or(u32::MAX),
                trips: b.trips,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakers(threshold: u32, window_ms: u64, cooldown_ms: u64) -> CircuitBreakers {
        CircuitBreakers::new(BreakerConfig {
            threshold,
            window: Duration::from_millis(window_ms),
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn trips_at_threshold_within_window() {
        let b = breakers(3, 10_000, 1_000);
        let t0 = Instant::now();
        assert_eq!(b.record_failure("a", t0), None);
        assert_eq!(b.record_failure("a", t0), None);
        assert_eq!(b.record_failure("a", t0), Some(3), "third failure trips");
        assert_eq!(b.admit("a", t0), Admission::Reject);
    }

    #[test]
    fn old_failures_age_out_of_the_window() {
        let b = breakers(3, 100, 1_000);
        let t0 = Instant::now();
        assert_eq!(b.record_failure("a", t0), None);
        assert_eq!(b.record_failure("a", t0), None);
        // Third failure arrives after the first two left the window.
        let later = t0 + Duration::from_millis(500);
        assert_eq!(b.record_failure("a", later), None, "window slid; no trip");
        assert_eq!(b.admit("a", later), Admission::Allow);
    }

    #[test]
    fn cooldown_yields_one_probe_then_rejects() {
        let b = breakers(1, 10_000, 100);
        let t0 = Instant::now();
        assert_eq!(b.record_failure("a", t0), Some(1));
        assert_eq!(b.admit("a", t0), Admission::Reject);
        let after = t0 + Duration::from_millis(150);
        assert_eq!(b.admit("a", after), Admission::Probe, "cooldown elapsed");
        assert_eq!(b.admit("a", after), Admission::Reject, "one probe at a time");
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let b = breakers(1, 10_000, 50);
        let t0 = Instant::now();
        b.record_failure("a", t0);
        let after = t0 + Duration::from_millis(60);
        assert_eq!(b.admit("a", after), Admission::Probe);
        b.record_success("a");
        assert_eq!(b.admit("a", after), Admission::Allow, "probe success closes");

        b.record_failure("a", after);
        let again = after + Duration::from_millis(60);
        assert_eq!(b.admit("a", again), Admission::Probe);
        assert_eq!(b.record_failure("a", again), Some(1), "probe failure reopens");
        assert_eq!(b.admit("a", again), Admission::Reject);
    }

    #[test]
    fn tenants_are_independent() {
        let b = breakers(1, 10_000, 10_000);
        let t0 = Instant::now();
        b.record_failure("bad", t0);
        assert_eq!(b.admit("bad", t0), Admission::Reject);
        assert_eq!(b.admit("good", t0), Admission::Allow);
        assert_eq!(b.record_failure("good", t0), Some(1), "own threshold applies");
    }

    #[test]
    fn success_while_closed_is_a_noop() {
        let b = breakers(2, 10_000, 1_000);
        let t0 = Instant::now();
        b.record_success("a");
        assert_eq!(b.record_failure("a", t0), None);
        b.record_success("a"); // does not reset the window count
        assert_eq!(b.record_failure("a", t0), Some(2));
    }

    #[test]
    fn status_reports_states_sorted() {
        let b = breakers(1, 10_000, 10_000);
        let t0 = Instant::now();
        b.record_failure("zeta", t0);
        b.record_failure("alpha", t0);
        let status = b.status();
        assert_eq!(status.len(), 2);
        assert_eq!(status[0].tenant, "alpha");
        assert_eq!(status[0].state, "open");
        assert_eq!(status[0].trips, 1);
        assert_eq!(status[1].tenant, "zeta");
    }
}
