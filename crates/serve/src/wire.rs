//! The service wire format: line-oriented requests in, JSONL out.
//!
//! A batch is a sequence of request blocks, each embedding the existing
//! `textfmt` codecs for the kernel and the fabric:
//!
//! ```text
//! request r1
//! tenant acme 3            # name [weight], weight defaults to 1
//! deadline_ms 2000         # charged from enqueue time
//! ii_min 2                 # optional II window
//! ii_max 6
//! begin dfg
//! dfg dot
//! node 0 load
//! node 1 load
//! node 2 mul
//! edge 0 2
//! edge 1 2
//! end dfg
//! begin cgra
//! cgra mesh4 4 4
//! interconnect mesh
//! end cgra
//! end request
//! ```
//!
//! `#` starts a comment anywhere outside the embedded blocks (the
//! embedded codecs handle their own comments). A `fault <spec>` line
//! arms a thread-local failpoint (see `mapzero_core::failpoint`) on the
//! worker processing that request — the per-request chaos knob the
//! isolation suite uses to hurt one tenant without touching another.
//!
//! Responses are JSONL: exactly one object per request, in completion
//! order, keyed by the request `id` (see [`MapResponse::to_json`]).

use mapzero_arch::Cgra;
use mapzero_core::mapping::Mapping;
use mapzero_dfg::Dfg;
use mapzero_obs::json::Json;
use mapzero_obs::RunTelemetry;
use std::fmt;
use std::io::BufRead;
use std::time::Duration;

/// One mapping request as it arrives off the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRequest {
    /// Caller-chosen request id, echoed in the response.
    pub id: String,
    /// Tenant the request is billed to (fairness + in-flight caps).
    pub tenant: String,
    /// Fairness weight of this tenant (>= 1; higher = larger share).
    pub weight: u32,
    /// Wall-clock allowance, charged from *enqueue* time.
    pub deadline: Option<Duration>,
    /// Lowest II to accept.
    pub ii_min: Option<u32>,
    /// Highest II to accept.
    pub ii_max: Option<u32>,
    /// Failpoint spec armed on the worker thread while this request is
    /// processed (chaos testing; see `mapzero_core::failpoint::parse_spec`).
    pub fault: Option<String>,
    /// The kernel to map.
    pub dfg: Dfg,
    /// The fabric to map onto.
    pub cgra: Cgra,
}

impl MapRequest {
    /// A request with service defaults: weight 1, no deadline, no II
    /// window, no fault.
    #[must_use]
    pub fn new(id: &str, tenant: &str, dfg: Dfg, cgra: Cgra) -> Self {
        MapRequest {
            id: id.to_owned(),
            tenant: tenant.to_owned(),
            weight: 1,
            deadline: None,
            ii_min: None,
            ii_max: None,
            fault: None,
            dfg,
            cgra,
        }
    }

    /// Serialize to the wire format (the inverse of [`parse_batch`]).
    #[must_use]
    pub fn emit(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("request {}\n", self.id));
        out.push_str(&format!("tenant {} {}\n", self.tenant, self.weight));
        if let Some(d) = self.deadline {
            out.push_str(&format!("deadline_ms {}\n", d.as_millis()));
        }
        if let Some(ii) = self.ii_min {
            out.push_str(&format!("ii_min {ii}\n"));
        }
        if let Some(ii) = self.ii_max {
            out.push_str(&format!("ii_max {ii}\n"));
        }
        if let Some(spec) = &self.fault {
            out.push_str(&format!("fault {spec}\n"));
        }
        out.push_str("begin dfg\n");
        out.push_str(&mapzero_dfg::textfmt::emit(&self.dfg));
        out.push_str("end dfg\n");
        out.push_str("begin cgra\n");
        out.push_str(&mapzero_arch::textfmt::emit(&self.cgra));
        out.push_str("end cgra\n");
        out.push_str("end request\n");
        out
    }
}

/// Terminal state of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A valid mapping was produced.
    Mapped,
    /// Structurally unmappable or no feasible II in the window.
    Failed,
    /// The budget ran out mid-search (partial progress only).
    Timeout,
    /// The deadline had already passed when a worker picked it up, or
    /// expired before any engine produced a mapping.
    Deadline,
    /// Load-shed at admission: the queue was full.
    Rejected,
    /// An internal fault (contained panic) survived all retries.
    Internal,
}

impl Outcome {
    /// Stable lowercase wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Mapped => "mapped",
            Outcome::Failed => "failed",
            Outcome::Timeout => "timeout",
            Outcome::Deadline => "deadline",
            Outcome::Rejected => "rejected",
            Outcome::Internal => "internal",
        }
    }

    /// Parse a wire name back (the journal's terminal records).
    #[must_use]
    pub fn from_wire(s: &str) -> Option<Outcome> {
        Some(match s {
            "mapped" => Outcome::Mapped,
            "failed" => Outcome::Failed,
            "timeout" => Outcome::Timeout,
            "deadline" => Outcome::Deadline,
            "rejected" => Outcome::Rejected,
            "internal" => Outcome::Internal,
            _ => return None,
        })
    }
}

/// One response record, emitted as a single JSONL line.
#[derive(Debug, Clone)]
pub struct MapResponse {
    /// The request id this answers.
    pub id: String,
    /// The tenant billed.
    pub tenant: String,
    /// Terminal state.
    pub outcome: Outcome,
    /// Which engine produced the mapping (`MapZero` or the fallback's
    /// name), when one was produced.
    pub engine: Option<String>,
    /// The kernel's minimum II, when computed.
    pub mii: Option<u32>,
    /// Achieved II, when mapped.
    pub achieved_ii: Option<u32>,
    /// The mapping itself, when produced.
    pub mapping: Option<Mapping>,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time spent in the worker (all attempts).
    pub service_time: Duration,
    /// Retries consumed by contained internal faults.
    pub retries: u32,
    /// Worker deaths this request survived (its worker panicked and
    /// was respawned; the request was retried or failed structurally).
    pub worker_deaths: u32,
    /// Queue depth observed at shedding time (only on `Rejected`).
    pub queue_depth: Option<usize>,
    /// Human-readable error detail for non-`Mapped` outcomes.
    pub error: Option<String>,
    /// Per-request telemetry delta (phase attribution, counters) when
    /// telemetry is enabled process-wide.
    pub telemetry: Option<RunTelemetry>,
}

impl MapResponse {
    /// The JSON object for this response.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("id", Json::from(self.id.as_str())),
            ("tenant", Json::from(self.tenant.as_str())),
            ("outcome", Json::from(self.outcome.as_str())),
            ("queue_wait_us", us(self.queue_wait)),
            ("service_us", us(self.service_time)),
            ("retries", Json::from(u64::from(self.retries))),
            ("worker_deaths", Json::from(u64::from(self.worker_deaths))),
        ];
        if let Some(engine) = &self.engine {
            fields.push(("engine", Json::from(engine.as_str())));
        }
        if let Some(mii) = self.mii {
            fields.push(("mii", Json::from(u64::from(mii))));
        }
        if let Some(ii) = self.achieved_ii {
            fields.push(("ii", Json::from(u64::from(ii))));
        }
        if let Some(m) = &self.mapping {
            let placements = m
                .placements
                .iter()
                .map(|p| {
                    Json::Arr(vec![
                        Json::from(u64::from(p.pe.0)),
                        Json::from(u64::from(p.time)),
                    ])
                })
                .collect();
            fields.push((
                "mapping",
                Json::obj(vec![
                    ("ii", Json::from(u64::from(m.ii))),
                    ("placements", Json::Arr(placements)),
                ]),
            ));
        }
        if let Some(depth) = self.queue_depth {
            fields.push(("queue_depth", Json::from(depth as u64)));
        }
        if let Some(error) = &self.error {
            fields.push(("error", Json::from(error.as_str())));
        }
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry", t.to_json()));
        }
        Json::obj(fields)
    }

    /// The single JSONL line for this response (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.to_json().to_string_compact()
    }
}

fn us(d: Duration) -> Json {
    Json::from(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// A malformed request batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// 1-based line number in the batch.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// The id of the request being parsed when the error surfaced, when
    /// its header had already been read — lets a client correlate a
    /// structured parse-error response with the request it killed.
    pub request_id: Option<String>,
}

impl WireError {
    /// The structured JSONL error object the transports emit in place
    /// of a response when a batch is malformed.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = Vec::new();
        if let Some(id) = &self.request_id {
            fields.push(("id", Json::from(id.as_str())));
        }
        fields.push(("outcome", Json::from("rejected")));
        fields.push(("error", Json::from(format!("parse error: {self}").as_str())));
        fields.push(("line", Json::from(self.line as u64)));
        Json::obj(fields)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.request_id {
            Some(id) => write!(f, "request `{id}`: line {}: {}", self.line, self.message),
            None => write!(f, "line {}: {}", self.line, self.message),
        }
    }
}

impl std::error::Error for WireError {}

/// Parse a whole batch (the stdin mode of the server binary).
///
/// # Errors
/// Returns [`WireError`] with the offending line on malformed input;
/// requests before the error are not returned (a batch is all-or-nothing
/// so a caller never half-submits).
pub fn parse_batch(text: &str) -> Result<Vec<MapRequest>, WireError> {
    let mut reader = RequestReader::new(text.as_bytes());
    let mut out = Vec::new();
    while let Some(req) = reader.next_request()? {
        out.push(req);
    }
    Ok(out)
}

/// Streaming request parser over any buffered reader (stdin, a Unix
/// socket connection). Yields one [`MapRequest`] per `request ... end
/// request` block.
#[derive(Debug)]
pub struct RequestReader<R> {
    input: R,
    line: usize,
    /// Ids minted for bare `request` headers so far (see
    /// [`RequestReader::next_request`]).
    minted: u64,
    /// Id of the block being parsed, once its header has been read —
    /// attached to errors so clients can tell which request died.
    current: Option<String>,
}

impl<R: BufRead> RequestReader<R> {
    /// Wrap a buffered reader.
    pub fn new(input: R) -> Self {
        RequestReader { input, line: 0, minted: 0, current: None }
    }

    fn err(&self, message: impl Into<String>) -> WireError {
        WireError {
            line: self.line,
            message: message.into(),
            request_id: self.current.clone(),
        }
    }

    fn read_line(&mut self) -> Result<Option<String>, WireError> {
        let mut buf = String::new();
        let n = self.input.read_line(&mut buf).map_err(|e| WireError {
            line: self.line + 1,
            message: format!("i/o: {e}"),
            request_id: self.current.clone(),
        })?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        Ok(Some(buf))
    }

    /// The next request block, or `None` at end of input.
    ///
    /// # Errors
    /// Returns [`WireError`] on malformed input or a read failure.
    pub fn next_request(&mut self) -> Result<Option<MapRequest>, WireError> {
        self.current = None;
        // Seek the `request` header, skipping blanks and comments.
        let id = loop {
            let Some(raw) = self.read_line()? else {
                return Ok(None);
            };
            let line = raw.split('#').next().unwrap_or("").trim().to_owned();
            if line.is_empty() {
                continue;
            }
            // The keyword must be exactly `request`: `requestfoo` is an
            // unknown keyword, not a request named `foo`.
            let rest = match line.strip_prefix("request") {
                Some(r) if r.is_empty() || r.starts_with(char::is_whitespace) => r,
                _ => {
                    return Err(self.err(format!("expected `request <id>`, got `{line}`")));
                }
            };
            let id = rest.trim();
            if id.contains(char::is_whitespace) {
                return Err(self.err("request id must be one token"));
            }
            if id.is_empty() {
                // Bare `request` header: mint a stable per-stream id so
                // every request is traceable even when the caller
                // didn't name it.
                self.minted += 1;
                break format!("req-{}", self.minted);
            }
            break id.to_owned();
        };
        self.current = Some(id.clone());

        let mut tenant: Option<(String, u32)> = None;
        let mut deadline = None;
        let mut ii_min = None;
        let mut ii_max = None;
        let mut fault = None;
        let mut dfg: Option<Dfg> = None;
        let mut cgra: Option<Cgra> = None;

        loop {
            let Some(raw) = self.read_line()? else {
                return Err(self.err("missing `end request`"));
            };
            let line = raw.split('#').next().unwrap_or("").trim().to_owned();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().expect("non-empty line");
            match keyword {
                "end" if parts.next() == Some("request") => break,
                "tenant" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| self.err("tenant: missing name"))?
                        .to_owned();
                    let weight = match parts.next() {
                        Some(tok) => tok
                            .parse::<u32>()
                            .ok()
                            .filter(|w| *w >= 1)
                            .ok_or_else(|| self.err("tenant: weight must be >= 1"))?,
                        None => 1,
                    };
                    tenant = Some((name, weight));
                }
                "deadline_ms" => {
                    let ms: u64 = self.num(parts.next(), "deadline_ms")?;
                    deadline = Some(Duration::from_millis(ms));
                }
                "ii_min" => ii_min = Some(self.num(parts.next(), "ii_min")?),
                "ii_max" => ii_max = Some(self.num(parts.next(), "ii_max")?),
                "fault" => {
                    // The rest of the line verbatim (specs contain `=`
                    // and `@`, whitespace-insensitive per parse_spec).
                    let spec = line["fault".len()..].trim().to_owned();
                    if spec.is_empty() {
                        return Err(self.err("fault: missing spec"));
                    }
                    mapzero_core::failpoint::parse_spec(&spec)
                        .map_err(|e| self.err(format!("fault: {e}")))?;
                    fault = Some(spec);
                    continue; // line consumed wholesale; skip token check
                }
                "begin" => match parts.next() {
                    Some("dfg") => {
                        let body = self.embedded_block("dfg")?;
                        dfg = Some(
                            mapzero_dfg::textfmt::parse(&body)
                                .map_err(|e| self.err(format!("dfg: {e}")))?,
                        );
                    }
                    Some("cgra") => {
                        let body = self.embedded_block("cgra")?;
                        cgra = Some(
                            mapzero_arch::textfmt::parse(&body)
                                .map_err(|e| self.err(format!("cgra: {e}")))?,
                        );
                    }
                    other => {
                        return Err(self.err(format!("begin: expected dfg|cgra, got {other:?}")))
                    }
                },
                other => return Err(self.err(format!("unknown keyword `{other}`"))),
            }
            if keyword != "fault" && parts.next().is_some() {
                return Err(self.err("trailing tokens"));
            }
        }

        let (tenant, weight) =
            tenant.ok_or_else(|| self.err("missing `tenant`"))?;
        let dfg = dfg.ok_or_else(|| self.err("missing dfg block"))?;
        let cgra =
            cgra.ok_or_else(|| self.err("missing cgra block"))?;
        if let (Some(lo), Some(hi)) = (ii_min, ii_max) {
            if lo > hi {
                return Err(self.err(format!("ii_min {lo} > ii_max {hi}")));
            }
        }
        Ok(Some(MapRequest { id, tenant, weight, deadline, ii_min, ii_max, fault, dfg, cgra }))
    }

    /// Collect raw lines until `end <what>`, handing the body to the
    /// embedded codec untouched (it does its own comment handling).
    fn embedded_block(&mut self, what: &str) -> Result<String, WireError> {
        let mut body = String::new();
        loop {
            let Some(raw) = self.read_line()? else {
                return Err(self.err(format!("unterminated `begin {what}` block")));
            };
            if raw.split('#').next().unwrap_or("").trim() == format!("end {what}") {
                return Ok(body);
            }
            body.push_str(&raw);
            if !raw.ends_with('\n') {
                body.push('\n');
            }
        }
    }

    fn num<T: std::str::FromStr>(
        &self,
        tok: Option<&str>,
        what: &str,
    ) -> Result<T, WireError> {
        tok.ok_or_else(|| self.err(format!("{what}: missing value")))?
            .parse()
            .map_err(|_| self.err(format!("{what}: not a number")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    fn sample() -> MapRequest {
        let mut req =
            MapRequest::new("r-1", "acme", suite::by_name("mac").unwrap(), presets::hrea());
        req.weight = 3;
        req.deadline = Some(Duration::from_millis(1500));
        req.ii_min = Some(2);
        req.ii_max = Some(6);
        req.fault = Some("compile.attempt=panic@2".to_owned());
        req
    }

    #[test]
    fn emit_parse_round_trip() {
        let req = sample();
        let batch = parse_batch(&req.emit()).unwrap();
        assert_eq!(batch, vec![req]);
    }

    #[test]
    fn parses_multi_request_batch_with_comments() {
        let mut text = String::from("# batch header\n\n");
        text.push_str(&sample().emit());
        let mut second = MapRequest::new(
            "r-2",
            "other",
            suite::by_name("sum").unwrap(),
            presets::hycube(),
        );
        second.deadline = None;
        text.push_str(&second.emit());
        let batch = parse_batch(&text).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].id, "r-1");
        assert_eq!(batch[1], second);
    }

    #[test]
    fn missing_tenant_is_an_error() {
        let text = "request x\nbegin dfg\ndfg t\nnode 0 add\nend dfg\nbegin cgra\ncgra f 2 2\ninterconnect mesh\nend cgra\nend request\n";
        let err = parse_batch(text).unwrap_err();
        assert!(err.message.contains("tenant"), "{err}");
    }

    #[test]
    fn unterminated_request_is_an_error() {
        let err = parse_batch("request x\ntenant t\n").unwrap_err();
        assert!(err.message.contains("end request"), "{err}");
    }

    #[test]
    fn bad_fault_spec_rejected_at_parse_time() {
        let text = "request x\ntenant t\nfault compile.attempt=explode\nend request\n";
        let err = parse_batch(text).unwrap_err();
        assert!(err.message.contains("fault"), "{err}");
    }

    #[test]
    fn inverted_ii_window_rejected() {
        let mut req = sample();
        req.ii_min = Some(9);
        req.ii_max = Some(3);
        let err = parse_batch(&req.emit()).unwrap_err();
        assert!(err.message.contains("ii_min"), "{err}");
    }

    #[test]
    fn embedded_parse_errors_carry_outer_line_numbers() {
        let text = "request x\ntenant t\nbegin dfg\ndfg t\nnode 0 warp\nend dfg\nend request\n";
        let err = parse_batch(text).unwrap_err();
        assert!(err.message.contains("dfg"), "{err}");
        assert!(err.line >= 5, "points at or after the bad line, got {}", err.line);
    }

    #[test]
    fn response_jsonl_is_one_parseable_object() {
        let resp = MapResponse {
            id: "r-1".into(),
            tenant: "acme".into(),
            outcome: Outcome::Rejected,
            engine: None,
            mii: None,
            achieved_ii: None,
            mapping: None,
            queue_wait: Duration::from_micros(250),
            service_time: Duration::ZERO,
            retries: 0,
            worker_deaths: 0,
            queue_depth: Some(64),
            error: Some("queue full".into()),
            telemetry: None,
        };
        let line = resp.to_jsonl();
        assert!(!line.contains('\n'));
        let obj = mapzero_obs::json::parse(&line).unwrap();
        assert_eq!(obj.get("id").and_then(Json::as_str), Some("r-1"));
        assert_eq!(obj.get("outcome").and_then(Json::as_str), Some("rejected"));
        assert_eq!(obj.get("queue_depth").and_then(Json::as_u64), Some(64));
        assert_eq!(obj.get("queue_wait_us").and_then(Json::as_u64), Some(250));
    }
}
