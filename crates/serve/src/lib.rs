//! `mapzero-serve`: the long-lived multi-tenant compile service.
//!
//! MapZero's operational pitch — orders-of-magnitude faster compilation
//! than search-based mappers — only holds in production if one slow or
//! crashing request cannot starve or take down every other tenant.
//! This crate turns the single-shot [`mapzero_core::Compiler`] into a
//! supervised service (see DESIGN.md §10 for the full contract):
//!
//! - [`wire`] — the request/response formats: line-oriented batches
//!   embedding the existing `textfmt` codecs in, one JSONL record per
//!   request out.
//! - [`queue`] — bounded admission with load-shedding, stride-scheduled
//!   weighted per-tenant fairness, per-tenant in-flight caps.
//! - [`service`] — the worker pool sharing one network per fabric size
//!   and one prediction cache, with deadline propagation from enqueue
//!   time, retry-with-backoff for contained faults, optional SA
//!   hedging, and worker-death containment (respawn; retry or fail the
//!   request structurally, never lose it).
//! - [`journal`] — the write-ahead request journal (`--journal DIR`):
//!   admitted requests are durable before they are processable, and
//!   unanswered ones replay exactly once after a crash (DESIGN.md §12).
//! - [`breaker`] — per-tenant circuit breakers: a tenant serially
//!   killing workers is answered `breaker_open` instantly while other
//!   tenants keep mapping.
//!
//! Every would-be `mapped` response is re-checked by the independent
//! validator ([`mapzero_core::validate`]) before it ships; `SIGTERM`
//! or the admin `shutdown` command drains gracefully (admission stops,
//! in-flight work finishes, exit 0).
//!
//! The `mapzero_serve` binary wires this to stdin/stdout batches or a
//! Unix socket. Chaos coverage lives in `tests/chaos_isolation.rs`
//! (tenant isolation under panics and stalls), `tests/durability.rs`
//! (journal replay, drain, breakers, validator) and
//! `tests/chaos_recovery.rs` (binary-level kill -9 + replay): with one
//! tenant's requests armed (via failpoints) to panic or stall, the
//! other tenant's requests still complete in time with bit-identical
//! mappings.
//!
//! # Example
//!
//! ```
//! use mapzero_serve::service::{MapService, ServeConfig};
//! use mapzero_serve::wire::{MapRequest, Outcome};
//!
//! let service = MapService::start(ServeConfig::fast_test());
//! let request = MapRequest::new(
//!     "r-1",
//!     "docs",
//!     mapzero_dfg::suite::by_name("sum").expect("kernel exists"),
//!     mapzero_arch::presets::hrea(),
//! );
//! let responses = service.process_batch(vec![request]);
//! assert_eq!(responses[0].outcome, Outcome::Mapped);
//! service.shutdown();
//! ```

pub mod admin;
pub mod breaker;
pub mod journal;
pub mod queue;
pub mod service;
pub mod slo;
pub mod wire;

pub use breaker::{Admission, BreakerConfig, BreakerStatus, CircuitBreakers};
pub use journal::{Journal, JournalSnapshot};
pub use queue::{JobQueue, QueueConfig, SubmitError};
pub use service::{MapService, ServeConfig, ServiceStats};
pub use slo::{Anomaly, RequestRecord, SloConfig, SloTable};
pub use wire::{parse_batch, MapRequest, MapResponse, Outcome, RequestReader, WireError};
