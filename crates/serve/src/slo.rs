//! Per-tenant SLO accounting, anomaly detection, and the flight-record
//! payload.
//!
//! The service keeps one [`SloTable`] with, per tenant, monotone
//! outcome counters (the reconciliation invariant: once the queue is
//! idle, `admitted == mapped + failed + timeout + deadline + internal`,
//! shed counted separately) and a bounded sliding window of
//! deadline-carrying outcomes from which the deadline-hit rate — the
//! tenant's SLO — is computed. Requests with no effective deadline are
//! excluded from the window: they cannot miss.
//!
//! Three [`Anomaly`] conditions trigger a flight-recorder dump:
//! a shed burst (too many sheds inside a short wall-clock window), any
//! worker death, and a per-tenant streak of consecutive deadline
//! misses.

use crate::wire::{MapResponse, Outcome};
use mapzero_obs::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Thresholds for SLO windows and anomaly detection.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Deadline-carrying outcomes retained per tenant for the hit-rate
    /// window.
    pub window: usize,
    /// Sheds within [`SloConfig::shed_burst_window`] that constitute a
    /// burst anomaly.
    pub shed_burst: usize,
    /// Wall-clock width of the shed-burst detector.
    pub shed_burst_window: Duration,
    /// Consecutive deadline misses (per tenant) that constitute a
    /// streak anomaly.
    pub miss_streak: u32,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window: 256,
            shed_burst: 8,
            shed_burst_window: Duration::from_secs(1),
            miss_streak: 3,
        }
    }
}

/// An operational condition worth dumping the flight recorder for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// Too many requests shed in a short window.
    ShedBurst {
        /// Sheds observed inside the window.
        sheds: usize,
    },
    /// A worker thread was killed by an escaping panic.
    WorkerDeath,
    /// One tenant missed its deadline several times in a row.
    DeadlineMissStreak {
        /// The tenant on the streak.
        tenant: String,
        /// Consecutive misses.
        misses: u32,
    },
    /// A tenant's circuit breaker tripped open: its failures crossed
    /// the threshold and its requests are now fast-rejected.
    BreakerOpen {
        /// The tenant whose breaker opened.
        tenant: String,
        /// Failures inside the sliding window at the moment of the trip.
        failures: u32,
    },
    /// The independent validator rejected a mapping the mapper claimed
    /// was legal — the response was downgraded to `internal` and the
    /// mapping never left the process.
    InvalidMapping {
        /// The request whose mapping failed validation.
        id: String,
        /// The tenant billed.
        tenant: String,
    },
}

impl Anomaly {
    /// One-line human description (the flight-dump header).
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Anomaly::ShedBurst { sheds } => format!("shed burst: {sheds} sheds in window"),
            Anomaly::WorkerDeath => "worker death".to_owned(),
            Anomaly::DeadlineMissStreak { tenant, misses } => {
                format!("deadline-miss streak: tenant {tenant} missed {misses} in a row")
            }
            Anomaly::BreakerOpen { tenant, failures } => {
                format!("circuit breaker open: tenant {tenant} after {failures} failures")
            }
            Anomaly::InvalidMapping { id, tenant } => {
                format!("invalid mapping rejected by validator: request {id} (tenant {tenant})")
            }
        }
    }
}

/// One terminal request record — the flight recorder's payload.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id.
    pub id: String,
    /// Tenant billed.
    pub tenant: String,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Queue wait in microseconds.
    pub queue_wait_us: u64,
    /// Worker service time in microseconds.
    pub service_us: u64,
    /// Contained-fault retries consumed.
    pub retries: u32,
    /// Worker deaths survived.
    pub worker_deaths: u32,
}

impl RequestRecord {
    /// The record for one delivered response.
    #[must_use]
    pub fn from_response(response: &MapResponse) -> Self {
        RequestRecord {
            id: response.id.clone(),
            tenant: response.tenant.clone(),
            outcome: response.outcome,
            queue_wait_us: u64::try_from(response.queue_wait.as_micros()).unwrap_or(u64::MAX),
            service_us: u64::try_from(response.service_time.as_micros()).unwrap_or(u64::MAX),
            retries: response.retries,
            worker_deaths: response.worker_deaths,
        }
    }

    /// JSON object (one flight-dump JSONL line).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::from(self.id.as_str())),
            ("tenant", Json::from(self.tenant.as_str())),
            ("outcome", Json::from(self.outcome.as_str())),
            ("queue_wait_us", Json::from(self.queue_wait_us)),
            ("service_us", Json::from(self.service_us)),
            ("retries", Json::from(u64::from(self.retries))),
            ("worker_deaths", Json::from(u64::from(self.worker_deaths))),
        ])
    }
}

#[derive(Debug, Default)]
struct TenantWindow {
    admitted: u64,
    shed: u64,
    mapped: u64,
    failed: u64,
    timeout: u64,
    deadline: u64,
    internal: u64,
    /// Sliding window: `true` per deadline-carrying request that met
    /// its deadline, bounded at `SloConfig::window`.
    hits: VecDeque<bool>,
    miss_streak: u32,
}

/// Aggregated view of one tenant (see [`SloTable::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Terminal outcome counts.
    pub mapped: u64,
    /// See [`Outcome::Failed`].
    pub failed: u64,
    /// See [`Outcome::Timeout`].
    pub timeout: u64,
    /// See [`Outcome::Deadline`].
    pub deadline: u64,
    /// See [`Outcome::Internal`].
    pub internal: u64,
    /// Deadline-hit rate over the sliding window; `None` when no
    /// deadline-carrying request completed yet.
    pub deadline_hit_rate: Option<f64>,
}

#[derive(Debug, Default)]
struct Inner {
    tenants: BTreeMap<String, TenantWindow>,
    /// Recent shed instants (bounded by the burst window).
    sheds: VecDeque<Instant>,
}

/// The service-wide SLO table. All methods take `&self`; one mutex.
#[derive(Debug)]
pub struct SloTable {
    config: SloConfig,
    inner: Mutex<Inner>,
}

impl SloTable {
    /// An empty table.
    #[must_use]
    pub fn new(config: SloConfig) -> Self {
        SloTable { config, inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Count one admission.
    pub fn record_admitted(&self, tenant: &str) {
        self.lock().tenants.entry(tenant.to_owned()).or_default().admitted += 1;
    }

    /// Count one shed; returns the burst anomaly when the detector
    /// trips (exactly at the threshold, so one sustained burst dumps
    /// once, not per shed).
    pub fn record_shed(&self, tenant: &str, now: Instant) -> Option<Anomaly> {
        let mut inner = self.lock();
        inner.tenants.entry(tenant.to_owned()).or_default().shed += 1;
        let horizon = now.checked_sub(self.config.shed_burst_window);
        while inner.sheds.front().is_some_and(|&t| horizon.is_some_and(|h| t < h)) {
            inner.sheds.pop_front();
        }
        inner.sheds.push_back(now);
        if inner.sheds.len() >= self.config.shed_burst {
            // One dump per burst of N: restart the count so a sustained
            // flood produces a dump every N sheds, not every shed (and
            // the deque stays bounded by the threshold).
            let sheds = inner.sheds.len();
            inner.sheds.clear();
            Some(Anomaly::ShedBurst { sheds })
        } else {
            None
        }
    }

    /// Count one terminal outcome. `deadline_applied` marks requests
    /// that carried an effective deadline — only those enter the SLO
    /// window (a request with no deadline cannot miss one). Returns the
    /// streak anomaly when the tenant just reached the threshold.
    pub fn record_outcome(
        &self,
        tenant: &str,
        outcome: Outcome,
        deadline_applied: bool,
    ) -> Option<Anomaly> {
        let mut inner = self.lock();
        let t = inner.tenants.entry(tenant.to_owned()).or_default();
        match outcome {
            Outcome::Mapped => t.mapped += 1,
            Outcome::Failed => t.failed += 1,
            Outcome::Timeout => t.timeout += 1,
            Outcome::Deadline => t.deadline += 1,
            Outcome::Internal => t.internal += 1,
            // Sheds are counted at admission time, not here.
            Outcome::Rejected => {}
        }
        if !deadline_applied || outcome == Outcome::Rejected {
            return None;
        }
        let hit = outcome != Outcome::Deadline;
        t.hits.push_back(hit);
        while t.hits.len() > self.config.window {
            t.hits.pop_front();
        }
        if hit {
            t.miss_streak = 0;
            None
        } else {
            t.miss_streak += 1;
            (t.miss_streak == self.config.miss_streak).then(|| Anomaly::DeadlineMissStreak {
                tenant: tenant.to_owned(),
                misses: t.miss_streak,
            })
        }
    }

    /// Per-tenant aggregates, sorted by tenant name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, TenantSnapshot)> {
        let inner = self.lock();
        inner
            .tenants
            .iter()
            .map(|(name, t)| {
                let rate = if t.hits.is_empty() {
                    None
                } else {
                    #[allow(clippy::cast_precision_loss)]
                    Some(t.hits.iter().filter(|&&h| h).count() as f64 / t.hits.len() as f64)
                };
                (
                    name.clone(),
                    TenantSnapshot {
                        admitted: t.admitted,
                        shed: t.shed,
                        mapped: t.mapped,
                        failed: t.failed,
                        timeout: t.timeout,
                        deadline: t.deadline,
                        internal: t.internal,
                        deadline_hit_rate: rate,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_reconcile_with_admissions() {
        let slo = SloTable::new(SloConfig::default());
        for _ in 0..5 {
            slo.record_admitted("acme");
        }
        slo.record_outcome("acme", Outcome::Mapped, true);
        slo.record_outcome("acme", Outcome::Mapped, true);
        slo.record_outcome("acme", Outcome::Failed, true);
        slo.record_outcome("acme", Outcome::Timeout, true);
        slo.record_outcome("acme", Outcome::Internal, true);
        let snap = &slo.snapshot()[0].1;
        assert_eq!(
            snap.admitted,
            snap.mapped + snap.failed + snap.timeout + snap.deadline + snap.internal
        );
        assert_eq!(snap.deadline_hit_rate, Some(1.0));
    }

    #[test]
    fn miss_streak_fires_once_at_threshold() {
        let slo = SloTable::new(SloConfig { miss_streak: 3, ..SloConfig::default() });
        assert_eq!(slo.record_outcome("t", Outcome::Deadline, true), None);
        assert_eq!(slo.record_outcome("t", Outcome::Deadline, true), None);
        assert_eq!(
            slo.record_outcome("t", Outcome::Deadline, true),
            Some(Anomaly::DeadlineMissStreak { tenant: "t".to_owned(), misses: 3 })
        );
        // A fourth miss extends the streak silently; a hit resets it.
        assert_eq!(slo.record_outcome("t", Outcome::Deadline, true), None);
        assert_eq!(slo.record_outcome("t", Outcome::Mapped, true), None);
        let snap = &slo.snapshot()[0].1;
        assert_eq!(snap.deadline, 4);
        assert_eq!(snap.deadline_hit_rate, Some(0.2));
    }

    #[test]
    fn no_deadline_requests_stay_out_of_the_window() {
        let slo = SloTable::new(SloConfig::default());
        slo.record_outcome("t", Outcome::Mapped, false);
        assert_eq!(slo.snapshot()[0].1.deadline_hit_rate, None);
    }

    #[test]
    fn shed_burst_fires_at_threshold_within_window() {
        let slo = SloTable::new(SloConfig {
            shed_burst: 3,
            shed_burst_window: Duration::from_secs(60),
            ..SloConfig::default()
        });
        let now = Instant::now();
        assert_eq!(slo.record_shed("t", now), None);
        assert_eq!(slo.record_shed("t", now), None);
        assert_eq!(slo.record_shed("t", now), Some(Anomaly::ShedBurst { sheds: 3 }));
        assert_eq!(slo.snapshot()[0].1.shed, 3);
    }

    #[test]
    fn window_is_bounded() {
        let slo = SloTable::new(SloConfig { window: 4, ..SloConfig::default() });
        for _ in 0..10 {
            slo.record_outcome("t", Outcome::Deadline, true);
        }
        for _ in 0..4 {
            slo.record_outcome("t", Outcome::Mapped, true);
        }
        // Only the last 4 outcomes remain: all hits.
        assert_eq!(slo.snapshot()[0].1.deadline_hit_rate, Some(1.0));
    }
}
