//! The observability plane's acceptance suite: `/status` counters
//! reconcile with the JSONL responses, the flight recorder holds every
//! terminal request exactly once (worker deaths included), request-
//! scoped tracing yields one complete tree per request even when its
//! worker was killed mid-flight, and the admin socket serves all three
//! payloads.
//!
//! Tests serialize on one lock: they arm process-global failpoints and
//! install the process-global trace sink.

use mapzero_arch::presets;
use mapzero_core::failpoint::{self, FailAction};
use mapzero_dfg::suite;
use mapzero_obs::sink::{install_sink, uninstall_sink, MemorySink, TelemetrySink};
use mapzero_serve::admin;
use mapzero_serve::queue::QueueConfig;
use mapzero_serve::service::{MapService, ServeConfig};
use mapzero_serve::wire::{MapRequest, Outcome};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn request(id: &str, tenant: &str, kernel: &str) -> MapRequest {
    MapRequest::new(id, tenant, suite::by_name(kernel).unwrap(), presets::hrea())
}

fn field(json: &mapzero_obs::json::Json, path: &[&str]) -> u64 {
    let mut cur = json;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing field {path:?}"));
    }
    cur.as_u64().unwrap_or_else(|| panic!("field {path:?} not a number"))
}

/// The reconciliation invariant: once the queue is idle, per-tenant
/// `admitted == mapped + failed + timeout + deadline + internal`, shed
/// counted separately — and the `/status` numbers agree with the
/// responses actually delivered.
#[test]
fn status_counters_reconcile_with_responses() {
    let _g = serial();
    // Tiny queue so the burst sheds; one request expires in the queue.
    let config = ServeConfig {
        workers: 1,
        queue: QueueConfig { capacity: 2, tenant_inflight_cap: 2 },
        ..ServeConfig::fast_test()
    };
    let service = MapService::start(config);
    let mut batch = vec![
        request("a-1", "acme", "sum"),
        request("a-2", "acme", "mac"),
        request("b-1", "beta", "sum"),
        request("b-2", "beta", "mac"),
        request("b-3", "beta", "accumulate"),
    ];
    batch[1].deadline = Some(Duration::ZERO); // expires while queued
    let responses = service.process_batch(batch);
    assert_eq!(responses.len(), 5);

    // Tally the ground truth from the delivered responses.
    let mut by_tenant: HashMap<String, HashMap<&'static str, u64>> = HashMap::new();
    for r in &responses {
        *by_tenant.entry(r.tenant.clone()).or_default().entry(r.outcome.as_str()).or_default() +=
            1;
    }

    let status = service.status_json();
    let mut admitted_total = 0;
    for (tenant, outcomes) in &by_tenant {
        let t = status.get("tenants").and_then(|ts| ts.get(tenant)).unwrap_or_else(|| {
            panic!("tenant {tenant} missing from status: {}", status.to_string_compact())
        });
        let terminal = field(t, &["mapped"])
            + field(t, &["failed"])
            + field(t, &["timeout"])
            + field(t, &["deadline"])
            + field(t, &["internal"]);
        assert_eq!(field(t, &["admitted"]), terminal, "tenant {tenant} does not reconcile");
        let shed_responses = outcomes.get("rejected").copied().unwrap_or(0);
        assert_eq!(field(t, &["shed"]), shed_responses, "tenant {tenant} shed mismatch");
        for outcome in ["mapped", "failed", "timeout", "deadline", "internal"] {
            assert_eq!(
                field(t, &[outcome]),
                outcomes.get(outcome).copied().unwrap_or(0),
                "tenant {tenant} outcome {outcome} mismatch"
            );
        }
        admitted_total += field(t, &["admitted"]);
    }
    assert_eq!(field(&status, &["stats", "admitted"]), admitted_total);
    assert_eq!(field(&status, &["stats", "responses"]), 5);
    assert_eq!(field(&status, &["queue_depth"]), 0);

    // Exactly-once in the flight recorder: every response id appears
    // exactly once, shed ones included.
    let mut flight_ids: Vec<String> =
        service.flight_snapshot().into_iter().map(|r| r.id).collect();
    flight_ids.sort();
    let mut response_ids: Vec<String> = responses.iter().map(|r| r.id.clone()).collect();
    response_ids.sort();
    assert_eq!(flight_ids, response_ids);
    service.shutdown();
}

/// Chaos: a request whose worker is killed mid-flight still appears
/// exactly once in the flight recorder and still yields one complete,
/// well-formed trace tree — the queue-wait span, a `serve.request`
/// span per attempt (the killed attempt's span is emitted during the
/// unwind), and the compiler's own `compile.map` span, all carrying
/// the request id.
#[test]
fn killed_worker_request_keeps_exactly_one_flight_record_and_trace_tree() {
    let _g = serial();
    let sink = Arc::new(MemorySink::new());
    install_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    let service = MapService::start(ServeConfig::fast_test());
    // Fires on exactly one worker visit; the retry runs clean.
    failpoint::arm_global("serve.worker.pre_map", 1, FailAction::Panic);
    let responses = service
        .process_batch(vec![request("victim", "acme", "sum"), request("clean", "beta", "mac")]);
    failpoint::disarm_global("serve.worker.pre_map");
    uninstall_sink();

    assert_eq!(responses.len(), 2);
    let victim = responses.iter().find(|r| r.id == "victim").unwrap();
    assert_eq!(victim.outcome, Outcome::Mapped, "{:?}", victim.error);
    assert_eq!(victim.worker_deaths, 1);

    // Flight recorder: both requests exactly once, the death visible.
    let flight = service.flight_snapshot();
    let victims: Vec<_> = flight.iter().filter(|r| r.id == "victim").collect();
    assert_eq!(victims.len(), 1, "exactly one flight record for the killed-worker request");
    assert_eq!(victims[0].worker_deaths, 1);
    assert_eq!(victims[0].outcome, Outcome::Mapped);
    assert_eq!(flight.iter().filter(|r| r.id == "clean").count(), 1);
    assert_eq!(
        service.stats().anomalies.load(Ordering::Relaxed),
        1,
        "the worker death is an anomaly"
    );

    // Trace trees: group spans by request id.
    let events = sink.take();
    let mut by_req: HashMap<String, Vec<&mapzero_obs::TraceEvent>> = HashMap::new();
    for e in &events {
        if let Some(req) = &e.req {
            by_req.entry(req.clone()).or_default().push(e);
        }
    }
    for id in ["victim", "clean"] {
        let spans = by_req.get(id).unwrap_or_else(|| panic!("no spans for request {id}"));
        let names: Vec<&str> = spans.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"serve.queue.wait"), "{id}: {names:?}");
        assert!(names.contains(&"serve.request"), "{id}: {names:?}");
        assert!(names.contains(&"compile.map"), "{id}: {names:?}");
        // Well-formed: every span nests under a root `serve.request`
        // at the shallowest depth (the killed attempt contributes a
        // second, shallower-or-equal tree of its own).
        let root_depth =
            spans.iter().filter(|e| e.name == "serve.request").map(|e| e.depth).min().unwrap();
        let compile_depth =
            spans.iter().filter(|e| e.name == "compile.map").map(|e| e.depth).min().unwrap();
        assert!(compile_depth > root_depth, "{id}: compile.map outside serve.request");
    }
    // The killed attempt emitted its own serve.request span on unwind:
    // the victim has two, the clean request one.
    let victim_roots =
        by_req["victim"].iter().filter(|e| e.name == "serve.request").count();
    assert_eq!(victim_roots, 2, "one aborted + one successful attempt");
    assert_eq!(by_req["clean"].iter().filter(|e| e.name == "serve.request").count(), 1);
    service.shutdown();
}

/// The admin socket round trip: all three commands answer over a real
/// Unix socket, and `status` is the same JSON `status_json` builds.
#[test]
fn admin_socket_serves_status_metrics_and_flight() {
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    let _g = serial();
    let service = MapService::start(ServeConfig::fast_test());
    let _ = service.process_batch(vec![request("r-1", "acme", "sum")]);

    let path = std::env::temp_dir().join(format!("mapzero-admin-test-{}.sock", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    admin::spawn_admin_socket(&service, &path).expect("bind admin socket");

    let fetch = |command: &str| -> String {
        let mut stream = UnixStream::connect(&path).expect("connect");
        writeln!(stream, "{command}").expect("send command");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut payload = String::new();
        stream.read_to_string(&mut payload).expect("read payload");
        payload
    };

    let status = mapzero_obs::json::parse(fetch("status").trim()).expect("status is JSON");
    assert_eq!(field(&status, &["stats", "responses"]), 1);
    assert!(status.get("tenants").and_then(|t| t.get("acme")).is_some());

    // The registry is process-global (tests in this binary share it),
    // so assert sample presence, not exact values.
    let metrics = fetch("metrics");
    assert!(metrics.contains("serve_outcome{label=\"mapped\"}"), "{metrics}");
    assert!(metrics.contains("serve_latency_service_us{quantile=\"0.5\"}"), "{metrics}");

    let flight = fetch("flight");
    let lines: Vec<&str> = flight.lines().collect();
    assert_eq!(lines.len(), 1);
    let record = mapzero_obs::json::parse(lines[0]).expect("flight line is JSON");
    assert_eq!(record.get("id").and_then(|j| j.as_str()), Some("r-1"));

    assert!(fetch("bogus").starts_with("error:"));
    let _ = std::fs::remove_file(&path);
    service.shutdown();
}
