//! Kill -9 crash-recovery chaos, at the binary level: a process abort
//! mid-batch (the `serve.journal.post_admit` failpoint, firing after
//! the third admit record's fsync) must lose nothing it admitted —
//! the next start with the same `--journal` directory replays exactly
//! the three durable requests, answers each exactly once, and a third
//! start finds a compacted journal with nothing left to do.

use mapzero_arch::presets;
use mapzero_dfg::suite;
use mapzero_serve::wire::MapRequest;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_mapzero_serve");

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir()
            .join(format!("mapzero-chaos-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp journal dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn batch(n: usize) -> String {
    (0..n)
        .map(|i| {
            let kernel = if i % 2 == 0 { "sum" } else { "mac" };
            let mut req = MapRequest::new(
                &format!("r-{i}"),
                "acme",
                suite::by_name(kernel).unwrap(),
                presets::hrea(),
            );
            req.deadline = Some(Duration::from_secs(60));
            req.emit()
        })
        .collect()
}

/// Run the serve binary over `input`, returning (exit success, stdout).
fn run_serve(journal: &Path, input: &str, failpoints: Option<&str>) -> (bool, String) {
    let mut cmd = Command::new(BIN);
    cmd.arg("--journal")
        .arg(journal)
        .arg("--workers")
        .arg("2")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    match failpoints {
        Some(spec) => cmd.env("MAPZERO_FAILPOINTS", spec),
        None => cmd.env_remove("MAPZERO_FAILPOINTS"),
    };
    let mut child = cmd.spawn().expect("spawn mapzero_serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("feed batch");
    let out = child.wait_with_output().expect("binary runs to completion");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The ids of response lines in completion order.
fn response_ids(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.contains("\"outcome\""))
        .map(|l| {
            let rest = l.split("\"id\":\"").nth(1).expect("response line carries an id");
            rest.split('"').next().expect("closing quote").to_owned()
        })
        .collect()
}

#[test]
fn aborted_batch_replays_exactly_once_then_compacts_away() {
    let dir = TempDir::new();

    // Run 1: the process aborts (kill -9 semantics) right after the
    // third admit record hit the disk — no response was written.
    let (ok, stdout) =
        run_serve(&dir.0, &batch(5), Some("global:serve.journal.post_admit=abort@3"));
    assert!(!ok, "an aborted process does not exit cleanly");
    assert!(
        response_ids(&stdout).is_empty(),
        "no response outran the crash: {stdout}"
    );

    // Run 2: same journal, empty stdin. Exactly the three durable
    // admits replay; each is answered exactly once, and mapped.
    let (ok, stdout) = run_serve(&dir.0, "", None);
    assert!(ok, "recovery run exits 0");
    let mut ids = response_ids(&stdout);
    ids.sort();
    assert_eq!(ids, vec!["r-0", "r-1", "r-2"], "stdout: {stdout}");
    for line in stdout.lines().filter(|l| l.contains("\"outcome\"")) {
        assert!(line.contains("\"outcome\":\"mapped\""), "replayed request maps: {line}");
    }

    // Run 3: every admit has its terminal mark — nothing replays, and
    // recovery compacted the directory down to one generation file.
    let (ok, stdout) = run_serve(&dir.0, "", None);
    assert!(ok, "quiet run exits 0");
    assert!(response_ids(&stdout).is_empty(), "nothing left to replay: {stdout}");
    let logs: Vec<_> = std::fs::read_dir(&dir.0)
        .expect("journal dir listable")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("journal_"))
        .collect();
    assert_eq!(logs.len(), 1, "old generations deleted: {logs:?}");
}
