//! Behavioral tests for the compile service: admission, deadlines,
//! retries, hedging, worker death, and per-request telemetry.
//!
//! Tests in this binary serialize on one lock: several arm process-wide
//! failpoints (`arm_global`) or flip the process-global telemetry
//! switch, which concurrent services would race on.

use mapzero_arch::presets;
use mapzero_core::failpoint::{self, FailAction};
use mapzero_dfg::suite;
use mapzero_serve::queue::QueueConfig;
use mapzero_serve::service::{MapService, ServeConfig};
use mapzero_serve::wire::{MapRequest, Outcome};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn request(id: &str, tenant: &str, kernel: &str) -> MapRequest {
    MapRequest::new(id, tenant, suite::by_name(kernel).unwrap(), presets::hrea())
}

#[test]
fn maps_a_batch_and_answers_in_request_order() {
    let _g = serial();
    let service = MapService::start(ServeConfig::fast_test());
    let batch = vec![
        request("a-1", "acme", "sum"),
        request("b-1", "beta", "mac"),
        request("a-2", "acme", "accumulate"),
    ];
    let responses = service.process_batch(batch);
    assert_eq!(responses.len(), 3);
    assert_eq!(
        responses.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
        ["a-1", "b-1", "a-2"]
    );
    for r in &responses {
        assert_eq!(r.outcome, Outcome::Mapped, "{}: {:?}", r.id, r.error);
        assert!(r.mapping.is_some());
        assert_eq!(r.worker_deaths, 0);
    }
    service.shutdown();
}

#[test]
fn zero_capacity_queue_sheds_with_rejected_response() {
    let _g = serial();
    let config = ServeConfig {
        queue: QueueConfig { capacity: 0, tenant_inflight_cap: 2 },
        ..ServeConfig::fast_test()
    };
    let service = MapService::start(config);
    let responses = service.process_batch(vec![request("r", "acme", "sum")]);
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].outcome, Outcome::Rejected);
    assert_eq!(responses[0].queue_depth, Some(0));
    assert_eq!(service.stats().shed.load(std::sync::atomic::Ordering::Relaxed), 1);
    service.shutdown();
}

#[test]
fn expired_deadline_in_queue_is_answered_structurally() {
    let _g = serial();
    let service = MapService::start(ServeConfig::fast_test());
    let mut req = request("late", "acme", "sum");
    // The allowance is consumed entirely by queue wait (any wait > 0).
    req.deadline = Some(Duration::ZERO);
    let responses = service.process_batch(vec![req]);
    assert_eq!(responses[0].outcome, Outcome::Deadline);
    assert!(responses[0].error.as_deref().unwrap().contains("queued"));
    service.shutdown();
}

#[test]
fn internal_fault_is_retried_to_success() {
    let _g = serial();
    let service = MapService::start(ServeConfig::fast_test());
    let mut req = request("flaky", "acme", "sum");
    // The compiler's own isolation boundary converts this panic into
    // MapError::Internal; the service retries and the (self-disarmed)
    // failpoint stays quiet on the second attempt.
    req.fault = Some("compile.attempt=panic".to_owned());
    let responses = service.process_batch(vec![req]);
    assert_eq!(responses[0].outcome, Outcome::Mapped, "{:?}", responses[0].error);
    assert_eq!(responses[0].retries, 1);
    assert_eq!(responses[0].worker_deaths, 0, "contained fault must not kill the worker");
    service.shutdown();
}

#[test]
fn one_worker_death_is_contained_and_the_request_retried() {
    let _g = serial();
    let service = MapService::start(ServeConfig::fast_test());
    // Process-global: fires on exactly one worker visit, so the retry
    // (on the respawned or sibling worker) runs clean.
    failpoint::arm_global("serve.worker.pre_map", 1, FailAction::Panic);
    let responses = service.process_batch(vec![request("victim", "acme", "sum")]);
    failpoint::disarm_global("serve.worker.pre_map");
    assert_eq!(responses[0].outcome, Outcome::Mapped, "{:?}", responses[0].error);
    assert_eq!(responses[0].worker_deaths, 1);
    let stats = service.stats();
    assert_eq!(stats.worker_deaths.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(stats.respawns.load(std::sync::atomic::Ordering::Relaxed), 1);
    // The pool is intact: the next request maps normally.
    let responses = service.process_batch(vec![request("after", "acme", "mac")]);
    assert_eq!(responses[0].outcome, Outcome::Mapped);
    service.shutdown();
}

#[test]
fn repeated_worker_death_fails_structurally_never_lost() {
    let _g = serial();
    let config = ServeConfig { max_retries: 1, ..ServeConfig::fast_test() };
    let service = MapService::start(config);
    let mut req = request("doomed", "acme", "sum");
    // A per-request fault re-arms on every attempt (the worker arms it
    // from the request itself), so each retry dies again until the
    // allowance is spent — the request must still get exactly one
    // structured response.
    req.fault = Some("serve.worker.pre_map=panic".to_owned());
    let responses = service.process_batch(vec![req]);
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].outcome, Outcome::Internal);
    assert_eq!(responses[0].worker_deaths, 2, "initial attempt + one retry");
    // Two workers died; two were respawned; service still serves.
    let responses = service.process_batch(vec![request("after", "beta", "sum")]);
    assert_eq!(responses[0].outcome, Outcome::Mapped);
    service.shutdown();
}

#[test]
fn expansion_budget_timeout_is_reported() {
    let _g = serial();
    let config = ServeConfig { expansion_budget: Some(10), ..ServeConfig::fast_test() };
    let service = MapService::start(config);
    // 54 nodes cannot map within 10 expansions and there is no
    // deadline, so the outcome is a work-budget timeout.
    let responses = service.process_batch(vec![request("big", "acme", "arf")]);
    assert_eq!(responses[0].outcome, Outcome::Timeout, "{:?}", responses[0].error);
    service.shutdown();
}

#[test]
fn hedged_fallback_rescues_a_starved_primary() {
    let _g = serial();
    let config = ServeConfig {
        hedge: true,
        expansion_budget: Some(1),
        ..ServeConfig::fast_test()
    };
    let service = MapService::start(config);
    // A one-expansion budget starves the primary before it can place
    // anything; the SA lane (not expansion-limited) produces the
    // mapping.
    let responses = service.process_batch(vec![request("hedged", "acme", "sum")]);
    assert_eq!(responses[0].outcome, Outcome::Mapped, "{:?}", responses[0].error);
    assert_eq!(responses[0].engine.as_deref(), Some("SA"));
    service.shutdown();
}

#[test]
fn per_request_telemetry_delta_is_attached() {
    let _g = serial();
    let was = mapzero_obs::enabled();
    mapzero_obs::set_enabled(true);
    let service = MapService::start(ServeConfig::fast_test());
    let responses = service.process_batch(vec![request("traced", "acme", "sum")]);
    service.shutdown();
    mapzero_obs::set_enabled(was);
    let telemetry = responses[0].telemetry.as_ref().expect("telemetry enabled");
    assert!(
        telemetry.counter("compile.success") >= 1,
        "the request's own compile outcome is in its delta: {:?}",
        telemetry.counters
    );
    // And it shows up in the JSONL rendering.
    let line = responses[0].to_jsonl();
    assert!(line.contains("\"telemetry\""), "{line}");
}

#[test]
fn ii_bounds_flow_through_to_the_mapper() {
    let _g = serial();
    let service = MapService::start(ServeConfig::fast_test());
    let mut req = request("bounded", "acme", "sum");
    req.ii_min = Some(2);
    let mut impossible = request("impossible", "acme", "sum");
    impossible.ii_min = Some(40);
    impossible.ii_max = Some(50);
    let responses = service.process_batch(vec![req, impossible]);
    assert_eq!(responses[0].outcome, Outcome::Mapped);
    assert!(responses[0].achieved_ii.unwrap() >= 2);
    assert_eq!(responses[1].outcome, Outcome::Failed);
    assert!(responses[1].error.as_deref().unwrap().contains("no schedule"));
    service.shutdown();
}

#[test]
fn tenant_inflight_cap_is_enforced_under_load() {
    let _g = serial();
    let config = ServeConfig {
        workers: 4,
        queue: QueueConfig { capacity: 32, tenant_inflight_cap: 1 },
        ..ServeConfig::fast_test()
    };
    let service = MapService::start(config);
    // 6 requests from one tenant across 4 workers: with an in-flight
    // cap of 1 they serialize; all complete, none is lost.
    let batch: Vec<MapRequest> =
        (0..6).map(|i| request(&format!("q-{i}"), "mono", "sum")).collect();
    let responses = service.process_batch(batch);
    assert_eq!(responses.len(), 6);
    assert!(responses.iter().all(|r| r.outcome == Outcome::Mapped));
    service.shutdown();
}
