//! The wire format's correctness oracle: any generated request — random
//! DFG, random fabric, random II window and deadline — serializes and
//! reparses identically, alone and in batches.

use mapzero_arch::{presets, Capability, Cgra, CgraBuilder, Interconnect};
use mapzero_dfg::random::{random_dfg, RandomDfgConfig};
use mapzero_dfg::Dfg;
use mapzero_serve::wire::{parse_batch, MapRequest, RequestReader};
use proptest::prelude::*;
use std::time::Duration;

fn dfg_strategy() -> impl Strategy<Value = Dfg> {
    (2usize..20, 0usize..10, 0usize..2, any::<u64>()).prop_map(
        |(nodes, extra, cycles, seed)| {
            random_dfg(
                "wireprop",
                &RandomDfgConfig {
                    nodes,
                    edges: nodes - 1 + extra,
                    self_cycles: cycles,
                    max_fanin: 3,
                    seed,
                },
            )
        },
    )
}

/// Random fabrics expressed purely in constructs the text format emits
/// (presets plus builder combinations; `link` lines are parse-only, so
/// extra links would not round-trip and are excluded by construction).
fn cgra_strategy() -> impl Strategy<Value = Cgra> {
    (1usize..5, 1usize..5, 0usize..5, any::<bool>(), any::<bool>(), 0usize..4).prop_map(
        |(rows, cols, style, rowbus, heterogeneous, preset)| {
            if preset == 0 {
                return presets::hrea();
            }
            let style = match style {
                0 => Interconnect::Mesh,
                1 => Interconnect::OneHop,
                2 => Interconnect::Diagonal,
                3 => Interconnect::Toroidal,
                _ => Interconnect::Crossbar,
            };
            let mut b = CgraBuilder::new("wirefab", rows, cols).interconnect(style);
            if rowbus {
                b = b.row_shared_mem_bus();
            }
            if heterogeneous {
                // A capability pattern exercising every emitted form.
                b = b.capability(0, 0, Capability::ARITH);
                if rows > 1 && cols > 1 {
                    b = b.capability(1, 1, Capability::COMPUTE);
                }
                b = b.capability(rows - 1, cols - 1, Capability::NONE);
            }
            b.finish()
        },
    )
}

fn request_strategy() -> impl Strategy<Value = MapRequest> {
    // The vendored proptest has no `option::of`; optional fields are a
    // (present, value) pair each. Packing the flags into one tuple
    // keeps the strategy within the 6-tuple impl limit.
    (
        dfg_strategy(),
        cgra_strategy(),
        1u32..9,
        (any::<bool>(), 1u64..100_000),
        (any::<bool>(), 1u32..8, any::<bool>(), 0u32..8),
        0usize..1000,
    )
        .prop_map(|(dfg, cgra, weight, deadline, ii, id)| {
            let mut req = MapRequest::new(&format!("req-{id}"), "prop-tenant", dfg, cgra);
            req.weight = weight;
            req.deadline = deadline.0.then(|| Duration::from_millis(deadline.1));
            let (has_min, min, has_max, extra) = ii;
            req.ii_min = has_min.then_some(min);
            // Keep the window non-inverted by construction: max is
            // min + extra when both are present.
            req.ii_max = has_max.then_some(min + extra);
            req
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip_through_the_wire_format(req in request_strategy()) {
        let text = req.emit();
        let batch = parse_batch(&text).unwrap();
        prop_assert_eq!(batch, vec![req]);
    }

    #[test]
    fn batches_round_trip_in_order(
        reqs in proptest::collection::vec(request_strategy(), 1..5)
    ) {
        let text: String = reqs.iter().map(MapRequest::emit).collect();
        let batch = parse_batch(&text).unwrap();
        prop_assert_eq!(batch, reqs);
    }

    #[test]
    fn faulted_requests_round_trip(req in request_strategy(), after in 1u64..5) {
        let mut req = req;
        req.fault = Some(format!("compile.attempt=panic@{after}"));
        let batch = parse_batch(&req.emit()).unwrap();
        prop_assert_eq!(batch, vec![req]);
    }

    // ---- adversarial input: the parser must never panic ------------

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let mut reader = RequestReader::new(std::io::Cursor::new(bytes));
        // Bounded pull: garbage either parses (astronomically unlikely),
        // errors, or ends the stream — it must not panic or loop.
        for _ in 0..64 {
            match reader.next_request() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    let line = e.to_json().to_string_compact();
                    prop_assert!(line.contains("\"outcome\":\"rejected\""));
                    prop_assert!(line.contains("parse error"));
                    break;
                }
            }
        }
    }

    #[test]
    fn truncated_requests_error_cleanly(req in request_strategy(), frac in 0.0f64..1.0) {
        let text = req.emit();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((text.len() as f64) * frac) as usize;
        let mut truncated = text.as_bytes()[..cut.min(text.len())].to_vec();
        // Arbitrary prefixes of a valid request: parse, error, or EOF.
        let mut reader = RequestReader::new(std::io::Cursor::new(truncated.clone()));
        let _ = reader.next_request();
        // And with a flipped byte somewhere in the prefix.
        if !truncated.is_empty() {
            let idx = cut / 2 % truncated.len();
            truncated[idx] ^= 0x55;
            let mut reader = RequestReader::new(std::io::Cursor::new(truncated));
            let _ = reader.next_request();
        }
    }

    #[test]
    fn line_mangled_requests_never_panic(
        req in request_strategy(),
        drop_line in 0usize..40,
        dup_line in 0usize..40,
    ) {
        let text = req.emit();
        let lines: Vec<&str> = text.lines().collect();
        let mut mangled = String::new();
        for (i, line) in lines.iter().enumerate() {
            if i == drop_line % lines.len() {
                continue; // drop one line
            }
            mangled.push_str(line);
            mangled.push('\n');
            if i == dup_line % lines.len() {
                mangled.push_str(line); // duplicate another
                mangled.push('\n');
            }
        }
        let _ = parse_batch(&mangled);
    }
}

/// A parse error after a readable header carries the offending request
/// id, and the structured JSONL form exposes it to the client.
#[test]
fn parse_errors_identify_the_offending_request() {
    let text = "request r-broken\ntenant acme\nthis is not a request body\n";
    let mut reader = RequestReader::new(std::io::Cursor::new(text.as_bytes().to_vec()));
    let err = loop {
        match reader.next_request() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("garbage body must not parse"),
            Err(e) => break e,
        }
    };
    assert_eq!(err.request_id.as_deref(), Some("r-broken"));
    let line = err.to_json().to_string_compact();
    assert!(line.contains("\"id\":\"r-broken\""), "structured error names the request: {line}");
    assert!(line.contains("\"outcome\":\"rejected\""), "{line}");
}
