//! The wire format's correctness oracle: any generated request — random
//! DFG, random fabric, random II window and deadline — serializes and
//! reparses identically, alone and in batches.

use mapzero_arch::{presets, Capability, Cgra, CgraBuilder, Interconnect};
use mapzero_dfg::random::{random_dfg, RandomDfgConfig};
use mapzero_dfg::Dfg;
use mapzero_serve::wire::{parse_batch, MapRequest};
use proptest::prelude::*;
use std::time::Duration;

fn dfg_strategy() -> impl Strategy<Value = Dfg> {
    (2usize..20, 0usize..10, 0usize..2, any::<u64>()).prop_map(
        |(nodes, extra, cycles, seed)| {
            random_dfg(
                "wireprop",
                &RandomDfgConfig {
                    nodes,
                    edges: nodes - 1 + extra,
                    self_cycles: cycles,
                    max_fanin: 3,
                    seed,
                },
            )
        },
    )
}

/// Random fabrics expressed purely in constructs the text format emits
/// (presets plus builder combinations; `link` lines are parse-only, so
/// extra links would not round-trip and are excluded by construction).
fn cgra_strategy() -> impl Strategy<Value = Cgra> {
    (1usize..5, 1usize..5, 0usize..5, any::<bool>(), any::<bool>(), 0usize..4).prop_map(
        |(rows, cols, style, rowbus, heterogeneous, preset)| {
            if preset == 0 {
                return presets::hrea();
            }
            let style = match style {
                0 => Interconnect::Mesh,
                1 => Interconnect::OneHop,
                2 => Interconnect::Diagonal,
                3 => Interconnect::Toroidal,
                _ => Interconnect::Crossbar,
            };
            let mut b = CgraBuilder::new("wirefab", rows, cols).interconnect(style);
            if rowbus {
                b = b.row_shared_mem_bus();
            }
            if heterogeneous {
                // A capability pattern exercising every emitted form.
                b = b.capability(0, 0, Capability::ARITH);
                if rows > 1 && cols > 1 {
                    b = b.capability(1, 1, Capability::COMPUTE);
                }
                b = b.capability(rows - 1, cols - 1, Capability::NONE);
            }
            b.finish()
        },
    )
}

fn request_strategy() -> impl Strategy<Value = MapRequest> {
    // The vendored proptest has no `option::of`; optional fields are a
    // (present, value) pair each. Packing the flags into one tuple
    // keeps the strategy within the 6-tuple impl limit.
    (
        dfg_strategy(),
        cgra_strategy(),
        1u32..9,
        (any::<bool>(), 1u64..100_000),
        (any::<bool>(), 1u32..8, any::<bool>(), 0u32..8),
        0usize..1000,
    )
        .prop_map(|(dfg, cgra, weight, deadline, ii, id)| {
            let mut req = MapRequest::new(&format!("req-{id}"), "prop-tenant", dfg, cgra);
            req.weight = weight;
            req.deadline = deadline.0.then(|| Duration::from_millis(deadline.1));
            let (has_min, min, has_max, extra) = ii;
            req.ii_min = has_min.then_some(min);
            // Keep the window non-inverted by construction: max is
            // min + extra when both are present.
            req.ii_max = has_max.then_some(min + extra);
            req
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip_through_the_wire_format(req in request_strategy()) {
        let text = req.emit();
        let batch = parse_batch(&text).unwrap();
        prop_assert_eq!(batch, vec![req]);
    }

    #[test]
    fn batches_round_trip_in_order(
        reqs in proptest::collection::vec(request_strategy(), 1..5)
    ) {
        let text: String = reqs.iter().map(MapRequest::emit).collect();
        let batch = parse_batch(&text).unwrap();
        prop_assert_eq!(batch, reqs);
    }

    #[test]
    fn faulted_requests_round_trip(req in request_strategy(), after in 1u64..5) {
        let mut req = req;
        req.fault = Some(format!("compile.attempt=panic@{after}"));
        let batch = parse_batch(&req.emit()).unwrap();
        prop_assert_eq!(batch, vec![req]);
    }
}
