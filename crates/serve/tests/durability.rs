//! Durability, drain, breaker and validator acceptance — the
//! in-process half (the binary-level kill -9 chaos lives in
//! `chaos_recovery.rs`):
//!
//! - journaled requests whose responses were delivered do not replay;
//!   an undelivered one replays exactly once on the next open
//! - a drain stops admission (fast `rejected`), finishes in-flight
//!   work, and the queue reaches empty under the deadline
//! - one tenant serially killing workers trips its breaker; its
//!   requests are answered `breaker_open` instantly while another
//!   tenant's requests keep mapping
//! - the independent validator turns a corrupted mapping into an
//!   `internal` response and counts `serve.validate.fail`
//! - a worker-death retry keeps the original enqueue-time accounting
//!   (queue wait spans the first attempt, not just the requeue)
//!
//! Tests that arm process-global failpoints serialize on one mutex.

use mapzero_arch::presets;
use mapzero_core::failpoint::{self, FailAction};
use mapzero_dfg::suite;
use mapzero_serve::breaker::BreakerConfig;
use mapzero_serve::journal::Journal;
use mapzero_serve::service::{MapService, ServeConfig};
use mapzero_serve::wire::{MapRequest, Outcome};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A self-cleaning journal directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "mapzero-durability-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp journal dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn request(id: &str, tenant: &str, kernel: &str) -> MapRequest {
    let mut req = MapRequest::new(id, tenant, suite::by_name(kernel).unwrap(), presets::hrea());
    req.deadline = Some(Duration::from_secs(30));
    req
}

#[test]
fn delivered_requests_do_not_replay_undelivered_ones_do() {
    let _guard = serial();
    let dir = TempDir::new("replay");

    // Run 1: two requests; only the first's response is marked
    // delivered (the "crash" happens between computing and writing the
    // second response line).
    let (journal, pending) = Journal::open(&dir.0).expect("fresh journal");
    assert!(pending.is_empty(), "fresh journal has nothing to replay");
    let service = MapService::start_with_journal(ServeConfig::fast_test(), Some(journal));
    let (tx, rx) = mpsc::channel();
    assert!(service.submit(request("d-1", "acme", "sum"), &tx));
    assert!(service.submit(request("d-2", "acme", "mac"), &tx));
    let mut delivered = 0;
    for _ in 0..2 {
        let resp = rx.recv().expect("exactly one response per admitted request");
        assert_eq!(resp.outcome, Outcome::Mapped, "{}: {:?}", resp.id, resp.error);
        if resp.id == "d-1" {
            service.mark_delivered(&resp);
            delivered += 1;
        }
    }
    assert_eq!(delivered, 1);
    service.shutdown();

    // Run 2 (the restart): exactly the undelivered request replays,
    // byte-faithfully enough to map again; after delivery and another
    // restart nothing is left.
    let (journal, pending) = Journal::open(&dir.0).expect("reopen journal");
    assert_eq!(pending.len(), 1, "only the undelivered request replays");
    assert_eq!(pending[0].id, "d-2");
    let service = MapService::start_with_journal(ServeConfig::fast_test(), Some(journal));
    let (tx, rx) = mpsc::channel();
    assert!(service.submit_replayed(pending.into_iter().next().unwrap(), &tx));
    let resp = rx.recv().expect("replayed request is answered");
    assert_eq!(resp.outcome, Outcome::Mapped, "{:?}", resp.error);
    assert_eq!(resp.id, "d-2");
    service.mark_delivered(&resp);
    assert_eq!(service.stats().replayed.load(Ordering::Relaxed), 1);
    service.shutdown();

    let (_journal, pending) = Journal::open(&dir.0).expect("third open");
    assert!(pending.is_empty(), "delivered replay does not replay again: {pending:?}");
}

#[test]
fn drain_stops_admission_and_finishes_inflight_work() {
    let _guard = serial();
    let service = MapService::start(ServeConfig::fast_test());
    let (tx, rx) = mpsc::channel();
    for i in 0..3 {
        assert!(service.submit(request(&format!("g-{i}"), "acme", "sum"), &tx));
    }
    assert!(service.begin_drain(), "first drain call initiates");
    assert!(!service.begin_drain(), "drain is idempotent");
    assert!(service.draining());

    // Admission is now closed: a fast rejected response, not a queue
    // slot.
    assert!(!service.submit(request("late", "acme", "sum"), &tx));
    // In-flight and queued work still completes.
    assert!(service.await_drained(Duration::from_secs(60)), "queue drains under deadline");

    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..4 {
        let resp = rx.recv().expect("every submit is answered");
        outcomes.insert(resp.id.clone(), (resp.outcome, resp.error.clone()));
    }
    for i in 0..3 {
        let (outcome, error) = &outcomes[&format!("g-{i}")];
        assert_eq!(*outcome, Outcome::Mapped, "g-{i}: {error:?}");
    }
    let (outcome, error) = &outcomes["late"];
    assert_eq!(*outcome, Outcome::Rejected);
    assert!(
        error.as_deref().is_some_and(|e| e.contains("draining")),
        "drain rejection names its reason: {error:?}"
    );
    let status = service.status_json();
    assert!(status.to_string_compact().contains("\"state\":\"draining\""));

    // Per-tenant reconciliation on the quiesced service: every admitted
    // request reached exactly one terminal outcome.
    let acme = status.get("tenants").and_then(|t| t.get("acme")).expect("acme tenant in status");
    let field = |k: &str| acme.get(k).and_then(mapzero_obs::json::Json::as_f64).unwrap_or(-1.0);
    let admitted = field("admitted");
    let terminal = field("mapped")
        + field("failed")
        + field("timeout")
        + field("deadline")
        + field("internal");
    assert!(admitted >= 3.0, "status: {status:?}");
    assert!(
        (admitted - terminal).abs() < f64::EPSILON,
        "admitted {admitted} == terminal {terminal}"
    );
    service.shutdown();
}

#[test]
fn breaker_isolates_a_worker_killing_tenant() {
    let _guard = serial();
    let service = MapService::start(ServeConfig {
        max_retries: 0, // one death = one terminal internal response
        breaker: BreakerConfig {
            threshold: 2,
            window: Duration::from_secs(30),
            cooldown: Duration::from_secs(120), // stays open for the test
        },
        ..ServeConfig::fast_test()
    });
    let (tx, rx) = mpsc::channel();

    // Two requests whose processing kills the worker: two deaths, the
    // second trips the breaker. Sequential submit/recv keeps the death
    // order deterministic.
    for i in 0..2 {
        let mut req = request(&format!("kill-{i}"), "acme", "mac");
        req.fault = Some("serve.worker.pre_map=panic".to_owned());
        assert!(service.submit(req, &tx));
        let resp = rx.recv().expect("answered");
        assert_eq!(resp.outcome, Outcome::Internal, "death response: {:?}", resp.error);
        assert_eq!(resp.worker_deaths, 1);
    }
    let status = service.breaker_status();
    assert_eq!(status.len(), 1);
    assert_eq!(status[0].tenant, "acme");
    assert_eq!(status[0].state, "open");
    assert_eq!(status[0].trips, 1);

    // Tenant A is now answered from the breaker, instantly.
    assert!(!service.submit(request("blocked", "acme", "sum"), &tx));
    let resp = rx.recv().expect("breaker rejection is still a response");
    assert_eq!(resp.outcome, Outcome::Rejected);
    assert!(
        resp.error.as_deref().is_some_and(|e| e.contains("breaker_open")),
        "rejection names the breaker: {:?}",
        resp.error
    );
    assert_eq!(service.stats().breaker_rejected.load(Ordering::Relaxed), 1);

    // Tenant B is untouched: same pool, still maps.
    assert!(service.submit(request("healthy", "beta", "sum"), &tx));
    let resp = rx.recv().expect("answered");
    assert_eq!(resp.outcome, Outcome::Mapped, "{:?}", resp.error);

    let status = service.status_json().to_string_compact();
    assert!(status.contains("\"breakers\""), "{status}");
    assert!(status.contains("\"state\":\"open\""), "{status}");
    service.shutdown();
}

#[test]
fn corrupted_mapping_is_rejected_by_the_validator() {
    let _guard = serial();
    let service = MapService::start(ServeConfig::fast_test());
    let (tx, rx) = mpsc::channel();

    // `validate.corrupt` (io action as a pure signal) damages the
    // mapping after the compiler produced it; the independent check
    // must catch it and refuse to ship it.
    let mut req = request("corrupt", "acme", "sum");
    req.fault = Some("validate.corrupt=io".to_owned());
    assert!(service.submit(req, &tx));
    let resp = rx.recv().expect("answered");
    assert_eq!(resp.outcome, Outcome::Internal, "{:?}", resp.error);
    assert!(resp.mapping.is_none(), "an invalid mapping is never shipped");
    assert!(
        resp.error.as_deref().is_some_and(|e| e.contains("independent validation")),
        "{:?}",
        resp.error
    );
    assert_eq!(service.stats().validate_fail.load(Ordering::Relaxed), 1);
    let flight = service.flight_snapshot();
    assert!(flight.iter().any(|r| r.id == "corrupt"), "terminal record retained");

    // A healthy request on the same service still maps; the counter
    // stays where it was.
    assert!(service.submit(request("clean", "acme", "sum"), &tx));
    let resp = rx.recv().expect("answered");
    assert_eq!(resp.outcome, Outcome::Mapped, "{:?}", resp.error);
    assert_eq!(service.stats().validate_fail.load(Ordering::Relaxed), 1);
    service.shutdown();
}

#[test]
fn death_retry_keeps_original_enqueue_time_accounting() {
    let _guard = serial();
    // One worker: a slow request in front guarantees the victim waits
    // in the queue before its first (fatal) attempt.
    let service = MapService::start(ServeConfig { workers: 1, ..ServeConfig::fast_test() });
    let (tx, rx) = mpsc::channel();

    let mut blocker = request("blocker", "acme", "sum");
    blocker.fault = Some("infer.predict=delay:250".to_owned());
    assert!(service.submit(blocker, &tx));
    std::thread::sleep(Duration::from_millis(50)); // worker picked it up

    // First attempt of the victim dies (one-shot global arm); the
    // requeued second attempt must still be accounted from the
    // ORIGINAL enqueue instant — the same field that anchors its
    // deadline — so its queue wait spans the blocker and the death.
    failpoint::arm_global("serve.worker.pre_map", 1, FailAction::Panic);
    assert!(service.submit(request("victim", "acme", "mac"), &tx));

    let mut victim = None;
    for _ in 0..2 {
        let resp = rx.recv().expect("answered");
        if resp.id == "victim" {
            victim = Some(resp);
        }
    }
    failpoint::disarm_global("serve.worker.pre_map");
    let victim = victim.expect("victim answered");
    assert_eq!(victim.outcome, Outcome::Mapped, "{:?}", victim.error);
    assert_eq!(victim.worker_deaths, 1, "first attempt died");
    assert!(
        victim.queue_wait >= Duration::from_millis(150),
        "queue wait measured from the original enqueue, got {:?}",
        victim.queue_wait
    );
    service.shutdown();
}
