//! The chaos acceptance suite: one tenant's requests armed to panic
//! workers or stall inference must not affect another tenant's
//! outcomes — tenant B's requests complete within their deadlines with
//! mappings bit-identical to an unperturbed run, every admitted request
//! gets exactly one response, and none is duplicated.
//!
//! Determinism backing the bit-identical claim: `fast_test` disables
//! hedging (single engine), `MapZeroNet::new` is deterministic in
//! (size, seed), and the shared prediction cache only memoizes values
//! the deterministic net would recompute — so cache state perturbed by
//! tenant A cannot change tenant B's search results.

use mapzero_arch::presets;
use mapzero_core::mapping::Mapping;
use mapzero_dfg::suite;
use mapzero_serve::service::{MapService, ServeConfig};
use mapzero_serve::wire::{MapRequest, MapResponse, Outcome};
use std::collections::{BTreeMap, HashSet};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

const B_KERNELS: [&str; 4] = ["sum", "mac", "accumulate", "sum"];

fn tenant_b_batch() -> Vec<MapRequest> {
    B_KERNELS
        .iter()
        .enumerate()
        .map(|(i, kernel)| {
            let mut req = MapRequest::new(
                &format!("b-{i}"),
                "beta",
                suite::by_name(kernel).unwrap(),
                presets::hrea(),
            );
            req.deadline = Some(Duration::from_secs(30));
            req
        })
        .collect()
}

/// Tenant A's sabotage: worker-killing panics and inference stalls,
/// armed per-request so only A's processing is perturbed.
fn tenant_a_batch() -> Vec<MapRequest> {
    let faults =
        ["serve.worker.pre_map=panic", "infer.predict=delay:200", "serve.worker.pre_map=panic"];
    faults
        .iter()
        .enumerate()
        .map(|(i, fault)| {
            let mut req = MapRequest::new(
                &format!("a-{i}"),
                "acme",
                suite::by_name("mac").unwrap(),
                presets::hrea(),
            );
            req.fault = Some((*fault).to_owned());
            req
        })
        .collect()
}

fn b_mappings(responses: &[MapResponse]) -> BTreeMap<String, Mapping> {
    responses
        .iter()
        .filter(|r| r.tenant == "beta")
        .map(|r| {
            assert_eq!(r.outcome, Outcome::Mapped, "{}: {:?}", r.id, r.error);
            (r.id.clone(), r.mapping.clone().expect("mapped response carries a mapping"))
        })
        .collect()
}

#[test]
fn perturbed_tenant_cannot_change_anothers_mappings() {
    let _g = serial();

    // Unperturbed reference run: tenant B alone on a fresh service.
    let baseline_service = MapService::start(ServeConfig::fast_test());
    let baseline = baseline_service.process_batch(tenant_b_batch());
    baseline_service.shutdown();
    let expected = b_mappings(&baseline);
    assert_eq!(expected.len(), B_KERNELS.len());

    // Chaos run: same B requests interleaved with A's armed requests.
    let service = MapService::start(ServeConfig::fast_test());
    let mut batch = Vec::new();
    for (a, b) in tenant_a_batch().into_iter().zip(tenant_b_batch()) {
        batch.push(a);
        batch.push(b);
    }
    batch.push(tenant_b_batch().pop().unwrap());
    let total = batch.len();
    let responses = service.process_batch(batch);

    // Exactly one response per request — nothing lost, nothing
    // duplicated, even with workers dying mid-flight.
    assert_eq!(responses.len(), total);
    let ids: HashSet<&str> = responses.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(ids.len(), total, "duplicate response ids");

    // Tenant B: every request mapped within its deadline (a `Deadline`
    // or `Internal` outcome here would be a containment failure), with
    // mappings bit-identical to the unperturbed run.
    let perturbed = b_mappings(&responses);
    for (id, mapping) in &expected {
        assert_eq!(
            perturbed.get(id),
            Some(mapping),
            "tenant B mapping for {id} changed under tenant A chaos"
        );
    }
    for r in responses.iter().filter(|r| r.tenant == "beta") {
        assert!(
            r.queue_wait + r.service_time < Duration::from_secs(30),
            "{} missed its deadline: waited {:?}, served {:?}",
            r.id,
            r.queue_wait,
            r.service_time
        );
        assert_eq!(r.worker_deaths, 0, "tenant A's panics leaked onto {}", r.id);
    }

    // Tenant A's panic-armed requests burned their retries and were
    // answered structurally; the stalled one still completed.
    for r in responses.iter().filter(|r| r.tenant == "acme") {
        if r.id == "a-1" {
            assert_eq!(r.outcome, Outcome::Mapped, "stalled request still maps: {:?}", r.error);
        } else {
            assert_eq!(r.outcome, Outcome::Internal, "{}", r.id);
            assert!(r.worker_deaths > 0, "{}", r.id);
        }
    }

    // The pool healed: every death was matched by a respawn, and a
    // fresh request maps normally.
    let stats = service.stats();
    let deaths = stats.worker_deaths.load(std::sync::atomic::Ordering::Relaxed);
    let respawns = stats.respawns.load(std::sync::atomic::Ordering::Relaxed);
    assert!(deaths > 0, "chaos run should have killed at least one worker");
    assert_eq!(deaths, respawns);
    let after = service.process_batch(vec![MapRequest::new(
        "after",
        "beta",
        suite::by_name("sum").unwrap(),
        presets::hrea(),
    )]);
    assert_eq!(after[0].outcome, Outcome::Mapped);
    service.shutdown();
}

/// Repeated chaos runs are themselves reproducible: two perturbed
/// services produce identical tenant-B mappings.
#[test]
fn chaos_runs_are_reproducible() {
    let _g = serial();
    let run = || {
        let service = MapService::start(ServeConfig::fast_test());
        let mut batch = tenant_a_batch();
        batch.extend(tenant_b_batch());
        let responses = service.process_batch(batch);
        service.shutdown();
        b_mappings(&responses)
    };
    assert_eq!(run(), run());
}
