//! Flight recorder: a bounded ring of the last N records.
//!
//! The serve plane pushes one record per terminal request outcome; on
//! an anomaly (shed burst, worker death, deadline-miss streak) the ring
//! is dumped, giving a post-hoc record of exactly what led up to the
//! event without logging every request all the time.
//!
//! Concurrency: slot claim is a single atomic `fetch_add` (wait-free);
//! each slot is guarded by its own mutex, so two writers only contend
//! when they wrap onto the *same* slot — capacity apart — and readers
//! never block writers for more than one slot at a time. Records carry
//! their claim sequence, so [`FlightRecorder::snapshot`] returns them
//! in admission order even when writes raced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A bounded ring of the last `capacity` records (see module docs).
#[derive(Debug)]
pub struct FlightRecorder<T> {
    slots: Vec<Mutex<Option<(u64, T)>>>,
    cursor: AtomicU64,
}

impl<T: Clone> FlightRecorder<T> {
    /// A recorder keeping the last `capacity` (>= 1) records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (not the current occupancy).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Append one record, overwriting the oldest when full.
    pub fn push(&self, record: T) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
        *self.slots[slot].lock().unwrap_or_else(PoisonError::into_inner) = Some((seq, record));
    }

    /// Copy of the retained records, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<T> {
        let mut entries: Vec<(u64, T)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, record)| record).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_last_n_in_order() {
        let ring = FlightRecorder::new(4);
        for i in 0..10u32 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    fn partial_fill_returns_what_exists() {
        let ring = FlightRecorder::new(8);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.snapshot(), vec!["a", "b"]);
    }

    #[test]
    fn concurrent_pushes_lose_nothing_within_capacity() {
        let ring = std::sync::Arc::new(FlightRecorder::new(1024));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        ring.push(t * 1000 + i);
                    }
                });
            }
        });
        let got = ring.snapshot();
        assert_eq!(got.len(), 800);
        let unique: std::collections::HashSet<u64> = got.iter().copied().collect();
        assert_eq!(unique.len(), 800, "no record lost or duplicated");
    }
}
