//! Structured span tracing.
//!
//! `span!("mcts.expand")` pushes onto a thread-local span stack and, on
//! drop, emits one JSONL trace event to the installed
//! [`TelemetrySink`](crate::sink::TelemetrySink). Timestamps are
//! microseconds since a process-wide monotonic epoch, so events from
//! different threads order correctly without a wall clock.
//!
//! **Request scoping.** A server thread can mark itself as processing
//! one request with [`request_scope`]; every span closed inside the
//! scope carries that request id in its `req` field, so a JSONL trace
//! of a multi-tenant run can be regrouped into one causal tree per
//! request (`trace_summary --requests`). Scopes nest and restore the
//! previous id on drop, and [`emit_span`] lets the server synthesize
//! spans for intervals it did not run code in (queue wait).

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Microseconds since the process trace epoch (first use).
#[must_use]
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static CURRENT_REQ: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Small dense id of the calling thread (assigned on first trace use).
#[must_use]
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

/// The request id the current thread is processing, if any (set by
/// [`request_scope`]).
#[must_use]
pub fn current_request() -> Option<Arc<str>> {
    CURRENT_REQ.with(|r| r.borrow().clone())
}

/// RAII guard marking this thread as processing request `id`; spans
/// closed while the guard lives carry the id. Restores the previous
/// request id (scopes nest) on drop — including during unwinding, so a
/// worker death cannot leak one request's id onto the next.
#[derive(Debug)]
pub struct RequestScope {
    prev: Option<Arc<str>>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQ.with(|r| *r.borrow_mut() = self.prev.take());
    }
}

/// Enter a request scope for `id` until the returned guard drops.
#[must_use]
pub fn request_scope(id: &str) -> RequestScope {
    let prev = CURRENT_REQ.with(|r| r.borrow_mut().replace(Arc::from(id)));
    RequestScope { prev }
}

/// One completed span, as written to / read from a JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dotted span name, e.g. `"mcts.expand"`.
    pub name: String,
    /// Start, µs since the process trace epoch.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Dense thread id.
    pub tid: u64,
    /// Nesting depth at emission (0 = top-level).
    pub depth: u32,
    /// Global emission sequence number (total order across threads).
    pub seq: u64,
    /// Request id the emitting thread was processing ([`request_scope`]),
    /// when any — the key `trace_summary --requests` groups by.
    pub req: Option<String>,
}

impl TraceEvent {
    /// Encode as one compact JSON object (one JSONL line, sans newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![
            ("type", Json::from("span")),
            ("name", Json::from(self.name.as_str())),
            ("ts_us", Json::from(self.ts_us)),
            ("dur_us", Json::from(self.dur_us)),
            ("tid", Json::from(self.tid)),
            ("depth", Json::from(u64::from(self.depth))),
            ("seq", Json::from(self.seq)),
        ];
        if let Some(req) = &self.req {
            fields.push(("req", Json::from(req.as_str())));
        }
        Json::obj(fields).to_string_compact()
    }

    /// Decode one JSONL line.
    ///
    /// # Errors
    /// Returns a message naming the missing or ill-typed field, or the
    /// JSON syntax error.
    pub fn from_json_line(line: &str) -> Result<TraceEvent, String> {
        let v = crate::json::parse(line)?;
        let ty = v.get("type").and_then(Json::as_str).ok_or("missing field: type")?;
        if ty != "span" {
            return Err(format!("unknown event type: {ty}"));
        }
        let field_u64 = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field: {name}"))
        };
        let req = match v.get("req") {
            None => None,
            Some(j) => {
                Some(j.as_str().ok_or("field req must be a string")?.to_owned())
            }
        };
        Ok(TraceEvent {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing field: name")?
                .to_owned(),
            ts_us: field_u64("ts_us")?,
            dur_us: field_u64("dur_us")?,
            tid: field_u64("tid")?,
            depth: u32::try_from(field_u64("depth")?).map_err(|_| "depth out of range")?,
            seq: field_u64("seq")?,
            req,
        })
    }
}

/// One named counter value, as written to / read from a JSONL trace.
/// A final registry snapshot is appended to the trace by
/// [`crate::sink::dump_counters`], so the file is a self-contained run
/// record (spans *and* the headline counters, e.g. the
/// `search.predict_cache.{hit,miss}` cache hit rate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEvent {
    /// Dotted counter name, e.g. `"search.predict_cache.hit"`.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

impl CounterEvent {
    /// Encode as one compact JSON object (one JSONL line, sans newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        Json::obj(vec![
            ("type", Json::from("counter")),
            ("name", Json::from(self.name.as_str())),
            ("value", Json::from(self.value)),
        ])
        .to_string_compact()
    }

    /// Decode one JSONL line.
    ///
    /// # Errors
    /// Returns a message naming the missing or ill-typed field, or the
    /// JSON syntax error.
    pub fn from_json_line(line: &str) -> Result<CounterEvent, String> {
        let v = crate::json::parse(line)?;
        let ty = v.get("type").and_then(Json::as_str).ok_or("missing field: type")?;
        if ty != "counter" {
            return Err(format!("unknown event type: {ty}"));
        }
        Ok(CounterEvent {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing field: name")?
                .to_owned(),
            value: v
                .get("value")
                .and_then(Json::as_u64)
                .ok_or("missing or non-integer field: value")?,
        })
    }
}

/// Any one line of a JSONL trace: a completed span or a counter
/// snapshot entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceLine {
    /// A completed span.
    Span(TraceEvent),
    /// A counter snapshot entry.
    Counter(CounterEvent),
}

impl TraceLine {
    /// Decode one JSONL line, dispatching on its `type` field.
    ///
    /// # Errors
    /// Returns a message naming the unknown type or the field error.
    pub fn from_json_line(line: &str) -> Result<TraceLine, String> {
        let v = crate::json::parse(line)?;
        match v.get("type").and_then(Json::as_str) {
            Some("span") => TraceEvent::from_json_line(line).map(TraceLine::Span),
            Some("counter") => CounterEvent::from_json_line(line).map(TraceLine::Counter),
            Some(ty) => Err(format!("unknown event type: {ty}")),
            None => Err("missing field: type".to_owned()),
        }
    }
}

/// RAII guard for one span; created by [`crate::span!`]. Inert (no
/// clock read, no allocation) when tracing is off.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start_us: u64,
    depth: u32,
    active: bool,
}

impl SpanGuard {
    /// Open a span named `name`. Prefer the [`crate::span!`] macro.
    #[must_use]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::sink::tracing_active() {
            return SpanGuard { name, start_us: 0, depth: 0, active: false };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        SpanGuard { name, start_us: now_us(), depth, active: true }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end = now_us();
        let event = TraceEvent {
            name: self.name.to_owned(),
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            tid: thread_id(),
            depth: self.depth,
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            req: current_request().map(|r| r.to_string()),
        };
        crate::sink::record(&event);
    }
}

/// Emit one synthetic span with explicit timing — for intervals the
/// caller measured but did not execute inside (e.g. queue wait between
/// admission and worker pickup). No-op when tracing is inactive.
pub fn emit_span(name: &str, ts_us: u64, dur_us: u64, req: Option<&str>) {
    if !crate::sink::tracing_active() {
        return;
    }
    let event = TraceEvent {
        name: name.to_owned(),
        ts_us,
        dur_us,
        tid: thread_id(),
        depth: DEPTH.with(Cell::get),
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        req: req.map(str::to_owned).or_else(|| current_request().map(|r| r.to_string())),
    };
    crate::sink::record(&event);
}

/// Open a named span until the end of the enclosing scope:
/// `let _span = span!("mcts.search");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trips_through_jsonl() {
        let e = TraceEvent {
            name: "mcts.expand".to_owned(),
            ts_us: 123,
            dur_us: 45,
            tid: 2,
            depth: 3,
            seq: 99,
            req: None,
        };
        let line = e.to_json_line();
        assert!(!line.contains("req"), "absent request id stays absent: {line}");
        assert_eq!(TraceEvent::from_json_line(&line).unwrap(), e);
        let tagged = TraceEvent { req: Some("r-1".to_owned()), ..e };
        let line = tagged.to_json_line();
        assert_eq!(TraceEvent::from_json_line(&line).unwrap(), tagged);
    }

    #[test]
    fn non_string_req_field_is_rejected() {
        let bad = "{\"type\":\"span\",\"name\":\"a\",\"ts_us\":0,\"dur_us\":0,\"tid\":0,\"depth\":0,\"seq\":0,\"req\":7}";
        assert!(TraceEvent::from_json_line(bad).unwrap_err().contains("req"));
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request(), None);
        {
            let _outer = request_scope("r-outer");
            assert_eq!(current_request().as_deref(), Some("r-outer"));
            {
                let _inner = request_scope("r-inner");
                assert_eq!(current_request().as_deref(), Some("r-inner"));
            }
            assert_eq!(current_request().as_deref(), Some("r-outer"));
        }
        assert_eq!(current_request(), None);
    }

    #[test]
    fn counter_event_round_trips_through_jsonl() {
        let c = CounterEvent { name: "search.predict_cache.hit".to_owned(), value: 585 };
        let line = c.to_json_line();
        assert_eq!(CounterEvent::from_json_line(&line).unwrap(), c);
        // The typed dispatch sees the same thing.
        assert_eq!(TraceLine::from_json_line(&line).unwrap(), TraceLine::Counter(c));
    }

    #[test]
    fn trace_line_dispatches_on_type() {
        let span = TraceEvent {
            name: "mcts.expand".to_owned(),
            ts_us: 1,
            dur_us: 2,
            tid: 0,
            depth: 0,
            seq: 3,
            req: None,
        };
        assert_eq!(
            TraceLine::from_json_line(&span.to_json_line()).unwrap(),
            TraceLine::Span(span)
        );
        assert!(TraceLine::from_json_line("{\"type\":\"banana\"}").is_err());
        assert!(TraceLine::from_json_line("{}").is_err());
        assert!(TraceLine::from_json_line("{\"type\":\"counter\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert!(TraceEvent::from_json_line("{}").is_err());
        assert!(TraceEvent::from_json_line("{\"type\":\"span\"}").is_err());
        assert!(TraceEvent::from_json_line("not json").is_err());
        let wrong_type = "{\"type\":\"x\",\"name\":\"a\",\"ts_us\":0,\"dur_us\":0,\"tid\":0,\"depth\":0,\"seq\":0}";
        assert!(TraceEvent::from_json_line(wrong_type).is_err());
        let bad_field = "{\"type\":\"span\",\"name\":\"a\",\"ts_us\":\"zero\",\"dur_us\":0,\"tid\":0,\"depth\":0,\"seq\":0}";
        assert!(TraceEvent::from_json_line(bad_field).is_err());
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
