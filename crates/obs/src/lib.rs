//! Telemetry for the MapZero compile pipeline.
//!
//! Three cooperating layers, all dependency-free and near-zero cost
//! when disabled (see DESIGN.md §7):
//!
//! 1. [`metrics`] — a lock-free registry of named atomic counters,
//!    gauges and fixed-bucket histograms ([`counter!`], [`gauge!`],
//!    [`observe!`]). Counters are always live: a relaxed `fetch_add`
//!    costs nanoseconds next to a network forward pass.
//! 2. [`trace`] / [`sink`] — `span!("mcts.expand")` scopes that emit
//!    JSONL events to an installed [`sink::TelemetrySink`]
//!    (file-backed via `MAPZERO_TRACE`, in-memory for tests).
//! 3. [`phase`] — per-phase budget attribution: [`phase::phase_guard`]
//!    charges elapsed wall-clock to the innermost active
//!    [`Phase`], and [`RunCapture`] turns the global deltas into the
//!    [`RunTelemetry`] carried by `MapReport::telemetry`.
//!
//! Phase timing and run capture are gated on the global [`enabled`]
//! flag; span tracing additionally requires an installed sink.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! mapzero_obs::set_enabled(true);
//! let sink = Arc::new(mapzero_obs::sink::MemorySink::new());
//! mapzero_obs::sink::install_sink(sink.clone());
//!
//! let capture = mapzero_obs::RunCapture::begin().expect("enabled");
//! {
//!     let _span = mapzero_obs::span!("demo.work");
//!     let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Route);
//!     mapzero_obs::counter!("demo.items", 3);
//! }
//! let run = capture.finish();
//! assert_eq!(run.counter("demo.items"), 3);
//! mapzero_obs::sink::uninstall_sink();
//! assert_eq!(sink.take().len(), 1);
//! ```

pub mod flight;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod quantile;
pub mod sink;
pub mod summary;
pub mod trace;

pub use flight::FlightRecorder;
pub use phase::{Phase, PhaseLedger, RunCapture, RunTelemetry, PHASES};
pub use quantile::QuantileSketch;
pub use trace::{CounterEvent, TraceEvent, TraceLine};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry (phase timing + run capture) is on. One relaxed
/// load — the fast path of every timing-based instrument.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Environment-driven initialization: when `MAPZERO_TRACE` names a
/// file, enable telemetry and install a JSONL file sink writing there;
/// when `MAPZERO_TELEMETRY` is set (to anything but `0`), enable
/// telemetry without a sink. Returns the trace path when a sink was
/// installed.
pub fn init_from_env() -> Option<String> {
    if let Ok(path) = std::env::var("MAPZERO_TRACE") {
        if !path.is_empty() {
            match sink::JsonlFileSink::create(&path) {
                Ok(file_sink) => {
                    sink::install_sink(std::sync::Arc::new(file_sink));
                    return Some(path);
                }
                Err(e) => eprintln!("MAPZERO_TRACE: cannot create {path}: {e}"),
            }
        }
    }
    match std::env::var("MAPZERO_TELEMETRY") {
        Ok(v) if v != "0" => set_enabled(true),
        _ => {}
    }
    None
}

/// Serializes tests that flip process-global telemetry state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
