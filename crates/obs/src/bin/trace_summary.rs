//! Fold a JSONL trace (`MAPZERO_TRACE` output) into a per-span-name
//! time table for quick diffing between runs.
//!
//! ```text
//! trace_summary out.jsonl            # aggregate table
//! trace_summary --check out.jsonl    # schema validation only (CI gate)
//! ```
//!
//! Exit status is non-zero when the file is missing or any line fails
//! schema validation.

use mapzero_obs::summary::format_duration;
use mapzero_obs::trace::TraceLine;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Default)]
struct SpanStats {
    count: u64,
    total_us: u64,
    max_us: u64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (check_only, path) = match args.as_slice() {
        [flag, path] if flag == "--check" => (true, path.clone()),
        [path] => (false, path.clone()),
        _ => {
            eprintln!("usage: trace_summary [--check] <trace.jsonl>");
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_summary: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut stats: BTreeMap<String, SpanStats> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut events = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = match TraceLine::from_json_line(line) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("trace_summary: {path}:{}: {msg}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        events += 1;
        match event {
            TraceLine::Span(span) => {
                let entry = stats.entry(span.name).or_default();
                entry.count += 1;
                entry.total_us += span.dur_us;
                entry.max_us = entry.max_us.max(span.dur_us);
            }
            // Later snapshots win: counters are monotone, so the last
            // dump is the run's final value.
            TraceLine::Counter(c) => {
                counters.insert(c.name, c.value);
            }
        }
    }

    if check_only {
        println!("{path}: {events} events, schema OK");
        return ExitCode::SUCCESS;
    }

    let mut rows: Vec<(String, SpanStats)> = stats.into_iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_us));
    println!("{:<28} {:>8} {:>12} {:>12} {:>12}", "span", "count", "total", "mean", "max");
    for (name, s) in &rows {
        let mean_us = s.total_us.checked_div(s.count).unwrap_or(0);
        println!(
            "{name:<28} {:>8} {:>12} {:>12} {:>12}",
            s.count,
            format_duration(Duration::from_micros(s.total_us)),
            format_duration(Duration::from_micros(mean_us)),
            format_duration(Duration::from_micros(s.max_us)),
        );
    }
    if !counters.is_empty() {
        println!("\n{:<40} {:>12}", "counter", "value");
        for (name, value) in &counters {
            println!("{name:<40} {value:>12}");
        }
    }
    println!("{events} events total");
    ExitCode::SUCCESS
}
