//! Fold a JSONL trace (`MAPZERO_TRACE` output) into a per-span-name
//! time table for quick diffing between runs, or group spans by their
//! request id into per-request trees (the serve plane's view).
//!
//! ```text
//! trace_summary out.jsonl             # aggregate table
//! trace_summary --requests out.jsonl  # one tree per request id
//! trace_summary --check out.jsonl     # schema validation only (CI gate)
//! ```
//!
//! Exit status is non-zero when the file is missing or any line fails
//! schema validation.

use mapzero_obs::summary::format_duration;
use mapzero_obs::trace::{TraceEvent, TraceLine};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Default)]
struct SpanStats {
    count: u64,
    total_us: u64,
    max_us: u64,
}

enum Mode {
    Aggregate,
    Requests,
    Check,
}

/// Render one request's spans as an indented tree. Spans are emitted
/// at scope *exit*, so sorting by start time (shallower first on ties,
/// then emit order) reconstructs entry order: parents precede the
/// children they enclose.
fn render_request_tree(spans: &mut [TraceEvent]) -> String {
    spans.sort_by(|a, b| {
        a.ts_us.cmp(&b.ts_us).then(a.depth.cmp(&b.depth)).then(a.seq.cmp(&b.seq))
    });
    let base_depth = spans.iter().map(|s| s.depth).min().unwrap_or(0);
    let mut out = String::new();
    for span in spans.iter() {
        let indent = "  ".repeat((span.depth.saturating_sub(base_depth)) as usize);
        out.push_str(&format!(
            "  {indent}{} {}\n",
            span.name,
            format_duration(Duration::from_micros(span.dur_us)),
        ));
    }
    out
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [flag, path] if flag == "--check" => (Mode::Check, path.clone()),
        [flag, path] if flag == "--requests" => (Mode::Requests, path.clone()),
        [path] if !path.starts_with('-') => (Mode::Aggregate, path.clone()),
        _ => {
            eprintln!("usage: trace_summary [--check | --requests] <trace.jsonl>");
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_summary: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut stats: BTreeMap<String, SpanStats> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_request: BTreeMap<String, Vec<TraceEvent>> = BTreeMap::new();
    let mut unscoped = 0u64;
    let mut events = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = match TraceLine::from_json_line(line) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("trace_summary: {path}:{}: {msg}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        events += 1;
        match event {
            TraceLine::Span(span) => {
                let entry = stats.entry(span.name.clone()).or_default();
                entry.count += 1;
                entry.total_us += span.dur_us;
                entry.max_us = entry.max_us.max(span.dur_us);
                match &span.req {
                    Some(req) => by_request.entry(req.clone()).or_default().push(span),
                    None => unscoped += 1,
                }
            }
            // Later snapshots win: counters are monotone, so the last
            // dump is the run's final value.
            TraceLine::Counter(c) => {
                counters.insert(c.name, c.value);
            }
        }
    }

    match mode {
        Mode::Check => {
            println!(
                "{path}: {events} events, {} request ids, schema OK",
                by_request.len()
            );
            ExitCode::SUCCESS
        }
        Mode::Requests => {
            for (req, spans) in &mut by_request {
                let total_us: u64 = spans
                    .iter()
                    .filter(|s| s.depth == spans.iter().map(|t| t.depth).min().unwrap_or(0))
                    .map(|s| s.dur_us)
                    .sum();
                println!(
                    "request {req}: {} spans, {}",
                    spans.len(),
                    format_duration(Duration::from_micros(total_us)),
                );
                print!("{}", render_request_tree(spans));
            }
            if unscoped > 0 {
                println!("({unscoped} spans carry no request id)");
            }
            println!("{} requests, {events} events total", by_request.len());
            ExitCode::SUCCESS
        }
        Mode::Aggregate => {
            let mut rows: Vec<(String, SpanStats)> = stats.into_iter().collect();
            rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_us));
            println!(
                "{:<28} {:>8} {:>12} {:>12} {:>12}",
                "span", "count", "total", "mean", "max"
            );
            for (name, s) in &rows {
                let mean_us = s.total_us.checked_div(s.count).unwrap_or(0);
                println!(
                    "{name:<28} {:>8} {:>12} {:>12} {:>12}",
                    s.count,
                    format_duration(Duration::from_micros(s.total_us)),
                    format_duration(Duration::from_micros(mean_us)),
                    format_duration(Duration::from_micros(s.max_us)),
                );
            }
            if !counters.is_empty() {
                println!("\n{:<40} {:>12}", "counter", "value");
                for (name, value) in &counters {
                    println!("{name:<40} {value:>12}");
                }
            }
            println!("{events} events total");
            ExitCode::SUCCESS
        }
    }
}
