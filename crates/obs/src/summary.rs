//! Human-readable end-of-run summaries, the `/metrics`-style text
//! exposition, and the `mapzero_top` status renderer.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::phase::{RunTelemetry, PHASES};
use std::fmt::Write as _;
use std::time::Duration;

fn pct(part: Duration, whole: Duration) -> f64 {
    if whole.is_zero() {
        0.0
    } else {
        100.0 * part.as_secs_f64() / whole.as_secs_f64()
    }
}

/// Render one run's telemetry as an aligned per-phase table:
/// phase self-time, share of `elapsed`, and the headline counters.
#[must_use]
pub fn render_run(telemetry: &RunTelemetry, elapsed: Duration) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:>12} {:>7}", "phase", "self-time", "share");
    let mut attributed = Duration::ZERO;
    for phase in PHASES {
        let t = telemetry.phases.get(phase);
        attributed += t;
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>6.1}%",
            phase.name(),
            format_duration(t),
            pct(t, elapsed)
        );
    }
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>6.1}%",
        "(other)",
        format_duration(elapsed.saturating_sub(attributed)),
        pct(elapsed.saturating_sub(attributed), elapsed)
    );
    let _ = writeln!(out, "{:<10} {:>12}", "total", format_duration(elapsed));
    if !telemetry.counters.is_empty() {
        let _ = writeln!(out);
        for (name, value) in &telemetry.counters {
            let _ = writeln!(out, "{name:<24} {value:>12}");
        }
    }
    for (name, &(count, sum)) in &telemetry.histograms {
        let mean = if count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                sum as f64 / count as f64
            }
        };
        let _ = writeln!(out, "{name:<24} {count:>12} obs, mean {mean:.1}");
    }
    out
}

/// Render a full registry snapshot as an aligned name/value table.
#[must_use]
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "{name:<28} {value:>12}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "{name:<28} {value:>12}  (gauge)");
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{name:<28} {:>12} obs, sum {}, mean {:.1}",
            h.count,
            h.sum,
            h.mean()
        );
    }
    out
}

/// Mangle one metric name for text exposition: `[a-zA-Z0-9_:]` pass
/// through, everything else (dots in our names) becomes `_`.
fn expo_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Split a flattened `name{label}` snapshot key into its parts.
fn split_labeled(key: &str) -> (&str, Option<&str>) {
    match key.strip_suffix('}').and_then(|k| k.split_once('{')) {
        Some((name, label)) => (name, Some(label)),
        None => (key, None),
    }
}

fn expo_key(key: &str) -> String {
    match split_labeled(key) {
        (name, Some(label)) => format!("{}{{label=\"{label}\"}}", expo_name(name)),
        (name, None) => expo_name(name),
    }
}

/// Render a registry snapshot as a Prometheus-style text exposition:
/// one `name value` line per counter/gauge sample, `_count`/`_sum`
/// lines per histogram, and `{quantile="..."}` samples per sketch.
/// Labeled family members carry a `label="..."` dimension. This is the
/// payload of the serve admin endpoint's `metrics` command.
#[must_use]
pub fn render_exposition(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (key, value) in &snapshot.counters {
        let _ = writeln!(out, "{} {value}", expo_key(key));
    }
    for (key, value) in &snapshot.gauges {
        let _ = writeln!(out, "{} {value}", expo_key(key));
    }
    for (key, h) in &snapshot.histograms {
        let (name, label) = split_labeled(key);
        let name = expo_name(name);
        let suffix = label.map_or(String::new(), |l| format!("{{label=\"{l}\"}}"));
        let _ = writeln!(out, "{name}_count{suffix} {}", h.count);
        let _ = writeln!(out, "{name}_sum{suffix} {}", h.sum);
    }
    for (key, sketch) in &snapshot.sketches {
        let (name, label) = split_labeled(key);
        let name = expo_name(name);
        let extra = label.map_or(String::new(), |l| format!(",label=\"{l}\""));
        for (q, v) in
            [("0.5", sketch.p50()), ("0.9", sketch.quantile(0.9)), ("0.99", sketch.p99())]
        {
            let _ = writeln!(out, "{name}{{quantile=\"{q}\"{extra}}} {v}");
        }
        let suffix = label.map_or(String::new(), |l| format!("{{label=\"{l}\"}}"));
        let _ = writeln!(out, "{name}_count{suffix} {}", sketch.count());
        let _ = writeln!(out, "{name}_sum{suffix} {}", sketch.sum());
    }
    out
}

fn field_u64(json: &Json, name: &str) -> u64 {
    json.get(name).and_then(Json::as_u64).unwrap_or(0)
}

/// Render the serve `/status` JSON (see `mapzero-serve::admin`) as the
/// `mapzero_top`-style one-shot console view: service headline plus a
/// per-tenant table with queue occupancy, outcome counts, and the
/// sliding-window deadline-hit rate.
#[must_use]
pub fn render_status(status: &Json) -> String {
    let mut out = String::new();
    let uptime = Duration::from_micros(field_u64(status, "uptime_us"));
    let _ = write!(out, "uptime {:<10}", format_duration(uptime));
    // Only surface the lifecycle state when it is unusual.
    if let Some(state) = status.get("state").and_then(Json::as_str) {
        if state != "running" {
            let _ = write!(out, " [{state}]");
        }
    }
    let _ = write!(out, " queue {:<5}", field_u64(status, "queue_depth"));
    if let Some(workers) = status.get("workers") {
        let _ = write!(
            out,
            " workers {} (deaths {}, respawns {})",
            field_u64(workers, "configured"),
            field_u64(workers, "deaths"),
            field_u64(workers, "respawns"),
        );
    }
    let _ = writeln!(out);
    if let Some(stats) = status.get("stats") {
        let _ = writeln!(
            out,
            "admitted {}  responses {}  shed {}  retries {}  anomalies {}",
            field_u64(stats, "admitted"),
            field_u64(stats, "responses"),
            field_u64(stats, "shed"),
            field_u64(stats, "retries"),
            field_u64(stats, "anomalies"),
        );
    }
    if let Some(cache) = status.get("cache") {
        let hit = field_u64(cache, "predict_hit");
        let miss = field_u64(cache, "predict_miss");
        let total = hit + miss;
        if total > 0 {
            #[allow(clippy::cast_precision_loss)]
            let rate = 100.0 * hit as f64 / total as f64;
            let _ = writeln!(out, "predict cache {hit}/{total} hits ({rate:.1}%)");
        }
    }
    if let Some(flight) = status.get("flight") {
        let _ = writeln!(
            out,
            "flight recorder {} recorded, last {} retained",
            field_u64(flight, "recorded"),
            field_u64(flight, "capacity").min(field_u64(flight, "recorded")),
        );
    }
    if let Some(journal) = status.get("journal") {
        if journal.get("generation").is_some() {
            let _ = writeln!(
                out,
                "journal gen {} — {} appended, {} terminal, {} replayed",
                field_u64(journal, "generation"),
                field_u64(journal, "appended"),
                field_u64(journal, "terminal"),
                field_u64(journal, "replayed"),
            );
        }
    }
    if let Some(Json::Obj(breakers)) = status.get("breakers") {
        for (tenant, b) in breakers {
            let state = b.get("state").and_then(Json::as_str).unwrap_or("?");
            if state != "closed" {
                let _ = writeln!(
                    out,
                    "breaker {tenant}: {state} ({} trips)",
                    field_u64(b, "trips"),
                );
            }
        }
    }
    if let Some(Json::Obj(tenants)) = status.get("tenants") {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>8} {:>8} {:>5} {:>6} {:>6} {:>7} {:>6} {:>8} {:>7}",
            "tenant", "queued", "inflight", "admitted", "shed", "mapped", "failed",
            "timeout", "deadl", "internal", "slo"
        );
        for (name, t) in tenants {
            let slo = t
                .get("deadline_hit_rate")
                .and_then(Json::as_f64)
                .map_or("   n/a".to_owned(), |r| format!("{:.1}%", 100.0 * r));
            let _ = writeln!(
                out,
                "{name:<16} {:>6} {:>8} {:>8} {:>5} {:>6} {:>6} {:>7} {:>6} {:>8} {slo:>7}",
                field_u64(t, "queued"),
                field_u64(t, "inflight"),
                field_u64(t, "admitted"),
                field_u64(t, "shed"),
                field_u64(t, "mapped"),
                field_u64(t, "failed"),
                field_u64(t, "timeout"),
                field_u64(t, "deadline"),
                field_u64(t, "internal"),
            );
        }
    }
    out
}

/// Fixed-width humane duration: µs under 1 ms, ms under 1 s, else s.
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseLedger;

    #[test]
    fn run_table_lists_every_phase_and_other() {
        let t = RunTelemetry {
            phases: PhaseLedger::default(),
            counters: [("mcts.expansions".to_owned(), 42u64)].into_iter().collect(),
            histograms: [("nn.forward_us".to_owned(), (10u64, 1000u64))].into_iter().collect(),
        };
        let table = render_run(&t, Duration::from_millis(5));
        for phase in PHASES {
            assert!(table.contains(phase.name()), "{table}");
        }
        assert!(table.contains("(other)"));
        assert!(table.contains("mcts.expansions"));
        assert!(table.contains("nn.forward_us"));
        assert!(table.contains("mean 100.0"));
    }

    #[test]
    fn exposition_renders_every_instrument_kind() {
        let r = crate::metrics::Registry::default();
        r.counter("expo.count").add(5);
        r.gauge("expo.gauge").set(2);
        r.histogram("expo.hist").record(8);
        r.sketch("expo.lat_us").record(100);
        r.counter_family("expo.outcome").with("acme").add(3);
        let text = render_exposition(&r.snapshot());
        assert!(text.contains("expo_count 5"), "{text}");
        assert!(text.contains("expo_gauge 2"), "{text}");
        assert!(text.contains("expo_hist_count 1"), "{text}");
        assert!(text.contains("expo_hist_sum 8"), "{text}");
        assert!(text.contains("expo_lat_us{quantile=\"0.5\"} 100"), "{text}");
        assert!(text.contains("expo_outcome{label=\"acme\"} 3"), "{text}");
        // One sample per line, no raw dots in sample names (labels may
        // contain them, e.g. quantile="0.5").
        for line in text.lines() {
            assert_eq!(line.split_whitespace().count(), 2, "{line}");
            let key = line.split_whitespace().next().unwrap();
            let bare = key.split('{').next().unwrap();
            assert!(!bare.contains('.'), "{line}");
        }
    }

    #[test]
    fn status_renderer_tabulates_tenants() {
        let status = crate::json::parse(
            r#"{"uptime_us":1500000,"queue_depth":2,
                "workers":{"configured":2,"deaths":1,"respawns":1},
                "stats":{"admitted":9,"responses":8,"shed":1,"retries":0,"anomalies":1},
                "tenants":{"acme":{"queued":1,"inflight":1,"admitted":5,"shed":1,
                    "mapped":3,"failed":0,"timeout":0,"deadline":0,"internal":0,
                    "deadline_hit_rate":0.75}}}"#,
        )
        .unwrap();
        let text = render_status(&status);
        assert!(text.contains("uptime 1.50s"), "{text}");
        assert!(text.contains("workers 2 (deaths 1, respawns 1)"), "{text}");
        assert!(text.contains("acme"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
        assert!(text.contains("anomalies 1"), "{text}");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_micros(7)), "7µs");
        assert_eq!(format_duration(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(format_duration(Duration::from_millis(1500)), "1.50s");
    }
}
