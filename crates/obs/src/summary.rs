//! Human-readable end-of-run summaries.

use crate::metrics::MetricsSnapshot;
use crate::phase::{RunTelemetry, PHASES};
use std::fmt::Write as _;
use std::time::Duration;

fn pct(part: Duration, whole: Duration) -> f64 {
    if whole.is_zero() {
        0.0
    } else {
        100.0 * part.as_secs_f64() / whole.as_secs_f64()
    }
}

/// Render one run's telemetry as an aligned per-phase table:
/// phase self-time, share of `elapsed`, and the headline counters.
#[must_use]
pub fn render_run(telemetry: &RunTelemetry, elapsed: Duration) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:>12} {:>7}", "phase", "self-time", "share");
    let mut attributed = Duration::ZERO;
    for phase in PHASES {
        let t = telemetry.phases.get(phase);
        attributed += t;
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>6.1}%",
            phase.name(),
            format_duration(t),
            pct(t, elapsed)
        );
    }
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>6.1}%",
        "(other)",
        format_duration(elapsed.saturating_sub(attributed)),
        pct(elapsed.saturating_sub(attributed), elapsed)
    );
    let _ = writeln!(out, "{:<10} {:>12}", "total", format_duration(elapsed));
    if !telemetry.counters.is_empty() {
        let _ = writeln!(out);
        for (name, value) in &telemetry.counters {
            let _ = writeln!(out, "{name:<24} {value:>12}");
        }
    }
    for (name, &(count, sum)) in &telemetry.histograms {
        let mean = if count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                sum as f64 / count as f64
            }
        };
        let _ = writeln!(out, "{name:<24} {count:>12} obs, mean {mean:.1}");
    }
    out
}

/// Render a full registry snapshot as an aligned name/value table.
#[must_use]
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "{name:<28} {value:>12}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "{name:<28} {value:>12}  (gauge)");
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{name:<28} {:>12} obs, sum {}, mean {:.1}",
            h.count,
            h.sum,
            h.mean()
        );
    }
    out
}

/// Fixed-width humane duration: µs under 1 ms, ms under 1 s, else s.
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseLedger;

    #[test]
    fn run_table_lists_every_phase_and_other() {
        let t = RunTelemetry {
            phases: PhaseLedger::default(),
            counters: [("mcts.expansions".to_owned(), 42u64)].into_iter().collect(),
            histograms: [("nn.forward_us".to_owned(), (10u64, 1000u64))].into_iter().collect(),
        };
        let table = render_run(&t, Duration::from_millis(5));
        for phase in PHASES {
            assert!(table.contains(phase.name()), "{table}");
        }
        assert!(table.contains("(other)"));
        assert!(table.contains("mcts.expansions"));
        assert!(table.contains("nn.forward_us"));
        assert!(table.contains("mean 100.0"));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_micros(7)), "7µs");
        assert_eq!(format_duration(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(format_duration(Duration::from_millis(1500)), "1.50s");
    }
}
