//! Trace sinks: where span events go.
//!
//! A process has at most one installed [`TelemetrySink`]. The hot-path
//! check ([`tracing_active`]) is a single relaxed atomic load; the sink
//! pointer itself sits behind an `RwLock` that is only read when a span
//! actually completes.

use crate::trace::{CounterEvent, TraceEvent};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Receives completed span events.
pub trait TelemetrySink: Send + Sync {
    /// Handle one completed span.
    fn record(&self, event: &TraceEvent);
    /// Handle one counter snapshot entry (see [`dump_counters`]).
    /// Sinks that only care about spans can ignore these.
    fn record_counter(&self, _event: &CounterEvent) {}
    /// Flush buffered output (called at end of run / on uninstall).
    fn flush(&self) {}
}

/// Appends one JSON object per line to a file (the `MAPZERO_TRACE`
/// format consumed by `trace_summary`).
#[derive(Debug)]
pub struct JsonlFileSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlFileSink {
    /// Create or truncate the trace file at `path`.
    ///
    /// # Errors
    /// Propagates the I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlFileSink> {
        Ok(JsonlFileSink { writer: Mutex::new(BufWriter::new(File::create(path)?)) })
    }
}

impl TelemetrySink for JsonlFileSink {
    fn record(&self, event: &TraceEvent) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = writeln!(w, "{}", event.to_json_line());
        }
    }

    fn record_counter(&self, event: &CounterEvent) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = writeln!(w, "{}", event.to_json_line());
        }
    }

    fn flush(&self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Collects events in memory — for tests and in-process inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// New empty sink.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copy of every event recorded so far.
    ///
    /// # Panics
    /// Panics if the event mutex was poisoned.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Drain and return every recorded event.
    ///
    /// # Panics
    /// Panics if the event mutex was poisoned.
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("sink poisoned"))
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        if let Ok(mut e) = self.events.lock() {
            e.push(event.clone());
        }
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn TelemetrySink>>> = RwLock::new(None);

/// True when a sink is installed — the one-load fast path consulted
/// before any span bookkeeping happens.
#[must_use]
pub fn tracing_active() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Install `sink` as the process trace destination (replacing any
/// previous sink, which is flushed first) and enable telemetry.
pub fn install_sink(sink: Arc<dyn TelemetrySink>) {
    if let Ok(mut slot) = SINK.write() {
        if let Some(old) = slot.take() {
            old.flush();
        }
        *slot = Some(sink);
    }
    TRACING.store(true, Ordering::Relaxed);
    crate::set_enabled(true);
}

/// Flush and remove the installed sink; span tracing turns off (the
/// metrics/phase side of telemetry keeps its separate enable flag).
pub fn uninstall_sink() {
    TRACING.store(false, Ordering::Relaxed);
    if let Ok(mut slot) = SINK.write() {
        if let Some(old) = slot.take() {
            old.flush();
        }
    }
}

/// Append the current registry counter values to the installed sink as
/// `counter` trace lines (no-op when no sink is installed). Called at
/// end of run — e.g. by `traced_mapping` — so the trace file carries
/// the headline counters (cache hit rates, expansions, …) and
/// `trace_summary` can render them next to the span table.
pub fn dump_counters() {
    if let Ok(slot) = SINK.read() {
        if let Some(sink) = slot.as_ref() {
            let snapshot = crate::metrics::registry().snapshot();
            for (name, value) in snapshot.counters {
                sink.record_counter(&CounterEvent { name, value });
            }
        }
    }
}

/// Flush the installed sink, if any.
pub fn flush() {
    if let Ok(slot) = SINK.read() {
        if let Some(sink) = slot.as_ref() {
            sink.flush();
        }
    }
}

/// Deliver one event to the installed sink (no-op when none).
pub(crate) fn record(event: &TraceEvent) {
    if let Ok(slot) = SINK.read() {
        if let Some(sink) = slot.as_ref() {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn memory_sink_collects_spans() {
        let _serial = test_lock();
        let sink = Arc::new(MemorySink::new());
        install_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        uninstall_sink();
        let events = sink.take();
        assert_eq!(events.len(), 2);
        // Inner drops first; depths reflect nesting.
        assert_eq!(events[0].name, "test.inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "test.outer");
        assert_eq!(events[1].depth, 0);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn no_sink_means_inert_spans() {
        let _serial = test_lock();
        uninstall_sink();
        assert!(!tracing_active());
        let _span = crate::span!("test.void"); // must not panic or block
    }

    #[test]
    fn dump_counters_writes_parseable_counter_lines() {
        let _serial = test_lock();
        let path = std::env::temp_dir().join("mapzero_obs_counter_dump_test.jsonl");
        let sink = Arc::new(JsonlFileSink::create(&path).unwrap());
        install_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        crate::metrics::registry().counter("test.dump.counter").add(7);
        dump_counters();
        uninstall_sink(); // flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let mut found = false;
        for line in text.lines() {
            // Every line parses; the registry is global, so other
            // counters may legitimately be present too.
            match crate::trace::TraceLine::from_json_line(line).unwrap() {
                crate::trace::TraceLine::Counter(c) if c.name == "test.dump.counter" => {
                    assert!(c.value >= 7);
                    found = true;
                }
                _ => {}
            }
        }
        assert!(found, "dumped counter missing from trace");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_file_sink_writes_parseable_lines() {
        let _serial = test_lock();
        let path = std::env::temp_dir().join("mapzero_obs_sink_test.jsonl");
        let sink = Arc::new(JsonlFileSink::create(&path).unwrap());
        install_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        {
            let _span = crate::span!("test.file");
        }
        uninstall_sink(); // flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let event = TraceEvent::from_json_line(lines[0]).unwrap();
        assert_eq!(event.name, "test.file");
        let _ = std::fs::remove_file(&path);
    }
}
