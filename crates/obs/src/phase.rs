//! Per-phase budget attribution.
//!
//! The compile pipeline spends its supervision `Budget` across five
//! phases: graph embedding, policy/value inference, MCTS
//! expansion, routing, and backprop (training). A thread-local phase
//! stack charges elapsed wall-clock to the *innermost* active phase
//! (self-time, not inclusive time), so the per-phase durations of one
//! thread partition its time and their sum can never exceed total
//! elapsed — the invariant `MapReport::telemetry` relies on.

use crate::enabled;
use crate::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A pipeline phase charged against the compile budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// DFG / fabric graph embedding (observation construction).
    Embed,
    /// Policy/value network forward passes.
    Infer,
    /// MCTS node expansion and tree search bookkeeping.
    Expand,
    /// Operand routing on the modulo resource graph.
    Route,
    /// Network training (backprop).
    Backprop,
}

/// Every phase, in display order.
pub const PHASES: [Phase; 5] =
    [Phase::Embed, Phase::Infer, Phase::Expand, Phase::Route, Phase::Backprop];

impl Phase {
    /// Stable lower-case name used in traces and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Embed => "embed",
            Phase::Infer => "infer",
            Phase::Expand => "expand",
            Phase::Route => "route",
            Phase::Backprop => "backprop",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Embed => 0,
            Phase::Infer => 1,
            Phase::Expand => 2,
            Phase::Route => 3,
            Phase::Backprop => 4,
        }
    }
}

/// Global nanosecond ledger, one slot per phase.
static LEDGER: [AtomicU64; 5] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    static STACK: RefCell<PhaseStack> = const { RefCell::new(PhaseStack { stack: Vec::new(), last: None }) };
}

struct PhaseStack {
    stack: Vec<Phase>,
    /// When the innermost phase last started accruing self-time.
    last: Option<Instant>,
}

impl PhaseStack {
    /// Charge elapsed-since-`last` to the innermost active phase.
    fn charge_top(&mut self, now: Instant) {
        if let (Some(&top), Some(last)) = (self.stack.last(), self.last) {
            let nanos = u64::try_from(now.duration_since(last).as_nanos()).unwrap_or(u64::MAX);
            LEDGER[top.index()].fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

/// RAII guard marking the current thread as inside `phase`; created by
/// [`phase_guard`]. While nested phases are active, time accrues to the
/// innermost one only.
#[derive(Debug)]
pub struct PhaseGuard {
    active: bool,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|cell| {
            let mut s = cell.borrow_mut();
            let now = Instant::now();
            s.charge_top(now);
            s.stack.pop();
            s.last = if s.stack.is_empty() { None } else { Some(now) };
        });
    }
}

/// Enter `phase` on this thread until the returned guard drops.
/// Near-zero cost (one relaxed load, no clock read) when telemetry is
/// disabled.
#[must_use]
pub fn phase_guard(phase: Phase) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard { active: false };
    }
    STACK.with(|cell| {
        let mut s = cell.borrow_mut();
        let now = Instant::now();
        s.charge_top(now);
        s.stack.push(phase);
        s.last = Some(now);
    });
    PhaseGuard { active: true }
}

/// Point-in-time copy of the global per-phase time ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseLedger {
    nanos: [u64; 5],
}

impl PhaseLedger {
    /// Read the current global ledger.
    #[must_use]
    pub fn snapshot() -> PhaseLedger {
        PhaseLedger { nanos: std::array::from_fn(|i| LEDGER[i].load(Ordering::Relaxed)) }
    }

    /// Time attributed to one phase.
    #[must_use]
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase.index()])
    }

    /// Sum over all phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.nanos.iter().map(|&n| Duration::from_nanos(n)).sum()
    }

    /// This ledger minus an earlier snapshot (saturating).
    #[must_use]
    pub fn delta(&self, earlier: &PhaseLedger) -> PhaseLedger {
        PhaseLedger {
            nanos: std::array::from_fn(|i| self.nanos[i].saturating_sub(earlier.nanos[i])),
        }
    }
}

/// Telemetry attached to one compile run (`MapReport::telemetry`):
/// the per-phase budget attribution plus counter/histogram deltas
/// accumulated between run start and end.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTelemetry {
    /// Self-time per phase over the run.
    pub phases: PhaseLedger,
    /// Counter deltas over the run, by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram `(count, sum)` deltas over the run, by metric name.
    pub histograms: BTreeMap<String, (u64, u64)>,
}

impl RunTelemetry {
    /// Counter delta by name (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as a JSON object (the schema of `MapReport::telemetry` in
    /// bench emissions): `{phases: {embed_us, ...}, counters: {...},
    /// histograms: {name: {count, sum}}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let phases = PHASES
            .iter()
            .map(|&p| {
                (
                    format!("{}_us", p.name()),
                    Json::from(u64::try_from(self.phases.get(p).as_micros()).unwrap_or(u64::MAX)),
                )
            })
            .collect::<Vec<_>>();
        let counters =
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, &(count, sum))| {
                (
                    k.clone(),
                    Json::obj(vec![("count", Json::from(count)), ("sum", Json::from(sum))]),
                )
            })
            .collect::<Vec<_>>();
        Json::Obj(vec![
            ("phases".to_owned(), Json::Obj(phases)),
            ("counters".to_owned(), Json::Obj(counters)),
            ("histograms".to_owned(), Json::Obj(histograms)),
        ])
    }
}

/// Captures registry + ledger state at run start so the end-of-run
/// delta can be attributed to that run.
///
/// Attribution is process-global: two compiles running concurrently in
/// one process will see each other's metrics in their deltas. The
/// pipeline compiles one kernel at a time per process, so this is the
/// documented trade-off for keeping the update path lock-free.
#[derive(Debug)]
pub struct RunCapture {
    metrics: crate::metrics::MetricsSnapshot,
    ledger: PhaseLedger,
}

impl RunCapture {
    /// Snapshot current state; call at run start. Returns `None` when
    /// telemetry is disabled, so disabled runs skip both snapshots.
    #[must_use]
    pub fn begin() -> Option<RunCapture> {
        if !enabled() {
            return None;
        }
        Some(RunCapture {
            metrics: crate::metrics::registry().snapshot(),
            ledger: PhaseLedger::snapshot(),
        })
    }

    /// Delta between now and [`RunCapture::begin`].
    #[must_use]
    pub fn finish(self) -> RunTelemetry {
        let metrics = crate::metrics::registry().snapshot().delta(&self.metrics);
        RunTelemetry {
            phases: PhaseLedger::snapshot().delta(&self.ledger),
            counters: metrics.counters,
            histograms: metrics
                .histograms
                .into_iter()
                .map(|(k, v)| (k, (v.count, v.sum)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, test_lock};

    #[test]
    fn nested_phases_partition_time() {
        let _serial = test_lock();
        set_enabled(true);
        let before = PhaseLedger::snapshot();
        let start = Instant::now();
        {
            let _route = phase_guard(Phase::Route);
            std::thread::sleep(Duration::from_millis(4));
            {
                let _infer = phase_guard(Phase::Infer);
                std::thread::sleep(Duration::from_millis(4));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let elapsed = start.elapsed();
        let d = PhaseLedger::snapshot().delta(&before);
        // Self-time: both phases saw real time, and the partition never
        // exceeds wall-clock.
        assert!(d.get(Phase::Route) >= Duration::from_millis(3), "{d:?}");
        assert!(d.get(Phase::Infer) >= Duration::from_millis(3), "{d:?}");
        assert!(d.total() <= elapsed, "{:?} > {elapsed:?}", d.total());
    }

    #[test]
    fn disabled_guard_charges_nothing() {
        let _serial = test_lock();
        set_enabled(false);
        let before = PhaseLedger::snapshot();
        {
            let _g = phase_guard(Phase::Embed);
            std::thread::sleep(Duration::from_millis(2));
        }
        let d = PhaseLedger::snapshot().delta(&before);
        assert_eq!(d.get(Phase::Embed), Duration::ZERO);
        set_enabled(true);
    }

    #[test]
    fn run_capture_attributes_counters() {
        let _serial = test_lock();
        set_enabled(true);
        let capture = RunCapture::begin().expect("enabled");
        crate::counter!("phase.test.count", 3);
        let t = capture.finish();
        assert_eq!(t.counter("phase.test.count"), 3);
        assert_eq!(t.counter("phase.test.absent"), 0);
        // JSON shape round-trips through the parser.
        let text = t.to_json().to_string_compact();
        let back = crate::json::parse(&text).unwrap();
        assert!(back.get("phases").is_some());
        assert_eq!(
            back.get("counters")
                .and_then(|c| c.get("phase.test.count"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
