//! Minimal JSON value, writer and parser.
//!
//! The vendored `serde` is a marker-trait stub (see `vendor/README.md`),
//! so the telemetry layer hand-rolls the small JSON subset it needs:
//! objects, arrays, strings, finite numbers, booleans and null. Numbers
//! are carried as `f64`; every value the pipeline emits (microsecond
//! timestamps, counter deltas) is far below 2^53, where `f64` is exact.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on an object (`None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as an exact non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{n:.0}");
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document.
///
/// # Errors
/// Returns a human-readable message with the byte offset of the first
/// syntax error, or on trailing garbage after the document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::from("mcts.expand")),
            ("ts_us", Json::from(1234u64)),
            ("nested", Json::Arr(vec![Json::Null, Json::Bool(true), Json::from(0.5)])),
            ("text", Json::from("quote \" slash \\ tab \t")),
        ]);
        let text = v.to_string_compact();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42u64).to_string_compact(), "42");
        assert_eq!(Json::from(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let back = parse("\"a\\n\\u0041\\\"\"").unwrap();
        assert_eq!(back, Json::Str("a\nA\"".to_owned()));
    }

    #[test]
    fn get_and_accessors() {
        let v = parse("{\"a\": 3, \"b\": \"x\"}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
