//! Mergeable streaming quantile sketch.
//!
//! The serve plane needs p50/p99 over unbounded request streams without
//! keeping every latency sample. [`QuantileSketch`] is exact while
//! small — up to [`EXACT_CAP`] raw samples — and degrades to a
//! DDSketch-style logarithmic-bucket summary past that, with a
//! *relative* error bound: every reported quantile `v̂` satisfies
//! `|v̂ − v| ≤ RELATIVE_ERROR · v` for the true sample `v` at that rank
//! (zeros are tracked exactly in their own bucket). Sketches merge by
//! bucket addition, so per-worker or per-tier sketches combine into one
//! without re-streaming samples — the property the `serve_load` bench
//! and the label families rely on.

use std::collections::BTreeMap;

/// Raw samples kept before collapsing to buckets. While at or under
/// this count the sketch is exact.
pub const EXACT_CAP: usize = 128;

/// Relative accuracy `α` of bucketed quantiles: bucket `i` covers
/// `(γ^(i−1), γ^i]` with `γ = (1+α)/(1−α)`, and the bucket midpoint
/// estimate is within `α` of any value in the bucket.
pub const RELATIVE_ERROR: f64 = 0.01;

fn gamma() -> f64 {
    (1.0 + RELATIVE_ERROR) / (1.0 - RELATIVE_ERROR)
}

/// Bucket index for a positive value: smallest `i` with `γ^i >= v`.
#[allow(clippy::cast_possible_truncation)]
fn bucket_of(value: u64) -> i64 {
    debug_assert!(value > 0);
    #[allow(clippy::cast_precision_loss)]
    let idx = (value as f64).ln() / gamma().ln();
    idx.ceil() as i64
}

/// Midpoint estimate for bucket `i`: `2γ^i / (γ+1)`, within
/// [`RELATIVE_ERROR`] of every value the bucket covers.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn bucket_value(index: i64) -> u64 {
    let g = gamma();
    #[allow(clippy::cast_precision_loss)]
    let v = 2.0 * g.powi(i32::try_from(index).unwrap_or(i32::MAX)) / (g + 1.0);
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v.round() as u64
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    /// Raw samples, unsorted; sorted on demand.
    Exact(Vec<u64>),
    /// Zero count plus log-bucket counts keyed by bucket index.
    Buckets { zeros: u64, buckets: BTreeMap<i64, u64> },
}

/// A mergeable streaming quantile sketch (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    mode: Mode,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        QuantileSketch {
            mode: Mode::Exact(Vec::new()),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match &mut self.mode {
            Mode::Exact(samples) => {
                samples.push(value);
                if samples.len() > EXACT_CAP {
                    self.collapse();
                }
            }
            Mode::Buckets { zeros, buckets } => {
                if value == 0 {
                    *zeros += 1;
                } else {
                    *buckets.entry(bucket_of(value)).or_insert(0) += 1;
                }
            }
        }
    }

    /// Record a `Duration` in microseconds.
    pub fn record_duration_us(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    fn collapse(&mut self) {
        if let Mode::Exact(samples) = &self.mode {
            let mut zeros = 0;
            let mut buckets: BTreeMap<i64, u64> = BTreeMap::new();
            for &v in samples {
                if v == 0 {
                    zeros += 1;
                } else {
                    *buckets.entry(bucket_of(v)).or_insert(0) += 1;
                }
            }
            self.mode = Mode::Buckets { zeros, buckets };
        }
    }

    /// Fold `other` into `self`. Stays exact only while the combined
    /// sample count fits [`EXACT_CAP`]; otherwise both sides collapse
    /// and bucket counts add (the error bound is unchanged — bucketing
    /// commutes with addition).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut other = other.clone();
        if let (Mode::Exact(mine), Mode::Exact(theirs)) = (&mut self.mode, &mut other.mode) {
            if mine.len() + theirs.len() <= EXACT_CAP {
                mine.append(theirs);
                return;
            }
        }
        self.collapse();
        other.collapse();
        if let (
            Mode::Buckets { zeros, buckets },
            Mode::Buckets { zeros: oz, buckets: ob },
        ) = (&mut self.mode, &other.mode)
        {
            *zeros += oz;
            for (&idx, &n) in ob {
                *buckets.entry(idx).or_insert(0) += n;
            }
        }
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// Whether the sketch still holds raw samples (quantiles exact).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self.mode, Mode::Exact(_))
    }

    /// The `q`-quantile (nearest-rank), `0 <= q <= 1`. Exact in exact
    /// mode; within [`RELATIVE_ERROR`] relative error in bucket mode.
    /// Returns 0 on an empty sketch.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest value with cumulative count >= rank.
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        match &self.mode {
            Mode::Exact(samples) => {
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                sorted[usize::try_from(rank - 1).unwrap_or(0)]
            }
            Mode::Buckets { zeros, buckets } => {
                if rank <= *zeros {
                    return 0;
                }
                let mut cumulative = *zeros;
                for (&idx, &n) in buckets {
                    cumulative += n;
                    if cumulative >= rank {
                        return bucket_value(idx).clamp(self.min, self.max);
                    }
                }
                self.max
            }
        }
    }

    /// p50 shorthand.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p99 shorthand.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_reports_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn small_n_is_exact() {
        let mut s = QuantileSketch::new();
        for v in [9u64, 1, 5, 3, 7] {
            s.record(v);
        }
        assert!(s.is_exact());
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(0.5), 5);
        assert_eq!(s.quantile(1.0), 9);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 9);
        assert_eq!(s.sum(), 25);
    }

    #[test]
    fn large_n_quantiles_stay_within_relative_error() {
        let mut s = QuantileSketch::new();
        let mut samples: Vec<u64> = (1..=10_000u64).map(|i| i * 13 % 9_973 + 1).collect();
        for &v in &samples {
            s.record(v);
        }
        assert!(!s.is_exact());
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let truth = exact_quantile(&samples, q);
            let est = s.quantile(q);
            #[allow(clippy::cast_precision_loss)]
            let err = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(err <= 2.5 * RELATIVE_ERROR, "q={q}: est {est} vs {truth} (err {err})");
        }
    }

    #[test]
    fn zeros_are_tracked_exactly_past_collapse() {
        let mut s = QuantileSketch::new();
        for _ in 0..200 {
            s.record(0);
        }
        for _ in 0..100 {
            s.record(1_000);
        }
        assert!(!s.is_exact());
        assert_eq!(s.quantile(0.5), 0);
        let p90 = s.quantile(0.9);
        assert!((990..=1_010).contains(&p90), "{p90}");
    }

    #[test]
    fn merge_of_exact_sketches_stays_exact_under_cap() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in 0..40u64 {
            a.record(v);
            b.record(1_000 + v);
        }
        a.merge(&b);
        assert!(a.is_exact());
        assert_eq!(a.count(), 80);
        assert_eq!(a.quantile(1.0), 1_039);
    }

    #[test]
    fn merge_collapses_and_adds_counts() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in 1..=100u64 {
            a.record(v);
            b.record(v * 100);
        }
        a.merge(&b);
        assert!(!a.is_exact());
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 10_000);
        // The upper half of the merged stream is b's samples.
        let p75 = a.quantile(0.75);
        assert!((4_800..=5_200).contains(&p75), "{p75}");
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut a = QuantileSketch::new();
        a.record(7);
        let before = a.clone();
        a.merge(&QuantileSketch::new());
        assert_eq!(a, before);
        let mut empty = QuantileSketch::new();
        empty.merge(&before);
        assert_eq!(empty.quantile(0.5), 7);
    }
}
