//! Lock-free metrics registry.
//!
//! Counters, gauges and fixed-bucket histograms keyed by a static name.
//! Registration (first use of a name) takes a mutex; every subsequent
//! update goes through a cached [`Arc`] handle and is a single relaxed
//! atomic RMW, so hot paths never contend on a lock. The update path is
//! exact under concurrency: `fetch_add` never loses increments, which
//! the crate's proptest asserts across thread counts.
//!
//! Two labeled extensions serve the ops plane (DESIGN.md §11):
//! [`Family`] adds one bounded-cardinality label dimension (tenant,
//! engine, outcome) to any instrument, and [`Sketch`] wraps the
//! mergeable [`QuantileSketch`](crate::quantile::QuantileSketch) as a
//! registry instrument so `/metrics` can expose true p50/p99 instead of
//! power-of-two bucket shapes.

use crate::json::Json;
use crate::quantile::QuantileSketch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (e.g. replay-buffer occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of exponential buckets: bucket `i` holds values whose
/// bit-length is `i` (i.e. `v == 0` → bucket 0, else `64 - v.leading_zeros()`),
/// so the range 1 µs .. ~1 minute of microsecond latencies is covered
/// with power-of-two resolution.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket histogram with exponential (power-of-two) buckets.
///
/// `count` and `sum` are exact; the bucket array gives the shape. All
/// updates are relaxed atomics — no locks, no lost updates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        let bits = 64 - value.leading_zeros() as usize;
        let idx = bits.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    pub fn record_duration_us(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// This snapshot minus an earlier one (saturating).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// A shareable quantile-sketch instrument: a mutex around the
/// mergeable [`QuantileSketch`]. The lock is uncontended in practice —
/// one record per *request*, not per search step — and keeps the sketch
/// itself allocation-light.
#[derive(Debug, Default)]
pub struct Sketch(Mutex<QuantileSketch>);

impl Sketch {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).record(value);
    }

    /// Record a duration in microseconds.
    pub fn record_duration_us(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Clone of the current sketch state (itself mergeable).
    #[must_use]
    pub fn snapshot(&self) -> QuantileSketch {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

/// Hard cap on distinct label values per [`Family`]. The first
/// `MAX_LABEL_CARDINALITY` distinct (sanitized) labels get their own
/// instrument; every later label shares the [`OVERFLOW_LABEL`] slot, so
/// an adversarial tenant spraying unique names cannot grow the registry
/// without bound.
pub const MAX_LABEL_CARDINALITY: usize = 64;

/// The shared slot labels collapse into past the cardinality cap.
pub const OVERFLOW_LABEL: &str = "__other__";

/// Longest sanitized label kept verbatim; longer ones are truncated.
pub const MAX_LABEL_LEN: usize = 48;

/// Sanitize one label value for use in metric keys and text
/// exposition: printable ASCII from a conservative set, bounded length,
/// never empty. Quotes, braces, newlines and other exposition-breaking
/// characters become `_`.
#[must_use]
pub fn sanitize_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len().min(MAX_LABEL_LEN));
    for ch in raw.chars().take(MAX_LABEL_LEN) {
        if ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-' | ':' | '/') {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push_str("unknown");
    }
    out
}

/// One instrument per label value, under one metric name, with bounded
/// cardinality (see [`MAX_LABEL_CARDINALITY`]). `T` is any default-
/// constructible instrument ([`Counter`], [`Histogram`], [`Sketch`]).
#[derive(Debug)]
pub struct Family<T> {
    name: &'static str,
    slots: Mutex<BTreeMap<String, Arc<T>>>,
}

impl<T: Default> Family<T> {
    fn new(name: &'static str) -> Self {
        Family { name, slots: Mutex::new(BTreeMap::new()) }
    }

    /// The metric name this family was registered under.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The instrument for `label` (sanitized), creating it on first
    /// use. Past the cardinality cap, returns the shared
    /// [`OVERFLOW_LABEL`] instrument instead of growing.
    #[must_use]
    pub fn with(&self, label: &str) -> Arc<T> {
        let label = sanitize_label(label);
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if !slots.contains_key(&label) && slots.len() >= MAX_LABEL_CARDINALITY {
            return Arc::clone(slots.entry(OVERFLOW_LABEL.to_owned()).or_default());
        }
        Arc::clone(slots.entry(label).or_default())
    }

    /// Distinct label values currently registered (sanitized form).
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Snapshot every `(label, instrument)` pair.
    fn entries(&self) -> Vec<(String, Arc<T>)> {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

/// Flattened snapshot key for one family member: `name{label}`.
fn labeled_key(name: &str, label: &str) -> String {
    format!("{name}{{{label}}}")
}

/// The global name → instrument map.
///
/// The cold path (name lookup) locks; hot paths keep the returned
/// handle (see [`crate::counter!`]) and never come back here.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    sketches: Mutex<BTreeMap<&'static str, Arc<Sketch>>>,
    counter_families: Mutex<BTreeMap<&'static str, Arc<Family<Counter>>>>,
    histogram_families: Mutex<BTreeMap<&'static str, Arc<Family<Histogram>>>>,
    sketch_families: Mutex<BTreeMap<&'static str, Arc<Family<Sketch>>>>,
}

impl Registry {
    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex was poisoned (a prior panic while
    /// registering — not reachable from safe use).
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().expect("registry poisoned").entry(name).or_default())
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex was poisoned.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().expect("registry poisoned").entry(name).or_default())
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex was poisoned.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().expect("registry poisoned").entry(name).or_default())
    }

    /// The quantile sketch registered under `name`, creating it on
    /// first use.
    #[must_use]
    pub fn sketch(&self, name: &'static str) -> Arc<Sketch> {
        Arc::clone(
            self.sketches
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(name)
                .or_default(),
        )
    }

    /// The labeled counter family under `name`.
    #[must_use]
    pub fn counter_family(&self, name: &'static str) -> Arc<Family<Counter>> {
        Arc::clone(
            self.counter_families
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(name)
                .or_insert_with(|| Arc::new(Family::new(name))),
        )
    }

    /// The labeled histogram family under `name`.
    #[must_use]
    pub fn histogram_family(&self, name: &'static str) -> Arc<Family<Histogram>> {
        Arc::clone(
            self.histogram_families
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(name)
                .or_insert_with(|| Arc::new(Family::new(name))),
        )
    }

    /// The labeled quantile-sketch family under `name`.
    #[must_use]
    pub fn sketch_family(&self, name: &'static str) -> Arc<Family<Sketch>> {
        Arc::clone(
            self.sketch_families
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(name)
                .or_insert_with(|| Arc::new(Family::new(name))),
        )
    }

    /// Point-in-time copy of every registered instrument. Labeled
    /// family members are flattened in under `name{label}` keys, so
    /// snapshot deltas and text exposition treat them like any other
    /// instrument.
    ///
    /// # Panics
    /// Panics if a registry mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.get()))
            .collect();
        for family in self.counter_families.lock().unwrap_or_else(PoisonError::into_inner).values()
        {
            for (label, counter) in family.entries() {
                counters.insert(labeled_key(family.name(), &label), counter.get());
            }
        }
        let mut histograms: BTreeMap<String, HistogramSnapshot> = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.snapshot()))
            .collect();
        for family in
            self.histogram_families.lock().unwrap_or_else(PoisonError::into_inner).values()
        {
            for (label, histogram) in family.entries() {
                histograms.insert(labeled_key(family.name(), &label), histogram.snapshot());
            }
        }
        let mut sketches: BTreeMap<String, QuantileSketch> = self
            .sketches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.snapshot()))
            .collect();
        for family in self.sketch_families.lock().unwrap_or_else(PoisonError::into_inner).values()
        {
            for (label, sketch) in family.entries() {
                sketches.insert(labeled_key(family.name(), &label), sketch.snapshot());
            }
        }
        MetricsSnapshot {
            counters,
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_owned(), v.get()))
                .collect(),
            histograms,
            sketches,
        }
    }
}

/// The process-wide registry.
#[must_use]
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Point-in-time copy of the registry contents. Labeled family members
/// appear under flattened `name{label}` keys.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Quantile-sketch states by name. Like gauges, sketches are not
    /// subtracted by [`MetricsSnapshot::delta`] (they merge, they do
    /// not subtract) — a delta carries the latest state.
    pub sketches: BTreeMap<String, QuantileSketch>,
}

impl MetricsSnapshot {
    /// This snapshot minus an earlier one: counters and histograms are
    /// subtracted (saturating), gauges keep their latest value. Used to
    /// attribute global metrics to one compile run.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let base = earlier.histograms.get(k).cloned().unwrap_or_default();
                    (k.clone(), v.delta(&base))
                })
                .collect(),
            sketches: self.sketches.clone(),
        }
    }

    /// Render as a JSON object `{counters: {...}, gauges: {...},
    /// histograms: {name: {count, sum, mean}}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters =
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect::<Vec<_>>();
        let gauges =
            self.gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::from(v.count)),
                        ("sum", Json::from(v.sum)),
                        ("mean", Json::from(v.mean())),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        let sketches = self
            .sketches
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::from(s.count())),
                        ("mean", Json::from(s.mean())),
                        ("p50", Json::from(s.p50())),
                        ("p99", Json::from(s.p99())),
                        ("max", Json::from(s.max())),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Json::Obj(vec![
            ("counters".to_owned(), Json::Obj(counters)),
            ("gauges".to_owned(), Json::Obj(gauges)),
            ("histograms".to_owned(), Json::Obj(histograms)),
            ("sketches".to_owned(), Json::Obj(sketches)),
        ])
    }
}

/// Bump a named counter through a call-site-cached handle: the registry
/// lock is taken once per call site, after which each hit is a single
/// relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::counter!($name, 1)
    };
    ($name:literal, $n:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().counter($name)).add($n);
    }};
}

/// Set a named gauge through a call-site-cached handle.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $value:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().gauge($name)).set($value);
    }};
}

/// Record an observation into a named histogram through a
/// call-site-cached handle.
#[macro_export]
macro_rules! observe {
    ($name:literal, $value:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().histogram($name)).record($value);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::default();
        let c = r.counter("t.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.snapshot().counters["t.count"], 5);
        // Same name → same instrument.
        r.counter("t.count").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 1); // value 0
        assert_eq!(s.buckets[1], 1); // value 1
        assert_eq!(s.buckets[2], 1); // values 2..=3
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1); // clamp
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let r = Registry::default();
        let c = r.counter("d.count");
        let h = r.histogram("d.hist");
        c.add(3);
        h.record(10);
        let before = r.snapshot();
        c.add(2);
        h.record(20);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters["d.count"], 2);
        assert_eq!(d.histograms["d.hist"].count, 1);
        assert_eq!(d.histograms["d.hist"].sum, 20);
    }

    #[test]
    fn labeled_families_flatten_into_snapshots() {
        let r = Registry::default();
        let family = r.counter_family("f.outcome");
        family.with("acme").add(2);
        family.with("beta").inc();
        family.with("acme").inc();
        r.sketch_family("f.lat").with("acme").record(150);
        let snap = r.snapshot();
        assert_eq!(snap.counters["f.outcome{acme}"], 3);
        assert_eq!(snap.counters["f.outcome{beta}"], 1);
        assert_eq!(snap.sketches["f.lat{acme}"].count(), 1);
    }

    #[test]
    fn label_cardinality_is_bounded() {
        let r = Registry::default();
        let family = r.counter_family("b.outcome");
        for i in 0..(MAX_LABEL_CARDINALITY + 40) {
            family.with(&format!("tenant-{i}")).inc();
        }
        let labels = family.labels();
        assert!(labels.len() <= MAX_LABEL_CARDINALITY + 1, "{}", labels.len());
        assert!(labels.iter().any(|l| l == OVERFLOW_LABEL));
        // Nothing lost: overflow absorbed the excess increments.
        let total: u64 = family.labels().iter().map(|l| family.with(l).get()).sum();
        assert_eq!(total, (MAX_LABEL_CARDINALITY + 40) as u64);
    }

    #[test]
    fn labels_are_sanitized() {
        assert_eq!(sanitize_label("acme"), "acme");
        assert_eq!(sanitize_label("a b\"c{d}e\n"), "a_b_c_d_e_");
        assert_eq!(sanitize_label(""), "unknown");
        let long = "x".repeat(300);
        assert_eq!(sanitize_label(&long).len(), MAX_LABEL_LEN);
        let family = Registry::default().counter_family("s.c");
        family.with("we\"ird{}").inc();
        assert_eq!(family.labels(), vec!["we_ird__".to_owned()]);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let r = Registry::default();
        r.counter("j.count").add(7);
        r.histogram("j.hist").record(4);
        let json = r.snapshot().to_json();
        let text = json.to_string_compact();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.get("counters").and_then(|c| c.get("j.count")).and_then(Json::as_u64), Some(7));
        assert_eq!(
            back.get("histograms")
                .and_then(|h| h.get("j.hist"))
                .and_then(|h| h.get("sum"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }
}
