//! Lock-free metrics registry.
//!
//! Counters, gauges and fixed-bucket histograms keyed by a static name.
//! Registration (first use of a name) takes a mutex; every subsequent
//! update goes through a cached [`Arc`] handle and is a single relaxed
//! atomic RMW, so hot paths never contend on a lock. The update path is
//! exact under concurrency: `fetch_add` never loses increments, which
//! the crate's proptest asserts across thread counts.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (e.g. replay-buffer occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of exponential buckets: bucket `i` holds values whose
/// bit-length is `i` (i.e. `v == 0` → bucket 0, else `64 - v.leading_zeros()`),
/// so the range 1 µs .. ~1 minute of microsecond latencies is covered
/// with power-of-two resolution.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket histogram with exponential (power-of-two) buckets.
///
/// `count` and `sum` are exact; the bucket array gives the shape. All
/// updates are relaxed atomics — no locks, no lost updates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        let bits = 64 - value.leading_zeros() as usize;
        let idx = bits.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    pub fn record_duration_us(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// This snapshot minus an earlier one (saturating).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// The global name → instrument map.
///
/// The cold path (name lookup) locks; hot paths keep the returned
/// handle (see [`crate::counter!`]) and never come back here.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex was poisoned (a prior panic while
    /// registering — not reachable from safe use).
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().expect("registry poisoned").entry(name).or_default())
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex was poisoned.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().expect("registry poisoned").entry(name).or_default())
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex was poisoned.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().expect("registry poisoned").entry(name).or_default())
    }

    /// Point-in-time copy of every registered instrument.
    ///
    /// # Panics
    /// Panics if a registry mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_owned(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_owned(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(&k, v)| (k.to_owned(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry.
#[must_use]
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Point-in-time copy of the registry contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// This snapshot minus an earlier one: counters and histograms are
    /// subtracted (saturating), gauges keep their latest value. Used to
    /// attribute global metrics to one compile run.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let base = earlier.histograms.get(k).cloned().unwrap_or_default();
                    (k.clone(), v.delta(&base))
                })
                .collect(),
        }
    }

    /// Render as a JSON object `{counters: {...}, gauges: {...},
    /// histograms: {name: {count, sum, mean}}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters =
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect::<Vec<_>>();
        let gauges =
            self.gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::from(v.count)),
                        ("sum", Json::from(v.sum)),
                        ("mean", Json::from(v.mean())),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Json::Obj(vec![
            ("counters".to_owned(), Json::Obj(counters)),
            ("gauges".to_owned(), Json::Obj(gauges)),
            ("histograms".to_owned(), Json::Obj(histograms)),
        ])
    }
}

/// Bump a named counter through a call-site-cached handle: the registry
/// lock is taken once per call site, after which each hit is a single
/// relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::counter!($name, 1)
    };
    ($name:literal, $n:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().counter($name)).add($n);
    }};
}

/// Set a named gauge through a call-site-cached handle.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $value:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().gauge($name)).set($value);
    }};
}

/// Record an observation into a named histogram through a
/// call-site-cached handle.
#[macro_export]
macro_rules! observe {
    ($name:literal, $value:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().histogram($name)).record($value);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::default();
        let c = r.counter("t.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.snapshot().counters["t.count"], 5);
        // Same name → same instrument.
        r.counter("t.count").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 1); // value 0
        assert_eq!(s.buckets[1], 1); // value 1
        assert_eq!(s.buckets[2], 1); // values 2..=3
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1); // clamp
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let r = Registry::default();
        let c = r.counter("d.count");
        let h = r.histogram("d.hist");
        c.add(3);
        h.record(10);
        let before = r.snapshot();
        c.add(2);
        h.record(20);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters["d.count"], 2);
        assert_eq!(d.histograms["d.hist"].count, 1);
        assert_eq!(d.histograms["d.hist"].sum, 20);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let r = Registry::default();
        r.counter("j.count").add(7);
        r.histogram("j.hist").record(4);
        let json = r.snapshot().to_json();
        let text = json.to_string_compact();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.get("counters").and_then(|c| c.get("j.count")).and_then(Json::as_u64), Some(7));
        assert_eq!(
            back.get("histograms")
                .and_then(|h| h.get("j.hist"))
                .and_then(|h| h.get("sum"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }
}
