//! Concurrency guarantees of the metrics registry: counter sums and
//! histogram totals must be exact — no lost updates — whatever the
//! thread count, plus a span-nesting round trip through the JSONL
//! encoder.

use mapzero_obs::metrics::Registry;
use mapzero_obs::sink::{install_sink, uninstall_sink, MemorySink, TelemetrySink};
use mapzero_obs::TraceEvent;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads hammering one counter and one histogram: the final
    /// totals equal the arithmetic sum of every increment.
    #[test]
    fn concurrent_updates_are_never_lost(
        threads in 2usize..9,
        per_thread in 1u64..400,
        increment in 1u64..5,
    ) {
        let registry = Arc::new(Registry::default());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let counter = registry.counter("prop.count");
                    let histogram = registry.histogram("prop.hist");
                    for i in 0..per_thread {
                        counter.add(increment);
                        histogram.record(i);
                    }
                });
            }
        });
        let snapshot = registry.snapshot();
        let n = threads as u64;
        prop_assert_eq!(snapshot.counters["prop.count"], n * per_thread * increment);
        let hist = &snapshot.histograms["prop.hist"];
        prop_assert_eq!(hist.count, n * per_thread);
        // Sum of 0..per_thread per thread.
        prop_assert_eq!(hist.sum, n * per_thread * (per_thread - 1) / 2);
        // Bucket totals account for every observation.
        prop_assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
    }

    /// Arbitrary span events survive the JSONL encoder byte-exactly.
    #[test]
    fn trace_events_round_trip(
        ts_us in 0u64..(1 << 50),
        dur_us in 0u64..(1 << 50),
        tid in 0u64..64,
        depth in 0u32..32,
        seq in 0u64..(1 << 50),
        name_idx in 0usize..5,
    ) {
        let names = ["mcts.expand", "route.edge", "nn.forward", "a b\"c\\d", "unicode.λ"];
        let event = TraceEvent {
            name: names[name_idx].to_owned(),
            ts_us, dur_us, tid, depth, seq,
            req: None,
        };
        let line = event.to_json_line();
        prop_assert_eq!(TraceEvent::from_json_line(&line).unwrap(), event);
    }
}

/// Nested spans recorded through the global sink come back with the
/// correct nesting depths and strictly increasing sequence numbers
/// after an encode/decode round trip.
#[test]
fn span_nesting_round_trips_through_jsonl() {
    let sink = Arc::new(MemorySink::new());
    install_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    {
        let _a = mapzero_obs::span!("nest.a");
        {
            let _b = mapzero_obs::span!("nest.b");
            let _c = mapzero_obs::span!("nest.c");
        }
        let _d = mapzero_obs::span!("nest.d");
    }
    uninstall_sink();

    let events = sink.take();
    let lines: Vec<String> = events.iter().map(TraceEvent::to_json_line).collect();
    let decoded: Vec<TraceEvent> =
        lines.iter().map(|l| TraceEvent::from_json_line(l).unwrap()).collect();
    assert_eq!(decoded, events);

    // Drop order: c, b, d, a — with depths 2, 1, 1, 0.
    let by_name: Vec<(&str, u32)> =
        decoded.iter().map(|e| (e.name.as_str(), e.depth)).collect();
    assert_eq!(
        by_name,
        vec![("nest.c", 2), ("nest.b", 1), ("nest.d", 1), ("nest.a", 0)]
    );
    for pair in decoded.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
        assert!(pair[0].ts_us <= pair[1].ts_us + pair[1].dur_us);
    }
    // Parent spans cover their children.
    let a = decoded.iter().find(|e| e.name == "nest.a").unwrap();
    let c = decoded.iter().find(|e| e.name == "nest.c").unwrap();
    assert!(a.ts_us <= c.ts_us);
    assert!(a.ts_us + a.dur_us >= c.ts_us + c.dur_us);
}
