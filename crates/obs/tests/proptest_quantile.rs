//! Property coverage for the observability plane's two bounded
//! structures: the mergeable quantile sketch (merged estimates stay
//! within the error bound of the exact quantile over the concatenated
//! samples) and label families (adversarial label strings can never
//! grow a family past its cardinality cap).

use mapzero_obs::metrics::{sanitize_label, Registry, MAX_LABEL_CARDINALITY, OVERFLOW_LABEL};
use mapzero_obs::quantile::RELATIVE_ERROR;
use mapzero_obs::QuantileSketch;
use proptest::prelude::*;

/// Exact nearest-rank quantile — the oracle the sketch approximates.
fn exact_quantile(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation, clippy::cast_precision_loss)]
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// The sketch guarantees `RELATIVE_ERROR` per bucket boundary; nearest
/// -rank vs midpoint estimation can add up to one more bucket width, so
/// the acceptance bound is a conservative 2.5x the configured error
/// (plus 1 for integer truncation at tiny values).
fn within_bound(estimate: u64, exact: u64) -> bool {
    let tolerance = 2.5 * RELATIVE_ERROR * exact as f64 + 1.0;
    (estimate as f64 - exact as f64).abs() <= tolerance
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two independently-built sketches answers quantiles as if
    /// one sketch had seen the concatenation of both sample streams.
    #[test]
    fn merged_sketch_matches_exact_concatenation(
        a in proptest::collection::vec(0u64..2_000_000, 0..400),
        b in proptest::collection::vec(0u64..2_000_000, 0..400),
    ) {
        let mut left = QuantileSketch::new();
        for &v in &a {
            left.record(v);
        }
        let mut right = QuantileSketch::new();
        for &v in &b {
            right.record(v);
        }
        left.merge(&right);

        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(left.count(), all.len() as u64);
        if all.is_empty() {
            prop_assert_eq!(left.quantile(0.5), 0);
            return Ok(());
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&mut all, q);
            let est = left.quantile(q);
            prop_assert!(
                within_bound(est, exact),
                "q={} est={} exact={} (n={})", q, est, exact, all.len()
            );
        }
        // Extremes are clamped to observed min/max, so they are exact.
        prop_assert_eq!(left.min(), *all.first().unwrap());
        prop_assert_eq!(left.max(), *all.last().unwrap());
    }

    /// A sketch still in exact mode reproduces the oracle bit-for-bit.
    #[test]
    fn small_sketches_are_exact(
        samples in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut sketch = QuantileSketch::new();
        for &v in &samples {
            sketch.record(v);
        }
        prop_assert!(sketch.is_exact());
        let mut sorted = samples.clone();
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(sketch.quantile(q), exact_quantile(&mut sorted, q));
        }
    }

    /// No sequence of adversarial tenant names — control characters,
    /// injection attempts, unbounded uniqueness — can grow a label
    /// family past its cap: excess labels collapse into the shared
    /// overflow slot and no count is lost.
    #[test]
    fn label_cardinality_is_bounded_under_adversarial_names(
        raw_names in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24),
            1..300,
        ),
    ) {
        let registry = Registry::default();
        let family = registry.counter_family("prop.tenant.requests");
        for bytes in &raw_names {
            let name = String::from_utf8_lossy(bytes).into_owned();
            family.with(&name).inc();
        }
        let labels = family.labels();
        // The shared overflow slot may sit alongside the cap's worth of
        // distinct labels, so the hard ceiling is cap + 1.
        prop_assert!(
            labels.len() <= MAX_LABEL_CARDINALITY + 1,
            "cardinality {} exceeds cap", labels.len()
        );
        // Every label stored is in sanitized form (idempotent under
        // sanitize_label), so exposition output stays parseable.
        for label in &labels {
            prop_assert_eq!(&sanitize_label(label), label);
        }
        // Conservation: every inc landed somewhere.
        let total: u64 = labels.iter().map(|l| family.with(l).get()).sum();
        prop_assert_eq!(total, raw_names.len() as u64);
        // Past the cap, the overflow slot exists and absorbs new names.
        if labels.len() > MAX_LABEL_CARDINALITY {
            prop_assert!(labels.iter().any(|l| l == OVERFLOW_LABEL));
        }
    }
}
