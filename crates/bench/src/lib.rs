//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index) and prints the same
//! rows/series the paper reports, additionally writing CSV into
//! `results/`.
//!
//! Scale control: the experiments honour two environment variables so
//! the same binaries serve both a quick smoke run and a full
//! reproduction:
//!
//! * `MAPZERO_BENCH_MODE` — `quick` (default) or `full`;
//! * `MAPZERO_TIME_LIMIT_SECS` — per-attempt mapper time limit
//!   (defaults: 15 s quick, 480 s full — the paper used 8 h).

use mapzero_arch::Cgra;
use mapzero_baselines::{ExactMapper, LisaMapper, SaMapper};
use mapzero_core::network::NetConfig;
use mapzero_core::{
    AgentConfig, Compiler, MapReport, MapZeroConfig, Mapper, MctsConfig, TrainConfig,
};
use mapzero_dfg::Dfg;
use mapzero_obs::json::Json;
use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// Seconds-per-kernel smoke scale (default).
    Quick,
    /// Minutes-per-kernel reproduction scale.
    Full,
}

impl BenchMode {
    /// Read the mode from `MAPZERO_BENCH_MODE`.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MAPZERO_BENCH_MODE").as_deref() {
            Ok("full") | Ok("FULL") => BenchMode::Full,
            _ => BenchMode::Quick,
        }
    }

    /// Per-attempt mapper time limit.
    #[must_use]
    pub fn time_limit(self) -> Duration {
        if let Ok(s) = std::env::var("MAPZERO_TIME_LIMIT_SECS") {
            if let Ok(secs) = s.parse::<u64>() {
                return Duration::from_secs(secs);
            }
        }
        match self {
            BenchMode::Quick => Duration::from_secs(15),
            BenchMode::Full => Duration::from_secs(480),
        }
    }

    /// The kernel names used for the head-to-head experiments
    /// (Figs. 8–11); quick mode uses the smaller half of the suite.
    #[must_use]
    pub fn kernels(self) -> Vec<&'static str> {
        match self {
            BenchMode::Quick => {
                vec!["sum", "mac", "conv2", "accumulate", "matmul", "conv3"]
            }
            BenchMode::Full => vec![
                "sum",
                "mac",
                "conv2",
                "accumulate",
                "matmul",
                "conv3",
                "mults1",
                "mac2",
                "cap",
                "mults2",
                "arf",
                "h2v2",
                "mulul",
            ],
        }
    }

    /// Unrolled kernels for the Fig. 13 scalability study.
    #[must_use]
    pub fn unrolled_kernels(self) -> Vec<&'static str> {
        match self {
            BenchMode::Quick => vec!["stencil_u", "filter_u"],
            BenchMode::Full => {
                vec!["stencil_u", "filter_u", "jpegdct_u", "sort_u", "huf_u"]
            }
        }
    }

    /// A MapZero compiler configuration for this scale.
    #[must_use]
    pub fn mapzero_config(self) -> MapZeroConfig {
        match self {
            BenchMode::Quick => MapZeroConfig {
                net: NetConfig::tiny(),
                agent: AgentConfig {
                    mcts: MctsConfig {
                        simulations: 24,
                        expansion_cap: 32,
                        playout_step_limit: 96,
                        ..MctsConfig::default()
                    },
                    backtrack_budget: 2_000_000,
                    mcts_backtrack_cutoff: 256,
                    ..AgentConfig::default()
                },
                attempts_per_ii: 2,
                pretrain: None,
                ..MapZeroConfig::fast_test()
            },
            BenchMode::Full => MapZeroConfig {
                agent: AgentConfig {
                    mcts: MctsConfig {
                        simulations: 64,
                        expansion_cap: 100,
                        ..MctsConfig::default()
                    },
                    backtrack_budget: 4096,
                    ..AgentConfig::default()
                },
                pretrain: Some(TrainConfig::default()),
                ..MapZeroConfig::default()
            },
        }
    }
}

/// Per-binary harness bracket: `begin` prints the title and hooks
/// telemetry up to the environment (`MAPZERO_TRACE` /
/// `MAPZERO_TELEMETRY`); `finish` folds the run's metric deltas into
/// `results/BENCH_<name>.json` and flushes any trace sink. Counters are
/// always live, so the JSON is populated even without the env vars.
///
/// The JSON lands even when the run dies before `finish`: dropping an
/// unfinished harness (panic unwinding through the binary, early
/// return) writes the same file with an `"error"` field, so a nightly
/// sweep always has one result file per bench to aggregate.
pub struct Harness {
    name: &'static str,
    before: mapzero_obs::metrics::MetricsSnapshot,
    started: Instant,
    finished: bool,
    extra: std::cell::RefCell<Vec<(String, Json)>>,
}

impl Harness {
    /// Open the harness: print the banner, initialise telemetry from
    /// the environment, snapshot the metrics baseline.
    #[must_use]
    pub fn begin(name: &'static str, title: impl Display) -> Harness {
        if let Some(path) = mapzero_obs::init_from_env() {
            println!("[tracing to {path}]");
        }
        println!("{title}\n");
        Harness {
            name,
            before: mapzero_obs::metrics::registry().snapshot(),
            started: Instant::now(),
            finished: false,
            extra: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Attach a custom top-level field to the result JSON (written by
    /// `finish`, and by the Drop guard if the bench dies early). Later
    /// values win over earlier ones for the same key.
    pub fn field(&self, key: impl Into<String>, value: Json) {
        let key = key.into();
        let mut extra = self.extra.borrow_mut();
        extra.retain(|(k, _)| *k != key);
        extra.push((key, value));
    }

    /// Progress line on stderr (keeps stdout clean for tables).
    pub fn progress(&self, msg: impl Display) {
        eprintln!("{msg} …");
    }

    /// Commentary line on stdout (the qualitative claims under each
    /// table).
    pub fn note(&self, msg: impl Display) {
        println!("{msg}");
    }

    /// Close the harness: write the per-run metrics JSON and flush any
    /// installed trace sink.
    pub fn finish(mut self) {
        self.finished = true;
        self.write_result(None);
        mapzero_obs::sink::flush();
    }

    fn write_result(&self, error: Option<&str>) {
        let delta =
            mapzero_obs::metrics::registry().snapshot().delta(&self.before);
        let mut fields = vec![
            ("bench".to_owned(), Json::from(self.name)),
            ("elapsed_secs".to_owned(), Json::Num(self.started.elapsed().as_secs_f64())),
            ("metrics".to_owned(), delta.to_json()),
        ];
        fields.extend(self.extra.borrow().iter().cloned());
        if let Some(error) = error {
            fields.push(("error".to_owned(), Json::from(error)));
        }
        let json = Json::Obj(fields);
        let path = results_dir().join(format!("BENCH_{}.json", self.name));
        match fs::write(&path, json.to_string_compact() + "\n") {
            Ok(()) => println!("[metrics written to {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let error = if std::thread::panicking() {
            "bench panicked before finish"
        } else {
            "bench dropped before finish"
        };
        self.write_result(Some(error));
        mapzero_obs::sink::flush();
    }
}

/// All four mappers run on one instance, in the paper's order
/// (ILP, SA, LISA, MapZero).
pub fn run_all_mappers(
    mapzero: &mut Compiler,
    dfg: &Dfg,
    cgra: &Cgra,
    limit: Duration,
) -> Vec<MapReport> {
    let mut out = Vec::with_capacity(4);
    let mut ilp = ExactMapper::default();
    out.push(run_or_fail(&mut ilp, dfg, cgra, limit));
    let mut sa = SaMapper::default();
    out.push(run_or_fail(&mut sa, dfg, cgra, limit));
    let mut lisa = LisaMapper::default();
    out.push(run_or_fail(&mut lisa, dfg, cgra, limit));
    out.push(
        mapzero
            .map_with_limit(dfg, cgra, limit)
            .unwrap_or_else(|_| failed_report("MapZero", dfg, cgra)),
    );
    out
}

/// Run one mapper, turning structural errors into failed reports so the
/// tables always have a row.
pub fn run_or_fail(
    mapper: &mut dyn Mapper,
    dfg: &Dfg,
    cgra: &Cgra,
    limit: Duration,
) -> MapReport {
    let name = mapper.name().to_owned();
    mapper
        .map(dfg, cgra, limit)
        .unwrap_or_else(|_| failed_report(&name, dfg, cgra))
}

fn failed_report(name: &str, dfg: &Dfg, cgra: &Cgra) -> MapReport {
    MapReport {
        mapper: name.to_owned(),
        engine: name.to_owned(),
        kernel: dfg.name().to_owned(),
        fabric: cgra.name().to_owned(),
        mii: 0,
        mapping: None,
        elapsed: Duration::ZERO,
        backtracks: 0,
        explored: 0,
        timed_out: false,
        telemetry: None,
    }
}

/// A flattened mapping result, cacheable as CSV so Figs. 8–11 share one
/// set of raw runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RawResult {
    /// Mapper name.
    pub mapper: String,
    /// Kernel name.
    pub kernel: String,
    /// Fabric name.
    pub fabric: String,
    /// Minimum II bound.
    pub mii: u32,
    /// Achieved II (0 = failed, matching Fig. 8's convention).
    pub ii: u32,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Backtracks (MapZero/ILP) or annealing steps (SA-family).
    pub backtracks: u64,
    /// Placement attempts / proposals explored.
    pub explored: u64,
    /// Whether the run hit the time limit.
    pub timed_out: bool,
}

impl RawResult {
    /// Convert from a full report.
    #[must_use]
    pub fn from_report(r: &MapReport) -> Self {
        RawResult {
            mapper: r.mapper.clone(),
            kernel: r.kernel.clone(),
            fabric: r.fabric.clone(),
            mii: r.mii,
            ii: r.achieved_ii().unwrap_or(0),
            secs: r.elapsed.as_secs_f64(),
            backtracks: r.backtracks,
            explored: r.explored,
            timed_out: r.timed_out,
        }
    }

    /// II ratio relative to MII (0 when failed).
    #[must_use]
    pub fn ii_ratio(&self) -> f64 {
        if self.ii == 0 || self.mii == 0 {
            0.0
        } else {
            f64::from(self.mii) / f64::from(self.ii)
        }
    }

    fn to_csv_row(&self) -> Vec<String> {
        vec![
            self.mapper.clone(),
            self.kernel.clone(),
            self.fabric.clone(),
            self.mii.to_string(),
            self.ii.to_string(),
            format!("{:.6}", self.secs),
            self.backtracks.to_string(),
            self.explored.to_string(),
            self.timed_out.to_string(),
        ]
    }

    fn from_csv_row(row: &[&str]) -> Option<Self> {
        if row.len() != 9 {
            return None;
        }
        Some(RawResult {
            mapper: row[0].to_owned(),
            kernel: row[1].to_owned(),
            fabric: row[2].to_owned(),
            mii: row[3].parse().ok()?,
            ii: row[4].parse().ok()?,
            secs: row[5].parse().ok()?,
            backtracks: row[6].parse().ok()?,
            explored: row[7].parse().ok()?,
            timed_out: row[8].parse().ok()?,
        })
    }
}

const HEADTOHEAD_HEADER: [&str; 9] =
    ["mapper", "kernel", "fabric", "mii", "ii", "secs", "backtracks", "explored", "timed_out"];

/// Run (or load from cache) the §4.2/§4.3 head-to-head experiment: all
/// four mappers × the mode's kernels × the four evaluation fabrics.
/// The raw rows are cached in `results/headtohead_raw.csv`; delete that
/// file to re-run.
pub fn headtohead_results(mode: BenchMode) -> Vec<RawResult> {
    let cache = results_dir().join("headtohead_raw.csv");
    if let Ok(text) = fs::read_to_string(&cache) {
        let rows: Vec<RawResult> = text
            .lines()
            .skip(1)
            .filter_map(|l| RawResult::from_csv_row(&l.split(',').collect::<Vec<_>>()))
            .collect();
        if !rows.is_empty() {
            println!("[loaded {} cached rows from {}]", rows.len(), cache.display());
            return rows;
        }
    }
    let limit = mode.time_limit();
    let mut compiler = Compiler::new(mode.mapzero_config());
    let mut results = Vec::new();
    for cgra in mapzero_arch::presets::evaluation_fabrics() {
        for name in mode.kernels() {
            let dfg = mapzero_dfg::suite::by_name(name).expect("kernel exists");
            eprintln!("running {} on {} …", name, cgra.name());
            for report in run_all_mappers(&mut compiler, &dfg, &cgra, limit) {
                results.push(RawResult::from_report(&report));
            }
        }
    }
    let mut csv =
        vec![HEADTOHEAD_HEADER.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    csv.extend(results.iter().map(RawResult::to_csv_row));
    write_csv("headtohead_raw", &csv);
    results
}

/// Geometric mean of a set of positive values.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

/// Resolve the `results/` directory (created on demand).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MAPZERO_RESULTS_DIR").map_or_else(
        |_| PathBuf::from("results"),
        PathBuf::from,
    );
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write CSV rows (first row = header) into `results/<name>.csv`.
pub fn write_csv(name: &str, rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let Ok(mut file) = fs::File::create(&path) else {
        eprintln!("warning: cannot write {}", path.display());
        return;
    };
    for row in rows {
        let _ = writeln!(file, "{}", row.join(","));
    }
    println!("\n[csv written to {}]", path.display());
}

/// Format a duration in seconds with millisecond precision.
#[must_use]
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Pretty-print an aligned table: `widths` per column, header first.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, 0.0]), 0.0);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn bench_mode_defaults_quick() {
        // Note: other tests may set the env var; default path only.
        if std::env::var("MAPZERO_BENCH_MODE").is_err() {
            assert_eq!(BenchMode::from_env(), BenchMode::Quick);
        }
        assert!(BenchMode::Quick.kernels().len() < BenchMode::Full.kernels().len());
    }

    #[test]
    fn harness_writes_error_json_when_dropped_by_panic() {
        let dir = std::env::temp_dir().join(format!("mapzero_bench_drop_{}", std::process::id()));
        std::env::set_var("MAPZERO_RESULTS_DIR", &dir);
        let result = std::panic::catch_unwind(|| {
            let _h = Harness::begin("drop_test", "drop test");
            panic!("boom");
        });
        // The harness was dropped by the unwind, so the JSON is already
        // on disk; restore the env before asserting.
        std::env::remove_var("MAPZERO_RESULTS_DIR");
        assert!(result.is_err());
        let text = fs::read_to_string(dir.join("BENCH_drop_test.json")).unwrap();
        assert!(text.contains("\"bench\":\"drop_test\""), "{text}");
        assert!(text.contains("\"error\":\"bench panicked before finish\""), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_all_mappers_produces_four_reports() {
        let dfg = mapzero_dfg::suite::by_name("sum").unwrap();
        let cgra = mapzero_arch::presets::hycube();
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        let reports =
            run_all_mappers(&mut compiler, &dfg, &cgra, Duration::from_secs(20));
        assert_eq!(reports.len(), 4);
        let names: Vec<&str> = reports.iter().map(|r| r.mapper.as_str()).collect();
        assert_eq!(names, ["ILP", "SA", "LISA", "MapZero"]);
    }
}
