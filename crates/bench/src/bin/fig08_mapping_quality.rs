//! Reproduces **Fig. 8 (a)–(d)**: II ratio of CGRA-ME (ILP), CGRA-ME
//! (SA), LISA and MapZero relative to MII on HReA, MorphoSys, ADRES and
//! HyCube. A ratio of 1.0 is optimal; 0.0 marks a failed mapping
//! ("II of failed mapping is set to 0").

use mapzero_bench::{headtohead_results, print_table, write_csv, BenchMode, Harness};

fn main() {
    let mode = BenchMode::from_env();
    let h = Harness::begin(
        "fig08_mapping_quality",
        format!("Fig. 8: II ratio relative to MII ({mode:?} mode)"),
    );
    let results = headtohead_results(mode);

    let fabrics: Vec<String> = {
        let mut f: Vec<String> = results.iter().map(|r| r.fabric.clone()).collect();
        f.dedup();
        f.sort();
        f.dedup();
        f
    };
    let mappers = ["ILP", "SA", "LISA", "MapZero"];
    let mut csv = vec![vec![
        "fabric".to_owned(),
        "kernel".to_owned(),
        "mapper".to_owned(),
        "ii_ratio".to_owned(),
    ]];
    for fabric in &fabrics {
        h.note(format!("--- {fabric} ---"));
        let kernels: Vec<String> = {
            let mut k: Vec<String> = results
                .iter()
                .filter(|r| &r.fabric == fabric)
                .map(|r| r.kernel.clone())
                .collect();
            k.dedup();
            k
        };
        let header: Vec<&str> =
            std::iter::once("kernel").chain(mappers.iter().copied()).collect();
        let mut rows = Vec::new();
        for kernel in &kernels {
            let mut row = vec![kernel.clone()];
            for mapper in mappers {
                let ratio = results
                    .iter()
                    .find(|r| &r.fabric == fabric && &r.kernel == kernel && r.mapper == mapper)
                    .map_or(0.0, mapzero_bench::RawResult::ii_ratio);
                row.push(format!("{ratio:.2}"));
                csv.push(vec![
                    fabric.clone(),
                    kernel.clone(),
                    mapper.to_owned(),
                    format!("{ratio:.4}"),
                ]);
            }
            rows.push(row);
        }
        print_table(&header, &rows);
        // Per-mapper success counts, the qualitative claim of §4.2.
        for mapper in mappers {
            let (ok, total) = results
                .iter()
                .filter(|r| &r.fabric == fabric && r.mapper == mapper)
                .fold((0usize, 0usize), |(ok, total), r| {
                    (ok + usize::from(r.ii != 0), total + 1)
                });
            h.note(format!("  {mapper}: {ok}/{total} mapped"));
        }
        println!();
    }
    write_csv("fig08_mapping_quality", &csv);
    h.finish();
}
