//! Reproduces **Fig. 15**: mapping quality (II ratio vs CGRA-ME ILP),
//! compilation-time ratio, and MapZero's backtracking count on the
//! heterogeneous architecture of Fig. 14.

use mapzero_bench::{print_table, run_or_fail, write_csv, BenchMode, Harness};
use mapzero_baselines::ExactMapper;
use mapzero_core::Compiler;

fn main() {
    let mode = BenchMode::from_env();
    let limit = mode.time_limit();
    let cgra = mapzero_arch::presets::heterogeneous();
    let h = Harness::begin(
        "fig15_heterogeneous",
        format!(
            "Fig. 15: MapZero vs CGRA-ME (ILP) on the Fig. 14 heterogeneous CGRA\n({mode:?} mode, {limit:?} per attempt)"
        ),
    );

    let mut compiler = Compiler::new(mode.mapzero_config());
    let header =
        ["kernel", "MII", "ILP II", "MZ II", "II ratio", "ILP secs", "MZ secs", "time ratio", "MZ backtracks"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    for name in mode.kernels() {
        let dfg = mapzero_dfg::suite::by_name(name).expect("kernel exists");
        h.progress(format_args!("running {name}"));
        let mut ilp = ExactMapper::default();
        let r_ilp = run_or_fail(&mut ilp, &dfg, &cgra, limit);
        let r_mz = compiler
            .map_with_limit(&dfg, &cgra, limit)
            .expect("heterogeneous fabric supports all op classes");
        let fmt_ii = |ii: Option<u32>| ii.map_or_else(|| "-".to_owned(), |v| v.to_string());
        let ii_ratio = match (r_ilp.achieved_ii(), r_mz.achieved_ii()) {
            (Some(a), Some(b)) => format!("{:.2}", f64::from(a) / f64::from(b)),
            _ => "-".to_owned(),
        };
        let time_ratio = if r_mz.elapsed.as_secs_f64() > 0.0 && r_ilp.success() {
            format!("{:.1}x", r_ilp.elapsed.as_secs_f64() / r_mz.elapsed.as_secs_f64().max(1e-9))
        } else {
            "-".to_owned()
        };
        let row = vec![
            name.to_owned(),
            r_mz.mii.to_string(),
            fmt_ii(r_ilp.achieved_ii()),
            fmt_ii(r_mz.achieved_ii()),
            ii_ratio,
            format!("{:.2}", r_ilp.elapsed.as_secs_f64()),
            format!("{:.2}", r_mz.elapsed.as_secs_f64()),
            time_ratio,
            r_mz.backtracks.to_string(),
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    print_table(&header, &rows);
    h.note("\nII ratio 1.00 = MapZero matches the exact mapper's (optimal) II");
    write_csv("fig15_heterogeneous", &csv);
    h.finish();
}
