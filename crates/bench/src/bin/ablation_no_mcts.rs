//! Reproduces the **§4.7 ablation study**: remove MCTS (greedy policy
//! placement with backtracking only) and count how many of the
//! kernel × fabric cases still reach MII in time. The paper reports
//! 35/52 without MCTS versus 52/52 with it.

use mapzero_bench::{print_table, write_csv, BenchMode, Harness};
use mapzero_core::network::MapZeroNet;
use mapzero_core::{AgentConfig, MapZeroAgent, Problem};
use std::collections::HashMap;

fn main() {
    let mode = BenchMode::from_env();
    let limit = mode.time_limit();
    let h = Harness::begin(
        "ablation_no_mcts",
        format!("§4.7 ablation: MapZero with and without MCTS ({mode:?} mode)"),
    );

    let fabrics = mapzero_arch::presets::evaluation_fabrics();
    let kernels = mode.kernels();
    let config = mode.mapzero_config();

    let mut nets: HashMap<usize, MapZeroNet> = HashMap::new();
    let header = ["fabric", "kernel", "with MCTS", "without MCTS"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    let mut with_ok = 0usize;
    let mut without_ok = 0usize;
    let mut total = 0usize;
    for cgra in &fabrics {
        let net = nets
            .entry(cgra.pe_count())
            .or_insert_with(|| MapZeroNet::new(cgra.pe_count(), config.net));
        for name in &kernels {
            let dfg = mapzero_dfg::suite::by_name(name).expect("kernel exists");
            h.progress(format_args!("running {} on {}", name, cgra.name()));
            let Ok(mii) = Problem::mii(&dfg, cgra) else { continue };
            total += 1;
            let mut outcome = ["fail"; 2];
            for (i, use_mcts) in [true, false].into_iter().enumerate() {
                // Modest backtracking and no systematic-search fallback:
                // the ablation isolates per-decision quality (§4.7), not
                // the DFS safety net.
                let agent_config = AgentConfig {
                    use_mcts,
                    backtrack_budget: 48,
                    mcts_backtrack_cutoff: u64::MAX,
                    ..config.agent
                };
                let agent = MapZeroAgent::new(net, agent_config);
                // Same II climb as the compiler.
                let mut success = false;
                for ii in mii..=mii + config.max_extra_ii {
                    let Ok(problem) = Problem::new(&dfg, cgra, ii) else { continue };
                    let result = agent.run_episode(&problem, limit);
                    if let Some(m) = result.mapping {
                        success = m.ii == mii; // the ablation counts MII hits
                        break;
                    }
                    if result.timed_out {
                        break;
                    }
                }
                outcome[i] = if success { "MII" } else { "fail" };
                if success {
                    if use_mcts {
                        with_ok += 1;
                    } else {
                        without_ok += 1;
                    }
                }
            }
            let row = vec![
                cgra.name().to_owned(),
                (*name).to_owned(),
                outcome[0].to_owned(),
                outcome[1].to_owned(),
            ];
            csv.push(row.clone());
            rows.push(row);
        }
    }
    print_table(&header, &rows);
    h.note(format!(
        "\nwith MCTS: {with_ok}/{total} reached MII; without MCTS: {without_ok}/{total}"
    ));
    h.note("(paper: 52/52 with MCTS vs 35/52 without)");
    write_csv("ablation_no_mcts", &csv);
    h.finish();
}
