//! Reproduces **Table 2**: statistics of the benchmark DFGs. The
//! vertex/edge counts are asserted against the paper's numbers.

use mapzero_bench::{print_table, write_csv, Harness};
use mapzero_dfg::suite;

fn main() {
    let h = Harness::begin("table2_dfg_stats", "Table 2: Statistics of the benchmark DFGs (u = unrolled)");
    let header = ["Benchmark", "Vertices", "Edges", "Self-cycles", "Max fan-out", "Mem ops"];
    let mut rows = Vec::new();
    for spec in &suite::KERNELS {
        let dfg = suite::build(spec);
        assert_eq!(dfg.node_count(), spec.vertices, "{}", spec.name);
        assert_eq!(dfg.edge_count(), spec.edges, "{}", spec.name);
        let self_cycles = dfg.node_ids().filter(|&u| dfg.node(u).has_self_cycle).count();
        rows.push(vec![
            spec.name.to_owned(),
            dfg.node_count().to_string(),
            dfg.edge_count().to_string(),
            self_cycles.to_string(),
            mapzero_dfg::random::max_fanout(&dfg).to_string(),
            dfg.class_counts()[mapzero_dfg::OpClass::Memory.index()].to_string(),
        ]);
    }
    print_table(&header, &rows);
    h.note("\nall vertex/edge counts match Table 2 of the paper");

    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    csv.extend(rows);
    write_csv("table2_dfg_stats", &csv);
    h.finish();
}
