//! Convenience driver: regenerate every table and figure in sequence by
//! spawning the individual harness binaries (so each writes its own CSV
//! and can also be run standalone).

use mapzero_bench::Harness;
use std::process::Command;

const HARNESSES: [&str; 12] = [
    "table1_architectures",
    "table2_dfg_stats",
    "search_space",
    "fig08_mapping_quality",
    "fig09_backtracks",
    "fig10_backtracks_vs_annealing",
    "fig11_compile_time",
    "fig12_learning_curves",
    "fig13_scalability",
    "fig15_heterogeneous",
    "ablation_no_mcts",
    "ablation_design",
];

fn main() {
    let h = Harness::begin("run_all", "Regenerating every table and figure");
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("binary directory");
    let mut failures = Vec::new();
    for name in HARNESSES {
        println!("\n================ {name} ================\n");
        let status = Command::new(dir.join(name)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("could not launch {name}: {e} (build with `cargo build --release -p mapzero-bench`)");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        h.note(format!("\nall {} experiment harnesses completed", HARNESSES.len()));
        h.finish();
    } else {
        eprintln!("\nfailed harnesses: {failures:?}");
        h.finish();
        std::process::exit(1);
    }
}
