//! Load characterization of the compile service: offered load at 1×,
//! 4× and 16× of a base burst against a fixed-capacity service, writing
//! throughput, latency percentiles and shed rate per tier into
//! `results/BENCH_serve.json`.
//!
//! The service is deliberately small (2 workers, 16-deep queue) so the
//! 16× tier demonstrates admission control doing its job: excess
//! requests are answered `rejected` immediately instead of growing an
//! unbounded backlog. `MAPZERO_SERVE_LOAD_BASE` overrides the base
//! burst size (default 8).

use mapzero_bench::{print_table, Harness};
use mapzero_obs::json::Json;
use mapzero_obs::QuantileSketch;
use mapzero_serve::queue::QueueConfig;
use mapzero_serve::service::{MapService, ServeConfig};
use mapzero_serve::wire::{MapRequest, Outcome};
use std::time::{Duration, Instant};

const KERNELS: [&str; 4] = ["sum", "mac", "accumulate", "conv2"];
const TENANTS: [(&str, u32); 3] = [("alpha", 2), ("beta", 1), ("gamma", 1)];

fn burst(n: usize) -> Vec<MapRequest> {
    (0..n)
        .map(|i| {
            let (tenant, weight) = TENANTS[i % TENANTS.len()];
            let mut req = MapRequest::new(
                &format!("{tenant}-{i}"),
                tenant,
                mapzero_dfg::suite::by_name(KERNELS[i % KERNELS.len()])
                    .expect("kernel exists"),
                mapzero_arch::presets::hrea(),
            );
            req.weight = weight;
            req.deadline = Some(Duration::from_secs(60));
            req
        })
        .collect()
}

struct TierResult {
    load: usize,
    offered: usize,
    shed: usize,
    deadline_miss: usize,
    /// Mapped responses the independent validator rejected (must stay 0
    /// on a healthy service — the load test doubles as a legality gate).
    validate_fail: u64,
    elapsed: Duration,
    /// Mapped-request end-to-end latency (queue wait + service), µs.
    latency: QuantileSketch,
}

impl TierResult {
    fn completed(&self) -> usize {
        usize::try_from(self.latency.count()).unwrap_or(usize::MAX)
    }

    fn throughput(&self) -> f64 {
        self.completed() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.offered as f64
    }

    fn p50_ms(&self) -> f64 {
        self.latency.p50() as f64 / 1e3
    }

    fn p99_ms(&self) -> f64 {
        self.latency.p99() as f64 / 1e3
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("load", Json::Num(self.load as f64)),
            ("offered", Json::Num(self.offered as f64)),
            ("completed", Json::Num(self.completed() as f64)),
            ("shed", Json::Num(self.shed as f64)),
            ("deadline_miss", Json::Num(self.deadline_miss as f64)),
            ("validate_fail", Json::Num(self.validate_fail as f64)),
            ("shed_rate", Json::Num(self.shed_rate())),
            ("throughput_rps", Json::Num(self.throughput())),
            ("p50_ms", Json::Num(self.p50_ms())),
            ("p99_ms", Json::Num(self.p99_ms())),
        ])
    }
}

fn run_tier(load: usize, base: usize) -> TierResult {
    // A fresh fixed-capacity service per tier: the comparison is
    // offered load against constant capacity, not warm-cache carryover.
    let service = MapService::start(ServeConfig {
        workers: 2,
        queue: QueueConfig { capacity: 16, tenant_inflight_cap: 8 },
        ..ServeConfig::fast_test()
    });
    let offered = base * load;
    let started = Instant::now();
    let responses = service.process_batch(burst(offered));
    let elapsed = started.elapsed();
    let validate_fail =
        service.stats().validate_fail.load(std::sync::atomic::Ordering::Relaxed);
    service.shutdown();
    assert_eq!(validate_fail, 0, "healthy service never emits an invalid mapping");

    // Streaming sketch instead of a sorted raw-sample vector: same
    // mergeable estimator the service itself exports.
    let mut latency = QuantileSketch::new();
    for r in responses.iter().filter(|r| r.outcome == Outcome::Mapped) {
        latency.record_duration_us(r.queue_wait + r.service_time);
    }
    let shed = responses.iter().filter(|r| r.outcome == Outcome::Rejected).count();
    let deadline_miss =
        responses.iter().filter(|r| r.outcome == Outcome::Deadline).count();
    assert_eq!(responses.len(), offered, "every offered request is answered");
    TierResult { load, offered, shed, deadline_miss, validate_fail, elapsed, latency }
}

fn main() {
    let harness = Harness::begin(
        "serve",
        "Compile service under load: throughput, latency, shedding (2 workers, queue depth 16)",
    );
    let base = std::env::var("MAPZERO_SERVE_LOAD_BASE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .max(1);

    let mut tiers = Vec::new();
    for load in [1usize, 4, 16] {
        harness.progress(format!("offered load {load}x ({} requests)", base * load));
        tiers.push(run_tier(load, base));
    }

    let rows: Vec<Vec<String>> = tiers
        .iter()
        .map(|t| {
            vec![
                format!("{}x", t.load),
                t.offered.to_string(),
                t.completed().to_string(),
                format!("{:.1}%", t.shed_rate() * 100.0),
                t.deadline_miss.to_string(),
                format!("{:.1}", t.throughput()),
                format!("{:.1}", t.p50_ms()),
                format!("{:.1}", t.p99_ms()),
            ]
        })
        .collect();
    print_table(
        &["load", "offered", "completed", "shed", "miss", "rps", "p50 ms", "p99 ms"],
        &rows,
    );
    harness.note(
        "\nAdmission control sheds excess burst instead of queueing it: the \
         rejected fraction grows with offered load while completed-request \
         latency stays bounded by queue depth, not burst size.",
    );

    harness.field("base_burst", Json::Num(base as f64));
    harness.field("tiers", Json::Arr(tiers.iter().map(TierResult::to_json).collect()));
    harness.finish();
}
