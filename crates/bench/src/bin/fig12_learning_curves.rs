//! Reproduces **Fig. 12**: learning curves during self-play training on
//! an HReA-class fabric — (a) average total loss, (b) value loss,
//! (c) policy loss, (d) average reward, (e) routing penalty in
//! evaluation (> −100 means a successful mapping), (f) learning rate.

use mapzero_bench::{print_table, write_csv, BenchMode, Harness};
use mapzero_core::network::NetConfig;
use mapzero_core::{MctsConfig, TrainConfig, Trainer};
use mapzero_nn::LrSchedule;
use std::time::Duration;

fn main() {
    let mode = BenchMode::from_env();
    let (epochs, episodes, net) = match mode {
        BenchMode::Quick => (10, 4, NetConfig::tiny()),
        BenchMode::Full => (60, 12, NetConfig::default()),
    };
    let h = Harness::begin(
        "fig12_learning_curves",
        format!("Fig. 12: learning curves on HReA ({mode:?} mode: {epochs} epochs)"),
    );

    let cgra = mapzero_arch::presets::hrea();
    let config = TrainConfig {
        epochs,
        episodes_per_epoch: episodes,
        batch_size: 32,
        updates_per_epoch: 4,
        replay_capacity: 10_000,
        lr: LrSchedule { initial: 3e-3, decay: 0.75, step_every: epochs.max(8) / 8, floor: 2e-4 },
        curriculum_nodes: (3, if mode == BenchMode::Quick { 10 } else { 30 }),
        curriculum_per_size: 2,
        mcts: MctsConfig { simulations: 16, ..MctsConfig::default() },
        episode_deadline: Duration::from_secs(15),
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(cgra, net, config);
    let metrics = trainer.run().expect("learning-curve training converges");

    let header =
        ["epoch", "total loss", "value loss", "policy loss", "avg reward", "eval penalty", "lr", "success"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    for e in &metrics.epochs {
        let row = vec![
            e.epoch.to_string(),
            format!("{:.4}", e.total_loss),
            format!("{:.4}", e.value_loss),
            format!("{:.4}", e.policy_loss),
            format!("{:.2}", e.avg_reward),
            format!("{:.2}", e.eval_penalty),
            format!("{:.5}", e.lr),
            format!("{:.2}", e.success_rate),
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    print_table(&header, &rows);

    // Skip warm-up epochs that ran no gradient updates (buffer filling).
    let trained: Vec<_> =
        metrics.epochs.iter().filter(|e| e.total_loss > 0.0).collect();
    if let (Some(first), Some(last)) = (trained.first(), trained.last()) {
        h.note(format!(
            "\ntrend: total loss {:.3} -> {:.3}, reward {:.1} -> {:.1}, lr {:.4} -> {:.4}",
            first.total_loss, last.total_loss, first.avg_reward, last.avg_reward,
            first.lr, last.lr,
        ));
        h.note("routing penalty > -100 in evaluation means a valid mapping (§4.4)");
    }
    write_csv("fig12_learning_curves", &csv);
    h.finish();
}
