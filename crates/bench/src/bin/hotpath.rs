//! Inference hot-path benchmark: the tape-free forward + DFG-branch
//! memo + MCTS prediction cache against their naive counterparts.
//!
//! Two measurements:
//!
//! 1. **Prediction throughput** — `predict_reference` (autodiff tape,
//!    per-op allocations) vs `predict` (InferCtx scratch reuse, memoized
//!    DFG branch) on a fixed observation, in predictions/second.
//! 2. **End-to-end compile time** — the Fig. 11 MapZero configuration on
//!    a workload kernel, with the MCTS prediction cache off vs on.
//!
//! Results land in `results/BENCH_hotpath.json` with the run's metric
//! deltas (including the `search.predict_cache.{hit,miss}` and
//! `nn.dfg_embed.{hit,miss}` counters), so `scripts/ci.sh` can
//! schema-check the file and flag throughput regressions against the
//! committed baseline.

use mapzero_bench::{BenchMode, Harness};
use mapzero_core::embed::observe;
use mapzero_core::network::{MapZeroNet, NetConfig};
use mapzero_core::{Compiler, MapEnv, Problem};
use mapzero_obs::json::Json;
use std::time::{Duration, Instant};

/// Run `f` repeatedly for at least `budget`, returning calls/second.
fn throughput(budget: Duration, mut f: impl FnMut()) -> f64 {
    // Warm-up: fill scratch buffers / memo so steady state is measured.
    f();
    let started = Instant::now();
    let mut calls = 0u64;
    while started.elapsed() < budget {
        f();
        calls += 1;
    }
    calls as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let mode = BenchMode::from_env();
    let h = Harness::begin("hotpath", format!("Inference hot path: before/after ({mode:?} mode)"));
    let budget = match mode {
        BenchMode::Quick => Duration::from_millis(300),
        BenchMode::Full => Duration::from_secs(2),
    };

    // --- 1. Raw prediction throughput -------------------------------
    let dfg = mapzero_dfg::suite::by_name("conv3").expect("kernel exists");
    let cgra = mapzero_arch::presets::hrea();
    let mii = Problem::mii(&dfg, &cgra).expect("mappable");
    let problem = Problem::new(&dfg, &cgra, mii).expect("schedulable");
    let env = MapEnv::new(&problem);
    let obs = observe(&env);
    let net = MapZeroNet::new(cgra.pe_count(), NetConfig::default());
    assert_eq!(
        net.predict(&obs),
        net.predict_reference(&obs),
        "hot path must stay bit-identical to the reference"
    );

    h.progress("measuring predict_reference (tape-based)");
    let ref_rate = throughput(budget, || {
        std::hint::black_box(net.predict_reference(&obs));
    });
    h.progress("measuring predict (tape-free + memo)");
    let fast_rate = throughput(budget, || {
        std::hint::black_box(net.predict(&obs));
    });
    let predict_speedup = fast_rate / ref_rate.max(f64::MIN_POSITIVE);
    h.note(format!(
        "predictions/sec: reference {ref_rate:.0}, fast {fast_rate:.0} ({predict_speedup:.1}x)"
    ));
    h.field("predictions_per_sec_reference", Json::Num(ref_rate));
    h.field("predictions_per_sec_fast", Json::Num(fast_rate));
    h.field("predict_speedup", Json::Num(predict_speedup));

    // --- 2. End-to-end compile time (Fig. 11 workload) ---------------
    // Network-guided search (no playout early exit — the same search
    // the self-play trainer runs): every placement decision is a full
    // MCTS pass, so compile time is dominated by inference and the
    // prediction cache's end-to-end effect is visible.
    let kernel = match mode {
        BenchMode::Quick => "conv3",
        BenchMode::Full => "cap",
    };
    let dfg = mapzero_dfg::suite::by_name(kernel).expect("kernel exists");
    let limit = mode.time_limit();
    // `before` reproduces the pre-overhaul pipeline (tape-based forward,
    // naive featurization, no prediction cache); `after` is the full
    // hot path. Both produce bit-identical mappings.
    let compile_secs = |label: &str, before: bool| -> f64 {
        // Best of three runs per arm, damping scheduler noise on the
        // short quick-mode compiles.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut config = mode.mapzero_config();
            config.agent.mcts.use_reference_forward = before;
            config.agent.mcts.cache_predictions = !before;
            config.agent.mcts.playout = false;
            // No pretraining: this measures the search path, not training.
            config.pretrain = None;
            let mut compiler = Compiler::new(config);
            let started = Instant::now();
            let report = compiler.map_with_limit(&dfg, &cgra, limit);
            let secs = started.elapsed().as_secs_f64();
            let ii = report.ok().and_then(|r| r.achieved_ii()).unwrap_or(0);
            h.note(format!(
                "compile {kernel} on {} ({label}): {secs:.3} s, II={ii}",
                cgra.name()
            ));
            best = best.min(secs);
        }
        best
    };
    h.progress(format!("compiling {kernel} with the pre-overhaul inference path"));
    let before = compile_secs("before: tape + naive observe", true);
    h.progress(format!("compiling {kernel} with the hot path + prediction cache"));
    let after = compile_secs("after: tape-free + cache", false);
    let compile_speedup = before / after.max(f64::MIN_POSITIVE);
    h.note(format!("end-to-end compile speedup: {compile_speedup:.2}x"));
    h.field("compile_kernel", Json::from(kernel));
    h.field("compile_secs_before", Json::Num(before));
    h.field("compile_secs_after", Json::Num(after));
    h.field("compile_speedup", Json::Num(compile_speedup));

    h.finish();
}
