//! Inference hot-path benchmark: the tape-free forward + DFG-branch
//! memo + MCTS prediction cache against their naive counterparts.
//!
//! Three measurements:
//!
//! 1. **Prediction throughput** — `predict_reference` (autodiff tape,
//!    per-op allocations) vs `predict` (InferCtx scratch reuse, memoized
//!    DFG branch) on a fixed observation, in predictions/second.
//! 2. **Batched leaf evaluation scaling** — `predict_batch` at batch
//!    sizes 1/4/8/16 against the one-at-a-time scalar path over
//!    distinct episode states (the MCTS leaf workload). Each batch size
//!    is measured as interleaved scalar/batched pairs and summarized as
//!    the median of per-pair throughput ratios, which cancels slow
//!    frequency/thermal drift that a sequential A-then-B layout folds
//!    into the comparison.
//! 3. **End-to-end compile time** — the Fig. 11 MapZero configuration on
//!    a workload kernel, with the MCTS prediction cache off vs on.
//!
//! Results land in `results/BENCH_hotpath.json` with the run's metric
//! deltas (including the `search.predict_cache.{hit,miss}` and
//! `nn.dfg_embed.{hit,miss}` counters) plus the `batch_scaling` table
//! and `batch8_speedup`, so `scripts/ci.sh` can schema-check the file
//! and flag throughput regressions against the committed baseline.

use mapzero_bench::{BenchMode, Harness};
use mapzero_core::embed::observe;
use mapzero_core::network::{MapZeroNet, NetConfig};
use mapzero_core::{Compiler, MapEnv, Problem};
use mapzero_obs::json::Json;
use std::time::{Duration, Instant};

/// Median of a sample (sorted in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Run `f` repeatedly for at least `budget`, returning calls/second.
fn throughput(budget: Duration, mut f: impl FnMut()) -> f64 {
    // Warm-up: fill scratch buffers / memo so steady state is measured.
    f();
    let started = Instant::now();
    let mut calls = 0u64;
    while started.elapsed() < budget {
        f();
        calls += 1;
    }
    calls as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let mode = BenchMode::from_env();
    let h = Harness::begin("hotpath", format!("Inference hot path: before/after ({mode:?} mode)"));
    let budget = match mode {
        BenchMode::Quick => Duration::from_millis(300),
        BenchMode::Full => Duration::from_secs(2),
    };

    // --- 1. Raw prediction throughput -------------------------------
    let dfg = mapzero_dfg::suite::by_name("conv3").expect("kernel exists");
    let cgra = mapzero_arch::presets::hrea();
    let mii = Problem::mii(&dfg, &cgra).expect("mappable");
    let problem = Problem::new(&dfg, &cgra, mii).expect("schedulable");
    let env = MapEnv::new(&problem);
    let obs = observe(&env);
    let net = MapZeroNet::new(cgra.pe_count(), NetConfig::default());
    assert_eq!(
        net.predict(&obs),
        net.predict_reference(&obs),
        "hot path must stay bit-identical to the reference"
    );

    h.progress("measuring predict_reference (tape-based)");
    let ref_rate = throughput(budget, || {
        std::hint::black_box(net.predict_reference(&obs));
    });
    h.progress("measuring predict (tape-free + memo)");
    let fast_rate = throughput(budget, || {
        std::hint::black_box(net.predict(&obs));
    });
    let predict_speedup = fast_rate / ref_rate.max(f64::MIN_POSITIVE);
    h.note(format!(
        "predictions/sec: reference {ref_rate:.0}, fast {fast_rate:.0} ({predict_speedup:.1}x)"
    ));
    h.field("predictions_per_sec_reference", Json::Num(ref_rate));
    h.field("predictions_per_sec_fast", Json::Num(fast_rate));
    h.field("predict_speedup", Json::Num(predict_speedup));

    // --- 2. Batched leaf evaluation scaling --------------------------
    // The MCTS leaf workload: distinct mid-episode states of one
    // problem (so the DFG memo never short-circuits the comparison —
    // real leaves all differ in placement). The scalar arm is the
    // pre-batching configuration — scalar kernels (`SimdKind::Scalar`,
    // libm tanh, sequential reductions), one `predict` per leaf. The
    // batched arm is this PR's configuration — SIMD kernels
    // (`SimdKind::Lanes8`) plus `predict_batch` over K leaves. Kernel
    // kinds are switched per arm via `simd::force_kind`, then restored.
    let mut states = Vec::new();
    {
        let mut walk = MapEnv::new(&problem);
        while states.len() < 16 && !walk.done() {
            let legal = walk.legal_actions();
            if legal.is_empty() {
                break;
            }
            states.push(observe(&walk));
            walk.step(legal[0]);
        }
    }
    assert!(!states.is_empty(), "conv3 episode yields at least one state");
    let leaf_obs: Vec<&mapzero_core::embed::Observation> = states.iter().collect();
    let default_kind = mapzero_nn::simd::kind();
    let pairs = 5usize;
    let slice = budget / 16;
    let mut scaling = Vec::new();
    let mut batch8_speedup = f64::NAN;
    for &k in &[1usize, 4, 8, 16] {
        h.progress(format!("measuring predict_batch at K={k} (interleaved pairs)"));
        // Pre-built K-chunks cycling the episode states.
        let chunks: Vec<Vec<&mapzero_core::embed::Observation>> = (0..8)
            .map(|c| (0..k).map(|j| leaf_obs[(c * k + j) % leaf_obs.len()]).collect())
            .collect();
        let mut ratios = Vec::new();
        let mut rates = Vec::new();
        for p in 0..pairs {
            let mut cursor = 0usize;
            let mut scalar_arm = || {
                mapzero_nn::simd::force_kind(mapzero_nn::simd::SimdKind::Scalar);
                let rate = throughput(slice, || {
                    std::hint::black_box(net.predict(leaf_obs[cursor % leaf_obs.len()]));
                    cursor += 1;
                });
                mapzero_nn::simd::force_kind(default_kind);
                rate
            };
            let mut chunk = 0usize;
            let mut batch_arm = || {
                mapzero_nn::simd::force_kind(mapzero_nn::simd::SimdKind::Lanes8);
                let rate = throughput(slice, || {
                    std::hint::black_box(net.predict_batch(&chunks[chunk % chunks.len()]));
                    chunk += 1;
                }) * k as f64;
                mapzero_nn::simd::force_kind(default_kind);
                rate
            };
            // Alternate arm order per pair so drift within a pair
            // cancels across the median instead of biasing one arm.
            let (scalar_rate, batch_rate) = if p % 2 == 0 {
                let s = scalar_arm();
                (s, batch_arm())
            } else {
                let b = batch_arm();
                (scalar_arm(), b)
            };
            ratios.push(batch_rate / scalar_rate.max(f64::MIN_POSITIVE));
            rates.push(batch_rate);
        }
        let speedup = median(&mut ratios);
        let rate = median(&mut rates);
        h.note(format!("batch {k}: {rate:.0} predictions/sec, {speedup:.2}x vs scalar"));
        if k == 8 {
            batch8_speedup = speedup;
        }
        scaling.push(Json::obj(vec![
            ("batch", Json::Num(k as f64)),
            ("predictions_per_sec", Json::Num(rate)),
            ("speedup_vs_scalar", Json::Num(speedup)),
        ]));
    }
    h.field("batch_scaling", Json::Arr(scaling));
    h.field("batch8_speedup", Json::Num(batch8_speedup));

    // --- 3. End-to-end compile time (Fig. 11 workload) ---------------
    // Network-guided search (no playout early exit — the same search
    // the self-play trainer runs): every placement decision is a full
    // MCTS pass, so compile time is dominated by inference and the
    // prediction cache's end-to-end effect is visible.
    let kernel = match mode {
        BenchMode::Quick => "conv3",
        BenchMode::Full => "cap",
    };
    let dfg = mapzero_dfg::suite::by_name(kernel).expect("kernel exists");
    let limit = mode.time_limit();
    // `before` reproduces the pre-overhaul pipeline (tape-based forward,
    // naive featurization, no prediction cache); `after` is the full
    // hot path. Both produce bit-identical mappings.
    let compile_secs = |label: &str, before: bool| -> f64 {
        // Best of three runs per arm, damping scheduler noise on the
        // short quick-mode compiles.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut config = mode.mapzero_config();
            config.agent.mcts.use_reference_forward = before;
            config.agent.mcts.cache_predictions = !before;
            config.agent.mcts.playout = false;
            // No pretraining: this measures the search path, not training.
            config.pretrain = None;
            let mut compiler = Compiler::new(config);
            let started = Instant::now();
            let report = compiler.map_with_limit(&dfg, &cgra, limit);
            let secs = started.elapsed().as_secs_f64();
            let ii = report.ok().and_then(|r| r.achieved_ii()).unwrap_or(0);
            h.note(format!(
                "compile {kernel} on {} ({label}): {secs:.3} s, II={ii}",
                cgra.name()
            ));
            best = best.min(secs);
        }
        best
    };
    h.progress(format!("compiling {kernel} with the pre-overhaul inference path"));
    let before = compile_secs("before: tape + naive observe", true);
    h.progress(format!("compiling {kernel} with the hot path + prediction cache"));
    let after = compile_secs("after: tape-free + cache", false);
    let compile_speedup = before / after.max(f64::MIN_POSITIVE);
    h.note(format!("end-to-end compile speedup: {compile_speedup:.2}x"));
    h.field("compile_kernel", Json::from(kernel));
    h.field("compile_secs_before", Json::Num(before));
    h.field("compile_secs_after", Json::Num(after));
    h.field("compile_speedup", Json::Num(compile_speedup));

    // --- 4. Candidate pruning (DESIGN.md §13) ------------------------
    // Same compile workload, full hot path in both arms; only
    // `MctsConfig::prune_candidates` flips. Interleaved pairs with
    // alternating arm order, summarized as the median per-pair ratio —
    // the same drift-cancelling layout as the batch scaling above. The
    // 16×16 headline number lives in `BENCH_search_space.json`; this
    // field tracks the small-fabric (HReA) cost/benefit so a pruning
    // regression shows up even in the quick smoke.
    let prune_arm = |prune: bool| -> f64 {
        let mut config = mode.mapzero_config();
        config.agent.mcts.prune_candidates = prune;
        config.agent.mcts.playout = false;
        config.pretrain = None;
        let mut compiler = Compiler::new(config);
        let started = Instant::now();
        let _ = compiler.map_with_limit(&dfg, &cgra, limit);
        started.elapsed().as_secs_f64()
    };
    let mut prune_ratios = Vec::new();
    for p in 0..pairs {
        h.progress(format!("compiling {kernel} prune off/on (pair {}/{pairs})", p + 1));
        let (off, on) = if p % 2 == 0 {
            let off = prune_arm(false);
            (off, prune_arm(true))
        } else {
            let on = prune_arm(true);
            (prune_arm(false), on)
        };
        prune_ratios.push(off / on.max(f64::MIN_POSITIVE));
    }
    let prune_speedup = median(&mut prune_ratios);
    h.note(format!("candidate pruning compile speedup on {}: {prune_speedup:.2}x", cgra.name()));
    h.field("prune_speedup", Json::Num(prune_speedup));

    h.finish();
}
