//! Reproduces **Fig. 13**: compilation time of mapping the unrolled
//! DFGs onto the 8×8 and 16×16 baseline CGRAs. In the paper MapZero
//! finds valid minimal-II mappings on every case while ILP/SA/LISA fail
//! or time out on the large instances.

use mapzero_bench::{print_table, run_all_mappers, write_csv, BenchMode, Harness, RawResult};
use mapzero_core::Compiler;
use std::collections::BTreeMap;

fn main() {
    let mode = BenchMode::from_env();
    let limit = mode.time_limit();
    let h = Harness::begin(
        "fig13_scalability",
        format!(
            "Fig. 13: compilation time for unrolled DFGs on 8x8 / 16x16 baselines\n({mode:?} mode, {limit:?} per attempt)"
        ),
    );

    let fabrics = [
        mapzero_arch::presets::baseline8(),
        mapzero_arch::presets::baseline16(),
    ];
    let mut compiler = Compiler::new(mode.mapzero_config());
    let mut results: Vec<RawResult> = Vec::new();
    for cgra in &fabrics {
        for name in mode.unrolled_kernels() {
            let dfg = mapzero_dfg::suite::by_name(name).expect("kernel exists");
            // The largest instances are only attempted on the fabric
            // that can hold them at a sane II.
            h.progress(format_args!("running {} on {}", name, cgra.name()));
            for report in run_all_mappers(&mut compiler, &dfg, cgra, limit) {
                results.push(RawResult::from_report(&report));
            }
        }
    }

    let header = ["fabric", "kernel", "mapper", "MII", "II", "secs", "status"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    for r in &results {
        let status = if r.ii != 0 {
            "ok"
        } else if r.timed_out {
            "timeout"
        } else {
            "fail"
        };
        let row = vec![
            r.fabric.clone(),
            r.kernel.clone(),
            r.mapper.clone(),
            r.mii.to_string(),
            if r.ii == 0 { "-".to_owned() } else { r.ii.to_string() },
            format!("{:.2}", r.secs),
            status.to_owned(),
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    print_table(&header, &rows);

    // Success summary per mapper.
    let mut summary: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for r in &results {
        let entry = summary.entry(match r.mapper.as_str() {
            "ILP" => "ILP",
            "SA" => "SA",
            "LISA" => "LISA",
            _ => "MapZero",
        }).or_insert((0, 0));
        entry.1 += 1;
        entry.0 += usize::from(r.ii != 0);
    }
    println!();
    for (mapper, (ok, total)) in summary {
        h.note(format!("{mapper}: {ok}/{total} unrolled cases mapped"));
    }
    write_csv("fig13_scalability", &csv);
    h.finish();
}
