//! Reproduces **Fig. 9**: the number of backtracking operations MapZero
//! needs per benchmark on each target architecture.

use mapzero_bench::{headtohead_results, print_table, write_csv, BenchMode, Harness};

fn main() {
    let mode = BenchMode::from_env();
    let h = Harness::begin(
        "fig09_backtracks",
        format!("Fig. 9: MapZero backtracking operations per benchmark ({mode:?} mode)"),
    );
    let results = headtohead_results(mode);
    let mapzero: Vec<_> = results.iter().filter(|r| r.mapper == "MapZero").collect();

    let mut fabrics: Vec<String> = mapzero.iter().map(|r| r.fabric.clone()).collect();
    fabrics.sort();
    fabrics.dedup();
    let mut kernels: Vec<String> = mapzero.iter().map(|r| r.kernel.clone()).collect();
    kernels.dedup();

    let header: Vec<&str> = std::iter::once("kernel")
        .chain(fabrics.iter().map(String::as_str))
        .collect();
    let mut rows = Vec::new();
    let mut csv =
        vec![vec!["kernel".to_owned(), "fabric".to_owned(), "backtracks".to_owned()]];
    for kernel in &kernels {
        let mut row = vec![kernel.clone()];
        for fabric in &fabrics {
            let cell = mapzero
                .iter()
                .find(|r| &r.kernel == kernel && &r.fabric == fabric)
                .map_or_else(|| "-".to_owned(), |r| r.backtracks.to_string());
            csv.push(vec![kernel.clone(), fabric.clone(), cell.clone()]);
            row.push(cell);
        }
        rows.push(row);
    }
    print_table(&header, &rows);
    let total: u64 = mapzero.iter().map(|r| r.backtracks).sum();
    h.note(format!(
        "\ntotal backtracks across {} runs: {} (the agent's decisions are highly accurate)",
        mapzero.len(),
        total
    ));
    write_csv("fig09_backtracks", &csv);
    h.finish();
}
