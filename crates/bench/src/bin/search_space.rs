//! Reproduces the **§2.5.1** search-space size estimates (14 nodes on a
//! 4×4 CGRA ≈ 10¹³ placements, 60 nodes on an 8×8 ≈ 10⁸⁷) and then
//! measures how far the candidate subsystem (DESIGN.md §13) actually
//! shrinks the *explored* space: the Fig. 13 unrolled kernels are
//! compiled on the 16×16 baseline with `MctsConfig::prune_candidates`
//! off and on, as interleaved pairs, and the run records
//!
//! * `prune_speedup` — the median of per-pair compile-time ratios
//!   (unpruned / pruned), which cancels slow frequency/thermal drift a
//!   sequential A-then-B layout would fold into the comparison;
//! * `branching_factor_{unpruned,pruned}` — the measured effective
//!   branching factor per arm (`search.expand.offered` ÷
//!   `mcts.expansions`), i.e. how many actions a freshly expanded MCTS
//!   node offers on average before/after candidate pruning.
//!
//! Everything lands in `results/BENCH_search_space.json` through the
//! shared harness so `scripts/ci.sh` can schema-check the file and
//! flag a pruning regression against the committed baseline.

use mapzero_bench::{print_table, write_csv, BenchMode, Harness};
use mapzero_core::search_space::{log10_placements, log10_placements_temporal};
use mapzero_core::Compiler;
use mapzero_obs::json::Json;
use std::time::Instant;

/// Median of a sample (sorted in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// One compile of `dfg` on `cgra` with pruning forced to `prune`.
/// Returns wall seconds, achieved II (0 = unmapped), and the arm's
/// (offered, expansions) counter deltas for the branching factor.
fn compile_arm(
    mode: BenchMode,
    dfg: &mapzero_dfg::Dfg,
    cgra: &mapzero_arch::Cgra,
    prune: bool,
) -> (f64, u32, (u64, u64)) {
    let mut config = mode.mapzero_config();
    config.agent.mcts.prune_candidates = prune;
    let mut compiler = Compiler::new(config);
    let before = mapzero_obs::metrics::registry().snapshot();
    let started = Instant::now();
    let report = compiler.map_with_limit(dfg, cgra, mode.time_limit());
    let secs = started.elapsed().as_secs_f64();
    let delta = mapzero_obs::metrics::registry().snapshot().delta(&before);
    let offered = delta.counters.get("search.expand.offered").copied().unwrap_or(0);
    let expansions = delta.counters.get("mcts.expansions").copied().unwrap_or(0);
    let ii = report.ok().and_then(|r| r.achieved_ii()).unwrap_or(0);
    (secs, ii, (offered, expansions))
}

fn main() {
    let mode = BenchMode::from_env();
    let h = Harness::begin(
        "search_space",
        format!("§2.5.1: search-space sizes, and candidate pruning's bite ({mode:?} mode)"),
    );

    // --- 1. Static size estimates (the paper's closed forms) ---------
    let cases = [
        ("paper: 14 nodes, 4x4, II=1", 14u64, 16u64, 1u64),
        ("paper: 60 nodes, 8x8, II=1", 60, 64, 1),
        ("arf (54) on HReA (16 PEs), II=4", 54, 16, 4),
        ("huf_u (592) on 16x16 (256 PEs), II=3", 592, 256, 3),
        ("sum (8) on HyCube (16 PEs), II=1", 8, 16, 1),
    ];
    let header = ["case", "nodes", "PEs", "II", "log10(placements)"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    for (label, nodes, pes, ii) in cases {
        let lg = if ii == 1 {
            log10_placements(nodes, pes)
        } else {
            log10_placements_temporal(nodes, pes, ii)
        };
        let cell = lg.map_or_else(|| "infeasible".to_owned(), |v| format!("{v:.1}"));
        let row = vec![
            label.to_owned(),
            nodes.to_string(),
            pes.to_string(),
            ii.to_string(),
            cell,
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    print_table(&header, &rows);
    h.note("\nthe paper quotes 16!/2 ~ 1e13 and 64!/4! ~ 1e87 for the first two rows");
    write_csv("search_space", &csv);

    // --- 2. Measured pruning effect on the 16×16 baseline ------------
    // The Fig. 13 workload is where the estimates above explode, so it
    // is where candidate pruning has to earn its keep. Interleaved
    // on/off pairs per kernel; arm order alternates within the pair so
    // drift cancels in the median instead of biasing one arm.
    let cgra = mapzero_arch::presets::baseline16();
    let pairs = match mode {
        BenchMode::Quick => 3usize,
        BenchMode::Full => 5,
    };
    let dyn_header = ["kernel", "pair", "off secs", "on secs", "ratio", "II off", "II on"];
    let mut dyn_rows = Vec::new();
    let mut ratios = Vec::new();
    // (offered, expansions) accumulated per arm across all compiles.
    let mut bf_off = (0u64, 0u64);
    let mut bf_on = (0u64, 0u64);
    let mut per_kernel = Vec::new();
    for name in mode.unrolled_kernels() {
        let dfg = mapzero_dfg::suite::by_name(name).expect("kernel exists");
        let mut kernel_ratios = Vec::new();
        for p in 0..pairs {
            h.progress(format!("{name} on {}: pair {}/{pairs}", cgra.name(), p + 1));
            let (off, on) = if p % 2 == 0 {
                let off = compile_arm(mode, &dfg, &cgra, false);
                (off, compile_arm(mode, &dfg, &cgra, true))
            } else {
                let on = compile_arm(mode, &dfg, &cgra, true);
                (compile_arm(mode, &dfg, &cgra, false), on)
            };
            let (off_secs, off_ii, (off_offered, off_exp)) = off;
            let (on_secs, on_ii, (on_offered, on_exp)) = on;
            bf_off.0 += off_offered;
            bf_off.1 += off_exp;
            bf_on.0 += on_offered;
            bf_on.1 += on_exp;
            let ratio = off_secs / on_secs.max(f64::MIN_POSITIVE);
            ratios.push(ratio);
            kernel_ratios.push(ratio);
            dyn_rows.push(vec![
                name.to_owned(),
                (p + 1).to_string(),
                format!("{off_secs:.2}"),
                format!("{on_secs:.2}"),
                format!("{ratio:.2}"),
                if off_ii == 0 { "-".to_owned() } else { off_ii.to_string() },
                if on_ii == 0 { "-".to_owned() } else { on_ii.to_string() },
            ]);
        }
        per_kernel.push(Json::obj(vec![
            ("kernel", Json::from(name)),
            ("speedup", Json::Num(median(&mut kernel_ratios))),
        ]));
    }
    println!();
    print_table(&dyn_header, &dyn_rows);

    let prune_speedup = median(&mut ratios);
    let bf = |(offered, exp): (u64, u64)| offered as f64 / (exp as f64).max(1.0);
    let (bf_unpruned, bf_pruned) = (bf(bf_off), bf(bf_on));
    h.note(format!(
        "\ncandidate pruning on {}: {prune_speedup:.2}x compile speedup \
         (median of {} interleaved pair ratios)",
        cgra.name(),
        ratios.len()
    ));
    h.note(format!(
        "effective branching factor: {bf_unpruned:.1} unpruned -> {bf_pruned:.1} pruned \
         (search.expand.offered / mcts.expansions)"
    ));
    h.field("prune_speedup", Json::Num(prune_speedup));
    h.field("prune_speedup_per_kernel", Json::Arr(per_kernel));
    h.field("branching_factor_unpruned", Json::Num(bf_unpruned));
    h.field("branching_factor_pruned", Json::Num(bf_pruned));
    h.field("fabric", Json::from(cgra.name()));
    h.finish();
}
