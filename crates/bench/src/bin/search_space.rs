//! Reproduces the **§2.5.1** search-space size estimates: 14 nodes on a
//! 4×4 CGRA ≈ 10¹³ placements, 60 nodes on an 8×8 ≈ 10⁸⁷.

use mapzero_bench::{print_table, write_csv, Harness};
use mapzero_core::search_space::{log10_placements, log10_placements_temporal};

fn main() {
    let h = Harness::begin(
        "search_space",
        "§2.5.1: search-space sizes (log10 of placement count)",
    );
    let cases = [
        ("paper: 14 nodes, 4x4, II=1", 14u64, 16u64, 1u64),
        ("paper: 60 nodes, 8x8, II=1", 60, 64, 1),
        ("arf (54) on HReA (16 PEs), II=4", 54, 16, 4),
        ("huf_u (592) on 16x16 (256 PEs), II=3", 592, 256, 3),
        ("sum (8) on HyCube (16 PEs), II=1", 8, 16, 1),
    ];
    let header = ["case", "nodes", "PEs", "II", "log10(placements)"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    for (label, nodes, pes, ii) in cases {
        let lg = if ii == 1 {
            log10_placements(nodes, pes)
        } else {
            log10_placements_temporal(nodes, pes, ii)
        };
        let cell = lg.map_or_else(|| "infeasible".to_owned(), |v| format!("{v:.1}"));
        let row = vec![
            label.to_owned(),
            nodes.to_string(),
            pes.to_string(),
            ii.to_string(),
            cell,
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    print_table(&header, &rows);
    h.note("\nthe paper quotes 16!/2 ~ 1e13 and 64!/4! ~ 1e87 for the first two rows");
    write_csv("search_space", &csv);
    h.finish();
}
