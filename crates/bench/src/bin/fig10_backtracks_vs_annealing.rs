//! Reproduces **Fig. 10**: MapZero backtracking operations versus the
//! annealing counts of CGRA-ME (SA) and LISA on HyCube. (The ILP column
//! is omitted, as in the paper: Gurobi's simplex iterations are not
//! comparable to backtracks.)

use mapzero_bench::{headtohead_results, print_table, write_csv, BenchMode, Harness};

fn main() {
    let mode = BenchMode::from_env();
    let h = Harness::begin(
        "fig10_backtracks_vs_annealing",
        format!("Fig. 10: backtracks (MapZero) vs annealings (SA, LISA) on HyCube ({mode:?} mode)"),
    );
    let results = headtohead_results(mode);
    let hycube: Vec<_> = results.iter().filter(|r| r.fabric == "HyCube").collect();

    let mut kernels: Vec<String> = hycube.iter().map(|r| r.kernel.clone()).collect();
    kernels.dedup();

    let header = ["kernel", "MapZero backtracks", "SA annealings", "LISA annealings"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    for kernel in &kernels {
        let lookup = |mapper: &str| {
            hycube
                .iter()
                .find(|r| &r.kernel == kernel && r.mapper == mapper)
                .map_or_else(|| "-".to_owned(), |r| r.backtracks.to_string())
        };
        let row = vec![kernel.clone(), lookup("MapZero"), lookup("SA"), lookup("LISA")];
        csv.push(row.clone());
        rows.push(row);
    }
    print_table(&header, &rows);
    h.note(
        "\nnote: compilation time is not proportional to annealings — each annealing\nstep performs 100 random perturbations (§4.3)",
    );
    write_csv("fig10_backtracks_vs_annealing", &csv);
    h.finish();
}
