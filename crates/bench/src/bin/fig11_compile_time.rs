//! Reproduces **Fig. 11 (a)–(d)**: compilation time of CGRA-ME (ILP),
//! CGRA-ME (SA), LISA and MapZero on the four target CGRAs, plus the
//! geo-mean speedups the paper quotes (50x/45x/274x over ILP on
//! HReA/MorphoSys/ADRES; 405x over LISA and 214x/594x over ILP/SA on
//! HyCube). Timeout cases are excluded from the speedup geo-means, as
//! in §4.3.

use mapzero_bench::{geomean, headtohead_results, print_table, write_csv, BenchMode, Harness};

fn main() {
    let mode = BenchMode::from_env();
    let h = Harness::begin(
        "fig11_compile_time",
        format!("Fig. 11: compilation time (seconds, {mode:?} mode)"),
    );
    let results = headtohead_results(mode);

    let mut fabrics: Vec<String> = results.iter().map(|r| r.fabric.clone()).collect();
    fabrics.sort();
    fabrics.dedup();
    let mappers = ["ILP", "SA", "LISA", "MapZero"];

    let mut csv = vec![vec![
        "fabric".to_owned(),
        "kernel".to_owned(),
        "mapper".to_owned(),
        "secs".to_owned(),
        "success".to_owned(),
    ]];
    for fabric in &fabrics {
        h.note(format!("--- {fabric} ---"));
        let mut kernels: Vec<String> = results
            .iter()
            .filter(|r| &r.fabric == fabric)
            .map(|r| r.kernel.clone())
            .collect();
        kernels.dedup();
        let header: Vec<&str> =
            std::iter::once("kernel").chain(mappers.iter().copied()).collect();
        let mut rows = Vec::new();
        for kernel in &kernels {
            let mut row = vec![kernel.clone()];
            for mapper in mappers {
                let cell = results
                    .iter()
                    .find(|r| &r.fabric == fabric && &r.kernel == kernel && r.mapper == mapper)
                    .map_or_else(
                        || "-".to_owned(),
                        |r| {
                            csv.push(vec![
                                fabric.clone(),
                                kernel.clone(),
                                mapper.to_owned(),
                                format!("{:.4}", r.secs),
                                (r.ii != 0).to_string(),
                            ]);
                            if r.ii == 0 {
                                format!("{:.2} (fail)", r.secs)
                            } else {
                                format!("{:.2}", r.secs)
                            }
                        },
                    );
                row.push(cell);
            }
            rows.push(row);
        }
        print_table(&header, &rows);

        // Geo-mean speedup of MapZero over each baseline, excluding
        // pairs where either side failed/timed out.
        for baseline in ["ILP", "SA", "LISA"] {
            let mut ratios = Vec::new();
            for kernel in &kernels {
                let find = |mapper: &str| {
                    results.iter().find(|r| {
                        &r.fabric == fabric && &r.kernel == kernel && r.mapper == mapper
                    })
                };
                if let (Some(b), Some(m)) = (find(baseline), find("MapZero")) {
                    if b.ii != 0 && m.ii != 0 && !b.timed_out && m.secs > 0.0 {
                        ratios.push(b.secs / m.secs.max(1e-9));
                    }
                }
            }
            if ratios.is_empty() {
                h.note(format!("  speedup vs {baseline}: n/a (no mutually-successful cases)"));
            } else {
                h.note(format!(
                    "  geo-mean speedup vs {baseline}: {:.1}x over {} cases",
                    geomean(&ratios),
                    ratios.len()
                ));
            }
        }
        println!();
    }
    write_csv("fig11_compile_time", &csv);
    h.finish();
}
