//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! * **encoder** — GAT (the paper's choice, §2.2) vs a plain GCN;
//! * **selection** — PUCT with stored priors (Alg. 1 stores `P(s,a)`)
//!   vs plain UCT (Eq. 4 without priors);
//! * **playout** — greedy router-aware rollouts (this repo's
//!   early-exit engine) vs network-value-only leaf evaluation.
//!
//! Each variant maps the same kernels; the table reports MII hits,
//! time, and backtracks.

use mapzero_bench::{print_table, write_csv, BenchMode, Harness};
use mapzero_core::network::{EncoderKind, MapZeroNet, NetConfig};
use mapzero_core::{AgentConfig, MapZeroAgent, MctsConfig, Problem};

struct Variant {
    name: &'static str,
    encoder: EncoderKind,
    use_priors: bool,
    playout: bool,
}

fn main() {
    let mode = BenchMode::from_env();
    let limit = mode.time_limit();
    let h = Harness::begin(
        "ablation_design",
        format!("Design-choice ablations ({mode:?} mode)"),
    );

    let variants = [
        Variant { name: "baseline (GAT+PUCT+playout)", encoder: EncoderKind::Gat, use_priors: true, playout: true },
        Variant { name: "GCN encoder", encoder: EncoderKind::Gcn, use_priors: true, playout: true },
        Variant { name: "plain UCT", encoder: EncoderKind::Gat, use_priors: false, playout: true },
        Variant { name: "no playout", encoder: EncoderKind::Gat, use_priors: true, playout: false },
    ];
    let kernels = ["sum", "mac", "conv2", "accumulate"];
    let fabrics = [mapzero_arch::presets::hrea(), mapzero_arch::presets::hycube()];

    let header = ["variant", "MII hits", "total secs", "total backtracks"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    for v in &variants {
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut secs = 0.0f64;
        let mut backtracks = 0u64;
        for cgra in &fabrics {
            let net = MapZeroNet::new(
                cgra.pe_count(),
                NetConfig { encoder: v.encoder, ..NetConfig::tiny() },
            );
            let agent_config = AgentConfig {
                mcts: MctsConfig {
                    simulations: 24,
                    expansion_cap: 32,
                    use_priors: v.use_priors,
                    playout: v.playout,
                    ..MctsConfig::default()
                },
                backtrack_budget: 256,
                mcts_backtrack_cutoff: u64::MAX,
                ..AgentConfig::default()
            };
            let agent = MapZeroAgent::new(&net, agent_config);
            for name in kernels {
                let dfg = mapzero_dfg::suite::by_name(name).expect("kernel exists");
                let Ok(mii) = Problem::mii(&dfg, cgra) else { continue };
                let Ok(problem) = Problem::new(&dfg, cgra, mii) else { continue };
                total += 1;
                let start = std::time::Instant::now();
                let result = agent.run_episode(&problem, limit);
                secs += start.elapsed().as_secs_f64();
                backtracks += result.backtracks;
                if result.mapping.is_some_and(|m| m.ii == mii) {
                    hits += 1;
                }
            }
        }
        let row = vec![
            v.name.to_owned(),
            format!("{hits}/{total}"),
            format!("{secs:.2}"),
            backtracks.to_string(),
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    print_table(&header, &rows);
    h.note("\nlower MII hits for a variant = that design choice matters");
    write_csv("ablation_design", &csv);
    h.finish();
}
