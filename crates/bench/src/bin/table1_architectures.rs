//! Reproduces **Table 1**: the target CGRAs and their interconnect
//! matrix.

use mapzero_arch::{presets, Interconnect};
use mapzero_bench::{print_table, write_csv, Harness};

fn main() {
    let h = Harness::begin("table1_architectures", "Table 1: Target CGRAs used in the evaluation");
    let header = ["Fabric", "Size", "Mesh", "1-hop", "Diagonal", "Toroidal", "Crossbar", "Row mem bus"];
    let mut rows = Vec::new();
    for cgra in presets::table1() {
        let mark = |s: Interconnect| {
            if cgra.interconnects().contains(&s) { "x".to_owned() } else { String::new() }
        };
        rows.push(vec![
            cgra.name().to_owned(),
            format!("{}x{}", cgra.rows(), cgra.cols()),
            mark(Interconnect::Mesh),
            mark(Interconnect::OneHop),
            mark(Interconnect::Diagonal),
            mark(Interconnect::Toroidal),
            mark(Interconnect::Crossbar),
            if cgra.row_shared_mem_bus() { "x".to_owned() } else { String::new() },
        ]);
    }
    print_table(&header, &rows);

    let mut csv = vec![header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()];
    csv.extend(rows);
    write_csv("table1_architectures", &csv);
    h.finish();
}
