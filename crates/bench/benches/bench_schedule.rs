//! Criterion bench: modulo scheduling and MII computation over the
//! benchmark suite (the front half of every mapping attempt).

use criterion::{criterion_group, criterion_main, Criterion};
use mapzero_dfg::{mii, modulo_schedule, ResourceModel};

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    let res16 = ResourceModel::homogeneous(16);
    let res256 = ResourceModel::homogeneous(256);

    for name in ["mac", "arf", "mulul"] {
        let dfg = mapzero_dfg::suite::by_name(name).expect("kernel exists");
        group.bench_function(format!("modulo_schedule_{name}_16pe"), |b| {
            b.iter(|| std::hint::black_box(modulo_schedule(&dfg, &res16, 64).unwrap()));
        });
    }

    let huf = mapzero_dfg::suite::by_name("huf_u").expect("kernel exists");
    group.bench_function("modulo_schedule_huf_u_256pe", |b| {
        b.iter(|| std::hint::black_box(modulo_schedule(&huf, &res256, 64).unwrap()));
    });
    group.bench_function("mii_huf_u_256pe", |b| {
        b.iter(|| std::hint::black_box(mii::mii(&huf, &res256)));
    });

    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
