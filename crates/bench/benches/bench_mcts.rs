//! Criterion bench: MCTS decision throughput (one `search` call) with
//! priors (PUCT) and without (plain UCT), quantifying the §4.7 design
//! choice.

use criterion::{criterion_group, criterion_main, Criterion};
use mapzero_core::network::{MapZeroNet, NetConfig};
use mapzero_core::{MapEnv, Mcts, MctsConfig, Problem};

fn bench_mcts(c: &mut Criterion) {
    let dfg = mapzero_dfg::suite::by_name("mac").expect("kernel exists");
    let cgra = mapzero_arch::presets::hrea();
    let problem = Problem::new(&dfg, &cgra, 1).expect("schedulable");
    let env = MapEnv::new(&problem);
    let net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());

    let mut group = c.benchmark_group("mcts_search_mac_hrea");
    group.sample_size(10);
    for (label, use_priors) in [("puct", true), ("plain_uct", false)] {
        let config = MctsConfig { simulations: 16, expansion_cap: 16, use_priors, ..MctsConfig::default() };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut mcts = Mcts::new(&net, config);
                let result = mcts.search(&env);
                std::hint::black_box(result.best_action);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mcts);
criterion_main!(benches);
