//! Criterion bench: network inference and training-step cost — the
//! dominant term of MapZero's compile time ("most of the time overhead
//! lies in the network inference", §3.6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use mapzero_core::embed::observe;
use mapzero_core::network::{MapZeroNet, NetConfig, TrainSample};
use mapzero_core::{MapEnv, Problem};

fn bench_nn(c: &mut Criterion) {
    let dfg = mapzero_dfg::suite::by_name("conv3").expect("kernel exists");
    let cgra = mapzero_arch::presets::hrea();
    let mii = Problem::mii(&dfg, &cgra).expect("mappable");
    let problem = Problem::new(&dfg, &cgra, mii).expect("schedulable");
    let env = MapEnv::new(&problem);
    let obs = observe(&env);

    let mut group = c.benchmark_group("network");
    group.sample_size(20);
    for (label, config) in [("tiny", NetConfig::tiny()), ("default", NetConfig::default())] {
        let net = MapZeroNet::new(cgra.pe_count(), config);
        // The tape-based reference forward vs the tape-free hot path
        // (scratch-buffer reuse + DFG-branch memo) — the speedup the
        // hot-path overhaul claims lives in this pair.
        group.bench_function(format!("predict_reference_{label}"), |b| {
            b.iter(|| std::hint::black_box(net.predict_reference(&obs)));
        });
        group.bench_function(format!("predict_{label}"), |b| {
            b.iter(|| std::hint::black_box(net.predict(&obs)));
        });
    }
    let mut net = MapZeroNet::new(cgra.pe_count(), NetConfig::tiny());
    let sample = TrainSample {
        observation: obs,
        policy: vec![1.0 / 16.0; 16],
        value: 0.25,
    };
    let batch: Vec<TrainSample> = (0..8).map(|_| sample.clone()).collect();
    group.bench_function("train_batch8_tiny", |b| {
        b.iter(|| std::hint::black_box(net.train_batch(&batch, 1e-3, 5.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
