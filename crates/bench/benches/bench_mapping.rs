//! Criterion bench: end-to-end mapping throughput of each mapper on a
//! small kernel (one bar per method, the microbenchmark behind Fig. 11).

use criterion::{criterion_group, criterion_main, Criterion};
use mapzero_baselines::{ExactMapper, LisaMapper, SaMapper};
use mapzero_core::{Compiler, MapZeroConfig, Mapper};
use std::time::Duration;

fn bench_mapping(c: &mut Criterion) {
    let dfg = mapzero_dfg::suite::by_name("mac").expect("kernel exists");
    let cgra = mapzero_arch::presets::hycube();
    let limit = Duration::from_secs(30);

    let mut group = c.benchmark_group("map_mac_on_hycube");
    group.sample_size(10);

    group.bench_function("mapzero", |b| {
        let mut compiler = Compiler::new(MapZeroConfig::fast_test());
        // Warm the network cache outside the timed loop.
        let _ = compiler.map_with_limit(&dfg, &cgra, limit);
        b.iter(|| {
            let report = compiler.map_with_limit(&dfg, &cgra, limit).unwrap();
            assert!(report.mapping.is_some());
        });
    });
    group.bench_function("ilp_exact", |b| {
        b.iter(|| {
            let mut mapper = ExactMapper::default();
            let report = mapper.map(&dfg, &cgra, limit).unwrap();
            assert!(report.mapping.is_some());
        });
    });
    group.bench_function("sa", |b| {
        b.iter(|| {
            let mut mapper = SaMapper::default();
            let report = mapper.map(&dfg, &cgra, limit).unwrap();
            assert!(report.mapping.is_some());
        });
    });
    group.bench_function("lisa", |b| {
        b.iter(|| {
            let mut mapper = LisaMapper::default();
            let report = mapper.map(&dfg, &cgra, limit).unwrap();
            assert!(report.mapping.is_some());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
