//! Criterion bench: router cost on both timing models — registered
//! neighbour Dijkstra (mesh) versus circuit-switched departure search
//! (HyCube), the §3.3 coupled/decoupled split.

use criterion::{criterion_group, criterion_main, Criterion};
use mapzero_arch::PeId;
use mapzero_core::ledger::Ledger;
use mapzero_core::mapping::Placement;
use mapzero_core::router::route_edge;
use mapzero_dfg::NodeId;

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router");

    let mesh = mapzero_arch::presets::baseline8(); // 8x8, rich links
    group.bench_function("registered_corner_to_corner_8x8", |b| {
        b.iter(|| {
            let mut ledger = Ledger::new(&mesh, 4);
            let route = route_edge(
                &mesh,
                &mut ledger,
                NodeId(0),
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(63), time: 9 },
                0,
            );
            std::hint::black_box(route.expect("routable with 9 cycles of slack"));
        });
    });

    let hycube = mapzero_arch::presets::hycube();
    group.bench_function("circuit_switched_corner_to_corner_4x4", |b| {
        b.iter(|| {
            let mut ledger = Ledger::new(&hycube, 2);
            let route = route_edge(
                &hycube,
                &mut ledger,
                NodeId(0),
                Placement { pe: PeId(0), time: 0 },
                Placement { pe: PeId(15), time: 1 },
                0,
            );
            std::hint::black_box(route.expect("single-cycle multi-hop"));
        });
    });

    group.bench_function("registered_congested_fanout", |b| {
        b.iter(|| {
            let mut ledger = Ledger::new(&mesh, 2);
            // One producer feeding eight consumers: later routes share
            // the net's claimed registers.
            for (i, consumer) in [1u32, 8, 9, 2, 16, 10, 3, 17].into_iter().enumerate() {
                let route = route_edge(
                    &mesh,
                    &mut ledger,
                    NodeId(0),
                    Placement { pe: PeId(0), time: 0 },
                    Placement { pe: PeId(consumer), time: 1 + (i as u32 % 3) },
                    0,
                );
                std::hint::black_box(route);
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
