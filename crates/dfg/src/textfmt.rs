//! A small line-oriented text format for DFGs.
//!
//! ```text
//! dfg dotprod
//! node 0 load
//! node 1 load
//! node 2 mul
//! edge 0 2
//! edge 1 2 0
//! edge 2 2 1   # distance-1 back edge
//! ```
//!
//! Lines: `dfg <name>`, `node <id> <opcode>`, `edge <src> <dst> [dist]`.
//! `#` starts a comment; node ids must be dense and in order.

use crate::{Dfg, DfgBuilder, DfgError, NodeId, Opcode};
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDfgError {
    /// A line could not be interpreted.
    Syntax { line: usize, message: String },
    /// The graph itself was invalid.
    Graph(DfgError),
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDfgError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseDfgError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseDfgError {}

impl From<DfgError> for ParseDfgError {
    fn from(e: DfgError) -> Self {
        ParseDfgError::Graph(e)
    }
}

/// Serialize a DFG to the text format.
#[must_use]
pub fn emit(dfg: &Dfg) -> String {
    let mut out = String::new();
    out.push_str(&format!("dfg {}\n", dfg.name()));
    for u in dfg.node_ids() {
        out.push_str(&format!("node {} {}\n", u.0, dfg.node(u).opcode));
    }
    for e in dfg.edges() {
        if e.dist == 0 {
            out.push_str(&format!("edge {} {}\n", e.src.0, e.dst.0));
        } else {
            out.push_str(&format!("edge {} {} {}\n", e.src.0, e.dst.0, e.dist));
        }
    }
    out
}

/// Parse the text format back into a DFG.
///
/// # Errors
/// Returns [`ParseDfgError::Syntax`] for malformed lines and
/// [`ParseDfgError::Graph`] if the edges violate DFG invariants.
pub fn parse(text: &str) -> Result<Dfg, ParseDfgError> {
    let mut name = String::from("unnamed");
    let mut pending_nodes: Vec<(usize, Opcode)> = Vec::new();
    let mut pending_edges: Vec<(u32, u32, u32, usize)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line");
        match keyword {
            "dfg" => {
                name = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "missing name"))?
                    .to_owned();
            }
            "node" => {
                let id: usize = parse_num(parts.next(), lineno, "node id")?;
                let op: Opcode = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "missing opcode"))?
                    .parse()
                    .map_err(|e| syntax(lineno, &format!("{e}")))?;
                if id != pending_nodes.len() {
                    return Err(syntax(lineno, "node ids must be dense and ordered"));
                }
                pending_nodes.push((id, op));
            }
            "edge" => {
                let src: u32 = parse_num(parts.next(), lineno, "edge source")?;
                let dst: u32 = parse_num(parts.next(), lineno, "edge target")?;
                let dist: u32 = match parts.next() {
                    Some(tok) => tok
                        .parse()
                        .map_err(|_| syntax(lineno, "distance must be an integer"))?,
                    None => 0,
                };
                pending_edges.push((src, dst, dist, lineno));
            }
            other => return Err(syntax(lineno, &format!("unknown keyword `{other}`"))),
        }
        if parts.next().is_some() && keyword != "dfg" {
            return Err(syntax(lineno, "trailing tokens"));
        }
    }

    let mut b = DfgBuilder::new(name);
    for (_, op) in &pending_nodes {
        b.node(*op);
    }
    for (src, dst, dist, _lineno) in pending_edges {
        if dist == 0 {
            b.edge(NodeId(src), NodeId(dst))?;
        } else {
            b.back_edge(NodeId(src), NodeId(dst), dist)?;
        }
    }
    Ok(b.finish()?)
}

fn parse_num<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseDfgError> {
    tok.ok_or_else(|| syntax(line, &format!("missing {what}")))?
        .parse()
        .map_err(|_| syntax(line, &format!("{what} must be an integer")))
}

fn syntax(line: usize, message: &str) -> ParseDfgError {
    ParseDfgError::Syntax { line, message: message.to_owned() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn round_trips_suite_kernels() {
        for g in suite::small() {
            let text = emit(&g);
            let back = parse(&text).unwrap();
            assert_eq!(back, g, "{}", g.name());
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# header\ndfg t\nnode 0 add # trailing\n\nnode 1 store\nedge 0 1\n";
        let g = parse(text).unwrap();
        assert_eq!(g.name(), "t");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn back_edge_distance_parsed() {
        let g = parse("dfg t\nnode 0 add\nedge 0 0 2\n").unwrap();
        let e = g.edges().next().unwrap();
        assert_eq!(e.dist, 2);
    }

    #[test]
    fn rejects_sparse_node_ids() {
        let err = parse("dfg t\nnode 1 add\n").unwrap_err();
        assert!(matches!(err, ParseDfgError::Syntax { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_keyword() {
        assert!(parse("blah\n").is_err());
    }

    #[test]
    fn rejects_bad_opcode() {
        let err = parse("dfg t\nnode 0 warp\n").unwrap_err();
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn graph_errors_propagate() {
        let err = parse("dfg t\nnode 0 add\nnode 1 add\nedge 0 1\nedge 1 0\n").unwrap_err();
        assert_eq!(err, ParseDfgError::Graph(crate::DfgError::ForwardCycle));
    }
}
