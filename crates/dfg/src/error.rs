//! Error type for DFG construction and validation.

use std::fmt;

/// Errors produced while building or validating a [`crate::Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// An edge referenced a node id that does not exist.
    UnknownNode(u32),
    /// The same directed edge (with the same distance) was added twice.
    DuplicateEdge { src: u32, dst: u32 },
    /// A forward (distance-0) edge closes a cycle; loop-carried
    /// dependences must use `back_edge` with distance ≥ 1.
    ForwardCycle,
    /// A back edge was declared with distance 0.
    ZeroDistanceBackEdge { src: u32, dst: u32 },
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            DfgError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            DfgError::ForwardCycle => {
                write!(f, "forward edges form a cycle; use back_edge for loop-carried deps")
            }
            DfgError::ZeroDistanceBackEdge { src, dst } => {
                write!(f, "back edge {src} -> {dst} must have distance >= 1")
            }
            DfgError::Empty => write!(f, "data flow graph has no nodes"),
        }
    }
}

impl std::error::Error for DfgError {}
