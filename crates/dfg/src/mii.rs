//! Minimum initiation interval (MII) computation.
//!
//! `MII = max(ResMII, RecMII)` where ResMII is the resource-constrained
//! lower bound and RecMII is the recurrence-constrained lower bound.

use crate::{Dfg, OpClass};

/// Per-modulo-slice hardware capacity seen by the scheduler.
///
/// `total` is the number of PEs in one time slice of the CGRA; `per_class`
/// is the number of PEs able to execute each [`OpClass`]
/// (indexed by [`OpClass::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceModel {
    /// Total PEs available per time slice.
    pub total: usize,
    /// PEs able to execute each functional class, indexed by
    /// [`OpClass::index`].
    pub per_class: [usize; 3],
}

impl ResourceModel {
    /// A homogeneous array of `total` PEs that all support every class.
    #[must_use]
    pub fn homogeneous(total: usize) -> Self {
        ResourceModel { total, per_class: [total; 3] }
    }
}

/// Resource-constrained minimum II.
///
/// `ResMII = max(ceil(|V| / total), max_class ceil(|V_class| / |PE_class|))`.
/// Returns `None` if some required functional class has zero capable PEs
/// (the DFG can never be mapped to this fabric).
#[must_use]
pub fn res_mii(dfg: &Dfg, res: &ResourceModel) -> Option<u32> {
    if res.total == 0 {
        return None;
    }
    let mut mii = div_ceil(dfg.node_count(), res.total);
    for class in OpClass::ALL {
        let need = dfg.class_counts()[class.index()];
        if need == 0 {
            continue;
        }
        let have = res.per_class[class.index()];
        if have == 0 {
            return None;
        }
        mii = mii.max(div_ceil(need, have));
    }
    Some(mii.max(1) as u32)
}

/// Recurrence-constrained minimum II.
///
/// The smallest `ii` such that no dependence cycle has total latency
/// exceeding `ii * distance`. Computed by checking, for increasing `ii`,
/// whether the constraint graph with edge weights `latency - ii * dist`
/// has a positive cycle (Bellman-Ford on negated weights).
#[must_use]
pub fn rec_mii(dfg: &Dfg) -> u32 {
    if dfg.max_dist() == 0 {
        return 1;
    }
    // Upper bound: a cycle's latency is at most the sum of all edge
    // latencies; dist >= 1, so II <= total latency.
    let upper: i64 = dfg
        .edges()
        .map(|e| i64::from(dfg.node(e.src).opcode.latency()))
        .sum::<i64>()
        .max(1);
    for ii in 1..=upper {
        if !has_positive_cycle(dfg, ii) {
            return ii as u32;
        }
    }
    upper as u32
}

/// Full MII; `None` if the fabric lacks a required functional class.
#[must_use]
pub fn mii(dfg: &Dfg, res: &ResourceModel) -> Option<u32> {
    Some(res_mii(dfg, res)?.max(rec_mii(dfg)))
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// True if some cycle has `sum(latency) - ii * sum(dist) > 0`.
fn has_positive_cycle(dfg: &Dfg, ii: i64) -> bool {
    let n = dfg.node_count();
    // Longest-path relaxation; a positive cycle keeps improving.
    let mut dist = vec![0i64; n];
    for _round in 0..n {
        let mut changed = false;
        for e in dfg.edges() {
            let w = i64::from(dfg.node(e.src).opcode.latency()) - ii * i64::from(e.dist);
            let cand = dist[e.src.index()] + w;
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Opcode};

    fn chain(n: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let ids: Vec<_> = (0..n).map(|_| b.node(Opcode::Add)).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn res_mii_scales_with_nodes() {
        let g = chain(10);
        assert_eq!(res_mii(&g, &ResourceModel::homogeneous(16)), Some(1));
        assert_eq!(res_mii(&g, &ResourceModel::homogeneous(4)), Some(3));
        assert_eq!(res_mii(&g, &ResourceModel::homogeneous(10)), Some(1));
    }

    #[test]
    fn res_mii_accounts_for_class_shortage() {
        let mut b = DfgBuilder::new("mem-heavy");
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        let l2 = b.node(Opcode::Load);
        let s = b.node(Opcode::Add);
        b.edge(l0, s).unwrap();
        b.edge(l1, s).unwrap();
        b.edge(l2, s).unwrap();
        let g = b.finish().unwrap();
        // 16 PEs total but only 1 supports memory: three loads need II 3.
        let res = ResourceModel { total: 16, per_class: [16, 16, 1] };
        assert_eq!(res_mii(&g, &res), Some(3));
    }

    #[test]
    fn res_mii_none_when_class_unsupported() {
        let g = chain(3);
        let res = ResourceModel { total: 4, per_class: [4, 0, 4] };
        assert_eq!(res_mii(&g, &res), None);
    }

    #[test]
    fn rec_mii_of_dag_is_one() {
        assert_eq!(rec_mii(&chain(5)), 1);
    }

    #[test]
    fn rec_mii_of_self_cycle_is_one() {
        let mut b = DfgBuilder::new("acc");
        let a = b.node(Opcode::Add);
        b.back_edge(a, a, 1).unwrap();
        assert_eq!(rec_mii(&b.finish().unwrap()), 1);
    }

    #[test]
    fn rec_mii_of_long_cycle() {
        // 3-node cycle with a single distance-1 back edge: latency 3 per
        // iteration carried over 1 iteration -> RecMII 3.
        let mut b = DfgBuilder::new("loop3");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Mul);
        let d = b.node(Opcode::Sub);
        b.edge(a, c).unwrap();
        b.edge(c, d).unwrap();
        b.back_edge(d, a, 1).unwrap();
        assert_eq!(rec_mii(&b.finish().unwrap()), 3);
    }

    #[test]
    fn rec_mii_divides_by_distance() {
        // Same 3-cycle but the carried dependence spans 3 iterations.
        let mut b = DfgBuilder::new("loop3d3");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Mul);
        let d = b.node(Opcode::Sub);
        b.edge(a, c).unwrap();
        b.edge(c, d).unwrap();
        b.back_edge(d, a, 3).unwrap();
        assert_eq!(rec_mii(&b.finish().unwrap()), 1);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let mut b = DfgBuilder::new("both");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Mul);
        let d = b.node(Opcode::Sub);
        b.edge(a, c).unwrap();
        b.edge(c, d).unwrap();
        b.back_edge(d, a, 1).unwrap();
        let g = b.finish().unwrap();
        // RecMII = 3 dominates ResMII = 1 on a 2x2 array.
        assert_eq!(mii(&g, &ResourceModel::homogeneous(4)), Some(3));
        // A single-PE array pushes ResMII to 3 as well.
        assert_eq!(mii(&g, &ResourceModel::homogeneous(1)), Some(3));
    }
}
