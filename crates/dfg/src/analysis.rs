//! Static DFG analyses: ASAP/ALAP levels, slack, critical path, and
//! summary statistics used by the mappers' heuristics and reports.

use crate::{Dfg, NodeId};

/// ASAP (as-soon-as-possible) start level per node over forward edges,
/// with unit latencies from the opcode model.
#[must_use]
pub fn asap(dfg: &Dfg) -> Vec<u32> {
    let mut level = vec![0u32; dfg.node_count()];
    for &u in dfg.topological_order() {
        for e in dfg.in_edges(u) {
            if e.dist == 0 {
                let ready = level[e.src.index()] + dfg.node(e.src).opcode.latency();
                level[u.index()] = level[u.index()].max(ready);
            }
        }
    }
    level
}

/// ALAP (as-late-as-possible) start level per node, right-aligned to
/// the ASAP critical-path length.
#[must_use]
pub fn alap(dfg: &Dfg) -> Vec<u32> {
    let asap_levels = asap(dfg);
    let horizon = asap_levels.iter().copied().max().unwrap_or(0);
    let mut level = vec![horizon; dfg.node_count()];
    for &u in dfg.topological_order().iter().rev() {
        for e in dfg.out_edges(u) {
            if e.dist == 0 {
                let deadline =
                    level[e.dst.index()].saturating_sub(dfg.node(u).opcode.latency());
                level[u.index()] = level[u.index()].min(deadline);
            }
        }
    }
    level
}

/// Scheduling slack (`alap − asap`) per node; zero-slack nodes lie on a
/// critical path.
#[must_use]
pub fn slack(dfg: &Dfg) -> Vec<u32> {
    asap(dfg).iter().zip(alap(dfg)).map(|(a, l)| l - a).collect()
}

/// Length of the critical path in cycles (the II=∞ latency bound).
#[must_use]
pub fn critical_path_length(dfg: &Dfg) -> u32 {
    asap(dfg)
        .iter()
        .enumerate()
        .map(|(i, &lvl)| lvl + dfg.node(NodeId(i as u32)).opcode.latency())
        .max()
        .unwrap_or(0)
}

/// One critical path (node sequence with zero slack), source to sink.
#[must_use]
pub fn critical_path(dfg: &Dfg) -> Vec<NodeId> {
    let slacks = slack(dfg);
    let asap_levels = asap(dfg);
    // Start from the zero-slack source with the smallest ASAP level,
    // then repeatedly follow a zero-slack forward successor.
    let mut current = dfg
        .node_ids()
        .filter(|u| slacks[u.index()] == 0 && asap_levels[u.index()] == 0)
        .min_by_key(|u| u.index());
    let mut path = Vec::new();
    while let Some(u) = current {
        path.push(u);
        current = dfg
            .out_edges(u)
            .filter(|e| e.dist == 0 && slacks[e.dst.index()] == 0)
            .filter(|e| {
                asap_levels[e.dst.index()]
                    == asap_levels[u.index()] + dfg.node(u).opcode.latency()
            })
            .map(|e| e.dst)
            .min_by_key(|n| n.index());
    }
    path
}

/// Aggregate statistics for reports and difficulty heuristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfgStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count (incl. back edges).
    pub edges: usize,
    /// Loop-carried edges.
    pub back_edges: usize,
    /// Critical path length in cycles.
    pub critical_path: u32,
    /// Maximum fan-out.
    pub max_fanout: usize,
    /// Maximum fan-in.
    pub max_fanin: usize,
    /// Average node slack.
    pub avg_slack: f64,
    /// Per-class op counts (logical, arithmetic, memory).
    pub class_counts: [usize; 3],
}

/// Compute [`DfgStats`].
#[must_use]
pub fn stats(dfg: &Dfg) -> DfgStats {
    let slacks = slack(dfg);
    DfgStats {
        nodes: dfg.node_count(),
        edges: dfg.edge_count(),
        back_edges: dfg.edges().filter(|e| e.dist > 0).count(),
        critical_path: critical_path_length(dfg),
        max_fanout: crate::random::max_fanout(dfg),
        max_fanin: crate::random::max_fanin_of(dfg),
        avg_slack: slacks.iter().map(|&s| f64::from(s)).sum::<f64>()
            / dfg.node_count().max(1) as f64,
        class_counts: dfg.class_counts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Opcode};

    /// a -> b -> d, a -> c -> d with an extra hop under c.
    fn sample() -> Dfg {
        let mut b = DfgBuilder::new("s");
        let a = b.node(Opcode::Load);
        let x = b.node(Opcode::Add);
        let y = b.node(Opcode::Mul);
        let z = b.node(Opcode::Sub); // extra stage on the y-branch
        let d = b.node(Opcode::Store);
        b.edge(a, x).unwrap();
        b.edge(a, y).unwrap();
        b.edge(y, z).unwrap();
        b.edge(x, d).unwrap();
        b.edge(z, d).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn asap_levels() {
        let g = sample();
        assert_eq!(asap(&g), vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn alap_gives_slack_to_short_branch() {
        let g = sample();
        let al = alap(&g);
        // x can start at 2 (its only consumer starts at 3).
        assert_eq!(al[1], 2);
        // Critical-path nodes have alap == asap.
        assert_eq!(al[0], 0);
        assert_eq!(al[2], 1);
    }

    #[test]
    fn slack_zero_on_critical_path_only() {
        let g = sample();
        assert_eq!(slack(&g), vec![0, 1, 0, 0, 0]);
    }

    #[test]
    fn critical_path_walks_longest_chain() {
        let g = sample();
        assert_eq!(critical_path_length(&g), 4);
        let path = critical_path(&g);
        let ids: Vec<u32> = path.iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 2, 3, 4]);
    }

    #[test]
    fn stats_aggregate() {
        let g = sample();
        let s = stats(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 5);
        assert_eq!(s.back_edges, 0);
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.critical_path, 4);
        assert!((s.avg_slack - 0.2).abs() < 1e-9);
    }

    #[test]
    fn single_node_analyses() {
        let mut b = DfgBuilder::new("one");
        b.node(Opcode::Const);
        let g = b.finish().unwrap();
        assert_eq!(asap(&g), vec![0]);
        assert_eq!(alap(&g), vec![0]);
        assert_eq!(critical_path(&g).len(), 1);
    }
}
