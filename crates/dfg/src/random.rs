//! Random DFG generation for curriculum pre-training (§3.6.2).
//!
//! The paper pre-trains the agent on "a random set of DFGs ... in the
//! order of ease to hard" with 3–30 nodes. [`random_dfg`] produces
//! deterministic, connected, realistic-looking loop kernels from a seed;
//! [`curriculum`] produces the easy→hard sequence.

use crate::{Dfg, DfgBuilder, NodeId, Opcode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the random DFG generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDfgConfig {
    /// Number of operations.
    pub nodes: usize,
    /// Total number of dependences (forward + loop-carried). Clamped to
    /// the feasible range `[nodes - 1, max]` internally.
    pub edges: usize,
    /// Number of accumulation self-cycles (distance-1 back edges on a
    /// node), drawn from the edge budget.
    pub self_cycles: usize,
    /// Maximum in-degree of any node (operand count cap).
    pub max_fanin: usize,
    /// RNG seed; equal seeds give identical graphs.
    pub seed: u64,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig { nodes: 12, edges: 15, self_cycles: 0, max_fanin: 3, seed: 0 }
    }
}

/// Generate a random connected DFG with exactly `cfg.nodes` nodes and
/// exactly `clamped(cfg.edges)` edges.
///
/// Construction: nodes are created in topological order; every node after
/// the first receives one edge from a recent predecessor (connectivity),
/// then extra forward edges are added until the budget is spent, then the
/// requested number of self-cycles. Sources become loads/constants, sinks
/// become stores, interior nodes get an arithmetic/logical mix — matching
/// the op-class profile of LLVM-extracted loop kernels.
///
/// # Panics
/// Panics if `cfg.nodes == 0` or `cfg.max_fanin == 0`.
#[must_use]
// The construction loops index `fanin`/`fanout` by both endpoints of
// each edge; an enumerate() rewrite would obscure that symmetry.
#[allow(clippy::needless_range_loop)]
pub fn random_dfg(name: &str, cfg: &RandomDfgConfig) -> Dfg {
    assert!(cfg.nodes > 0, "need at least one node");
    assert!(cfg.max_fanin > 0, "max_fanin must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6d61_707a_6572_6f00);
    let n = cfg.nodes;
    let min_edges = n.saturating_sub(1);
    let self_cycles = cfg.self_cycles.min(n);
    let max_forward = max_forward_edges(n, cfg.max_fanin);
    let forward = cfg
        .edges
        .saturating_sub(self_cycles)
        .clamp(min_edges, max_forward.max(min_edges));

    // Adjacency bookkeeping during construction.
    let mut fanin = vec![0usize; n];
    let mut fanout = vec![0usize; n];
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(forward);
    let mut has = std::collections::HashSet::new();

    // Spanning structure: connect i to a recent ancestor.
    for i in 1..n {
        let window = 6.min(i);
        let j = i - 1 - rng.gen_range(0..window);
        edges.push((j, i));
        has.insert((j, i));
        fanin[i] += 1;
        fanout[j] += 1;
    }

    // Extra forward edges.
    let mut guard = 0usize;
    while edges.len() < forward && guard < forward * 200 {
        guard += 1;
        let i = rng.gen_range(1..n);
        if fanin[i] >= cfg.max_fanin {
            continue;
        }
        let window = 10.min(i);
        let j = i - 1 - rng.gen_range(0..window);
        if has.contains(&(j, i)) {
            continue;
        }
        edges.push((j, i));
        has.insert((j, i));
        fanin[i] += 1;
        fanout[j] += 1;
    }
    // Fall back to exhaustive fill if random probing stalled.
    if edges.len() < forward {
        'outer: for i in 1..n {
            for j in (0..i).rev() {
                if edges.len() >= forward {
                    break 'outer;
                }
                if fanin[i] < cfg.max_fanin && !has.contains(&(j, i)) {
                    edges.push((j, i));
                    has.insert((j, i));
                    fanin[i] += 1;
                    fanout[j] += 1;
                }
            }
        }
    }

    // Opcode assignment by role.
    let interior_pool = [
        Opcode::Add,
        Opcode::Mul,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Shl,
        Opcode::And,
        Opcode::Cmp,
        Opcode::Xor,
        Opcode::Add,
    ];
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let op = if fanin[i] == 0 {
            if rng.gen_bool(0.6) {
                Opcode::Load
            } else {
                Opcode::Const
            }
        } else if fanout[i] == 0 {
            Opcode::Store
        } else {
            interior_pool[rng.gen_range(0..interior_pool.len())]
        };
        ops.push(op);
    }
    // Guarantee the documented profile: every kernel carries at least
    // one arithmetic op (small graphs can otherwise draw all-logical
    // interiors and all-load sources).
    if !ops.iter().any(|o| o.class() == crate::OpClass::Arithmetic) {
        if let Some(i) = (0..n).find(|&i| fanin[i] > 0 && fanout[i] > 0) {
            ops[i] = Opcode::Add;
        }
    }
    let mut b = DfgBuilder::new(name);
    let mut ids = Vec::with_capacity(n);
    for &op in &ops {
        ids.push(b.node(op));
    }
    for &(j, i) in &edges {
        b.edge(ids[j], ids[i]).expect("construction guarantees validity");
    }
    // Self cycles on interior arithmetic nodes (accumulators).
    let mut candidates: Vec<usize> =
        (0..n).filter(|&i| fanin[i] > 0 && fanout[i] > 0).collect();
    if candidates.is_empty() {
        candidates = (0..n).collect();
    }
    for k in 0..self_cycles {
        let i = candidates[k % candidates.len()];
        // Skip if a duplicate self-edge would arise (possible when
        // self_cycles exceeds candidate count).
        if !b.has_edge(ids[i], ids[i]) {
            b.back_edge(ids[i], ids[i], 1).expect("valid self cycle");
        }
    }
    b.finish().expect("generator builds valid DAGs")
}

fn max_forward_edges(n: usize, max_fanin: usize) -> usize {
    // Node i can take at most min(i, max_fanin) incoming edges.
    (0..n).map(|i| i.min(max_fanin)).sum()
}

/// Generate the curriculum of §3.6.2: random DFGs ordered easy → hard
/// (node counts from `min_nodes` to `max_nodes`, `per_size` graphs each).
#[must_use]
pub fn curriculum(min_nodes: usize, max_nodes: usize, per_size: usize, seed: u64) -> Vec<Dfg> {
    let mut out = Vec::new();
    for nodes in min_nodes..=max_nodes {
        for k in 0..per_size {
            let cfg = RandomDfgConfig {
                nodes,
                edges: nodes + nodes / 4,
                self_cycles: usize::from(nodes >= 8 && k % 3 == 0),
                max_fanin: 3,
                seed: seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((nodes * 131 + k) as u64),
            };
            out.push(random_dfg(&format!("rand_{nodes}_{k}"), &cfg));
        }
    }
    out
}

/// A crude difficulty score used to order training graphs: more nodes,
/// more edges and more recurrences are harder to map.
#[must_use]
pub fn difficulty(dfg: &Dfg) -> f64 {
    let back: usize = dfg.edges().filter(|e| e.dist > 0).count();
    dfg.node_count() as f64 + 0.5 * dfg.edge_count() as f64 + 2.0 * back as f64
}

/// Maximum fan-out over all nodes — a quick congestion indicator.
#[must_use]
pub fn max_fanout(dfg: &Dfg) -> usize {
    dfg.node_ids().map(|u| dfg.out_degree(u)).max().unwrap_or(0)
}

/// Maximum fan-in over all nodes.
#[must_use]
pub fn max_fanin_of(dfg: &Dfg) -> usize {
    dfg.node_ids().map(|u| dfg.in_degree(u)).max().unwrap_or(0)
}

/// Check structural sanity used by tests and the trainer: connected in the
/// undirected sense and every node reachable in the dependence order.
#[must_use]
pub fn is_weakly_connected(dfg: &Dfg) -> bool {
    let n = dfg.node_count();
    if n == 0 {
        return false;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId(0)];
    seen[0] = true;
    while let Some(u) = stack.pop() {
        for e in dfg.out_edges(u) {
            if !seen[e.dst.index()] {
                seen[e.dst.index()] = true;
                stack.push(e.dst);
            }
        }
        for e in dfg.in_edges(u) {
            if !seen[e.src.index()] {
                seen[e.src.index()] = true;
                stack.push(e.src);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_node_and_edge_counts() {
        for seed in 0..10 {
            let cfg = RandomDfgConfig { nodes: 20, edges: 26, self_cycles: 1, seed, ..Default::default() };
            let g = random_dfg("t", &cfg);
            assert_eq!(g.node_count(), 20);
            assert_eq!(g.edge_count(), 26, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomDfgConfig { nodes: 15, edges: 20, seed: 42, ..Default::default() };
        let a = random_dfg("a", &cfg);
        let b = random_dfg("a", &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            random_dfg("x", &RandomDfgConfig { nodes: 15, edges: 20, seed, ..Default::default() })
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn generated_graphs_are_connected() {
        for seed in 0..20 {
            let cfg = RandomDfgConfig { nodes: 10, edges: 13, seed, ..Default::default() };
            assert!(is_weakly_connected(&random_dfg("c", &cfg)));
        }
    }

    #[test]
    fn fanin_cap_respected() {
        let cfg = RandomDfgConfig { nodes: 30, edges: 70, max_fanin: 2, seed: 7, ..Default::default() };
        let g = random_dfg("f", &cfg);
        // Self cycles excluded: cfg requests none.
        assert!(max_fanin_of(&g) <= 2);
    }

    #[test]
    fn curriculum_is_ordered_easy_to_hard() {
        let c = curriculum(3, 10, 2, 99);
        assert_eq!(c.len(), 16);
        let d: Vec<f64> = c.iter().map(difficulty).collect();
        // Within the curriculum, difficulty trends upward across sizes.
        assert!(d.first().unwrap() < d.last().unwrap());
    }

    #[test]
    fn single_node_graph_supported() {
        let cfg = RandomDfgConfig { nodes: 1, edges: 0, ..Default::default() };
        let g = random_dfg("one", &cfg);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edge_budget_clamped_to_feasible_range() {
        // Requesting absurdly many edges still terminates with the max.
        let cfg = RandomDfgConfig { nodes: 5, edges: 1000, max_fanin: 3, ..Default::default() };
        let g = random_dfg("clamp", &cfg);
        assert_eq!(g.node_count(), 5);
        assert!(g.edge_count() <= 1 + 2 + 3 + 3);
    }
}
