//! Operation codes and functional classes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The functional class an operation belongs to.
///
/// The paper's CGRA abstraction encodes, per PE, three boolean
/// capabilities: "whether this PE can perform logical, arithmetic, and
/// memory access operations" (§3.2.2). Opcodes are grouped accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer arithmetic (add, multiply, …).
    Arithmetic,
    /// Bitwise / comparison / selection operations.
    Logical,
    /// Memory accesses (loads and stores).
    Memory,
}

impl OpClass {
    /// All classes, in a fixed order matching the feature encoding.
    pub const ALL: [OpClass; 3] = [OpClass::Logical, OpClass::Arithmetic, OpClass::Memory];

    /// Index of this class inside [`OpClass::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            OpClass::Logical => 0,
            OpClass::Arithmetic => 1,
            OpClass::Memory => 2,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Arithmetic => "arith",
            OpClass::Logical => "logic",
            OpClass::Memory => "mem",
        };
        f.write_str(s)
    }
}

/// Operation code of a DFG node.
///
/// The set covers the loop-kernel operations used by the paper's
/// benchmark suite (Microbench / ExPRESS / Embench-IoT kernels after LLVM
/// extraction): word-level arithmetic, bitwise logic, comparisons /
/// selects, and memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Opcode {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Integer comparison.
    Cmp,
    /// Two-way select (conditional move).
    Select,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Loop-invariant constant feed.
    Const,
    /// Accumulator / loop-carried phi.
    Phi,
}

impl Opcode {
    /// All opcodes in a fixed order; the position doubles as the numeric
    /// encoding used in node feature vectors.
    pub const ALL: [Opcode; 16] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Not,
        Opcode::Cmp,
        Opcode::Select,
        Opcode::Load,
        Opcode::Store,
        Opcode::Const,
        Opcode::Phi,
    ];

    /// Numeric encoding of the opcode (index in [`Opcode::ALL`]).
    #[must_use]
    pub fn code(self) -> usize {
        Opcode::ALL
            .iter()
            .position(|&o| o == self)
            .expect("opcode present in ALL")
    }

    /// Functional class of the opcode.
    #[must_use]
    pub fn class(self) -> OpClass {
        match self {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Div
            | Opcode::Const
            | Opcode::Phi => OpClass::Arithmetic,
            Opcode::Shl
            | Opcode::Shr
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Not
            | Opcode::Cmp
            | Opcode::Select => OpClass::Logical,
            Opcode::Load | Opcode::Store => OpClass::Memory,
        }
    }

    /// Execution latency in cycles.
    ///
    /// The paper's timing model (as in CGRA-ME) issues one operation per
    /// PE per cycle; all operations complete in a single cycle.
    #[must_use]
    pub fn latency(self) -> u32 {
        1
    }

    /// Short lowercase mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Not => "not",
            Opcode::Cmp => "cmp",
            Opcode::Select => "select",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Const => "const",
            Opcode::Phi => "phi",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an [`Opcode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpcodeError(pub String);

impl fmt::Display for ParseOpcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown opcode mnemonic `{}`", self.0)
    }
}

impl std::error::Error for ParseOpcodeError {}

impl FromStr for Opcode {
    type Err = ParseOpcodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Opcode::ALL
            .iter()
            .copied()
            .find(|o| o.mnemonic() == s)
            .ok_or_else(|| ParseOpcodeError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_dense_and_unique() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.code(), i);
        }
    }

    #[test]
    fn every_opcode_round_trips_through_mnemonic() {
        for op in Opcode::ALL {
            let parsed: Opcode = op.mnemonic().parse().unwrap();
            assert_eq!(parsed, op);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "frobnicate".parse::<Opcode>().unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn classes_partition_opcodes() {
        assert_eq!(Opcode::Add.class(), OpClass::Arithmetic);
        assert_eq!(Opcode::And.class(), OpClass::Logical);
        assert_eq!(Opcode::Load.class(), OpClass::Memory);
        assert_eq!(Opcode::Store.class(), OpClass::Memory);
        // Every opcode belongs to exactly one of the three classes.
        for op in Opcode::ALL {
            assert!(OpClass::ALL.contains(&op.class()));
        }
    }

    #[test]
    fn class_indices_match_all_order() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn latency_is_single_cycle() {
        for op in Opcode::ALL {
            assert_eq!(op.latency(), 1);
        }
    }
}
