//! Per-node feature vectors (§3.2.1 of the paper).
//!
//! Each DFG node is encoded into a 10-dimensional vector:
//! (1) id, (2) scheduling order from topological sorting, (3) scheduled
//! time slice, (4) scheduled modulo time slice, (5) in-degree,
//! (6) out-degree, (7) opcode, (8) has self-cycle, (9) number of DFG
//! nodes in the same modulo time slice, (10) id of the assigned PE.
//!
//! Feature (10) evolves with the mapping state, so callers supply the
//! current assignment (`None` for unmapped nodes, encoded as −1).

use crate::{Dfg, NodeId, Schedule};

/// Dimensionality of the DFG node feature vector.
pub const DFG_FEATURE_DIM: usize = 10;

/// Produce the raw (unnormalized) feature matrix, one row per node.
///
/// `assigned_pe[i]` is the PE id node `i` currently occupies, if any.
///
/// # Panics
/// Panics if `assigned_pe.len() != dfg.node_count()`.
#[must_use]
pub fn node_features(
    dfg: &Dfg,
    schedule: &Schedule,
    assigned_pe: &[Option<usize>],
) -> Vec<[f32; DFG_FEATURE_DIM]> {
    assert_eq!(assigned_pe.len(), dfg.node_count(), "one assignment slot per node");
    let rank = dfg.topological_rank();
    dfg.node_ids()
        .map(|u| {
            let node = dfg.node(u);
            [
                u.0 as f32,
                rank[u.index()] as f32,
                schedule.time(u) as f32,
                schedule.modulo_slot(u) as f32,
                dfg.in_degree(u) as f32,
                dfg.out_degree(u) as f32,
                node.opcode.code() as f32,
                f32::from(u8::from(node.has_self_cycle)),
                schedule.modulo_peers(u) as f32,
                assigned_pe[u.index()].map_or(-1.0, |p| p as f32),
            ]
        })
        .collect()
}

/// Normalize a feature matrix in place so every column lies roughly in
/// [−1, 1], which keeps the GAT inputs well-conditioned.
///
/// Scaling constants: ids / ranks / degrees / peer counts by node count,
/// time slices by makespan, modulo slot by II, opcode by opcode count,
/// assigned PE by `num_pes`.
pub fn normalize_features(
    features: &mut [[f32; DFG_FEATURE_DIM]],
    dfg: &Dfg,
    schedule: &Schedule,
    num_pes: usize,
) {
    let n = dfg.node_count().max(1) as f32;
    let makespan = schedule.makespan().max(1) as f32;
    let ii = schedule.ii().max(1) as f32;
    let ops = crate::Opcode::ALL.len() as f32;
    let pes = num_pes.max(1) as f32;
    for row in features.iter_mut() {
        row[0] /= n;
        row[1] /= n;
        row[2] /= makespan;
        row[3] /= ii;
        row[4] /= n;
        row[5] /= n;
        row[6] /= ops;
        // row[7] already boolean
        row[8] /= n;
        row[9] /= pes; // unmapped (-1) maps to a small negative value
    }
}

/// Convenience: raw features for a completely unmapped DFG.
#[must_use]
pub fn unmapped_features(dfg: &Dfg, schedule: &Schedule) -> Vec<[f32; DFG_FEATURE_DIM]> {
    node_features(dfg, schedule, &vec![None; dfg.node_count()])
}

/// Metadata vector for the node currently being placed (§3.2.4): its own
/// feature row plus the fraction of nodes already mapped.
pub const METADATA_DIM: usize = DFG_FEATURE_DIM + 1;

/// Build the metadata vector for `node` given the current assignment.
#[must_use]
pub fn node_metadata(
    features: &[[f32; DFG_FEATURE_DIM]],
    node: NodeId,
    mapped_fraction: f32,
) -> [f32; METADATA_DIM] {
    let mut meta = [0.0f32; METADATA_DIM];
    meta[..DFG_FEATURE_DIM].copy_from_slice(&features[node.index()]);
    meta[DFG_FEATURE_DIM] = mapped_fraction;
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii::ResourceModel;
    use crate::{modulo_schedule, DfgBuilder, Opcode};

    fn small() -> (Dfg, Schedule) {
        let mut b = DfgBuilder::new("t");
        let a = b.node(Opcode::Load);
        let m = b.node(Opcode::Mul);
        let s = b.node(Opcode::Store);
        b.edge(a, m).unwrap();
        b.edge(m, s).unwrap();
        b.back_edge(s, s, 1).unwrap();
        let g = b.finish().unwrap();
        let sch = modulo_schedule(&g, &ResourceModel::homogeneous(4), 8).unwrap();
        (g, sch)
    }

    #[test]
    fn feature_rows_match_paper_fields() {
        let (g, sch) = small();
        let f = unmapped_features(&g, &sch);
        assert_eq!(f.len(), 3);
        // id
        assert_eq!(f[0][0], 0.0);
        assert_eq!(f[2][0], 2.0);
        // degrees
        assert_eq!(f[1][4], 1.0);
        assert_eq!(f[1][5], 1.0);
        // self cycle flag on the store node
        assert_eq!(f[2][7], 1.0);
        assert_eq!(f[0][7], 0.0);
        // unmapped PE id is -1
        assert!(f.iter().all(|r| r[9] == -1.0));
    }

    #[test]
    fn assignment_shows_up_in_feature_ten() {
        let (g, sch) = small();
        let f = node_features(&g, &sch, &[Some(5), None, None]);
        assert_eq!(f[0][9], 5.0);
        assert_eq!(f[1][9], -1.0);
    }

    #[test]
    fn normalized_features_bounded() {
        let (g, sch) = small();
        let mut f = unmapped_features(&g, &sch);
        normalize_features(&mut f, &g, &sch, 16);
        for row in &f {
            for (i, v) in row.iter().enumerate() {
                assert!(v.abs() <= 1.5, "feature {i} out of range: {v}");
            }
        }
    }

    #[test]
    fn metadata_appends_progress() {
        let (g, sch) = small();
        let f = unmapped_features(&g, &sch);
        let m = node_metadata(&f, crate::NodeId(1), 0.5);
        assert_eq!(m[..DFG_FEATURE_DIM], f[1]);
        assert_eq!(m[DFG_FEATURE_DIM], 0.5);
    }

    #[test]
    #[should_panic(expected = "one assignment slot per node")]
    fn wrong_assignment_length_panics() {
        let (g, sch) = small();
        let _ = node_features(&g, &sch, &[None]);
    }
}
