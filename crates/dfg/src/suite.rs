//! The benchmark DFG suite of Table 2.
//!
//! The paper extracts these loop kernels from Microbench, the ExPRESS
//! benchmarks, and Embench-IoT with LLVM. We do not ship LLVM; instead
//! each kernel is synthesized deterministically with **exactly** the
//! vertex and edge counts of Table 2, a realistic op-class profile
//! (loads at the roots, arithmetic/logical interior, stores at the
//! sinks) and accumulation self-cycles on the reduction kernels. The
//! mapper only observes graph structure and opcodes, so this exercises
//! the same code paths as LLVM-extracted DFGs (see DESIGN.md §2).

use crate::random::{random_dfg, RandomDfgConfig};
use crate::Dfg;

/// Static description of one suite kernel (one row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel name as printed in Table 2.
    pub name: &'static str,
    /// Vertex count |V|.
    pub vertices: usize,
    /// Edge count |E| (including loop-carried edges).
    pub edges: usize,
    /// Number of accumulation self-cycles synthesized.
    pub self_cycles: usize,
    /// Whether this is one of the unrolled scalability kernels.
    pub unrolled: bool,
}

/// All Table 2 kernels in the paper's (alphabetical) order.
pub const KERNELS: [KernelSpec; 18] = [
    KernelSpec { name: "accumulate", vertices: 21, edges: 25, self_cycles: 1, unrolled: false },
    KernelSpec { name: "arf", vertices: 54, edges: 86, self_cycles: 0, unrolled: false },
    KernelSpec { name: "cap", vertices: 42, edges: 47, self_cycles: 0, unrolled: false },
    KernelSpec { name: "conv2", vertices: 18, edges: 20, self_cycles: 0, unrolled: false },
    KernelSpec { name: "conv3", vertices: 28, edges: 31, self_cycles: 0, unrolled: false },
    KernelSpec { name: "filter_u", vertices: 180, edges: 201, self_cycles: 0, unrolled: true },
    KernelSpec { name: "huf_u", vertices: 592, edges: 720, self_cycles: 0, unrolled: true },
    KernelSpec { name: "h2v2", vertices: 68, edges: 71, self_cycles: 0, unrolled: false },
    KernelSpec { name: "jpegdct_u", vertices: 255, edges: 295, self_cycles: 0, unrolled: true },
    KernelSpec { name: "mac", vertices: 12, edges: 14, self_cycles: 1, unrolled: false },
    KernelSpec { name: "mac2", vertices: 40, edges: 46, self_cycles: 1, unrolled: false },
    KernelSpec { name: "matmul", vertices: 26, edges: 28, self_cycles: 1, unrolled: false },
    KernelSpec { name: "mults1", vertices: 34, edges: 38, self_cycles: 0, unrolled: false },
    KernelSpec { name: "mults2", vertices: 42, edges: 48, self_cycles: 0, unrolled: false },
    KernelSpec { name: "mulul", vertices: 97, edges: 108, self_cycles: 0, unrolled: false },
    KernelSpec { name: "sort_u", vertices: 328, edges: 400, self_cycles: 0, unrolled: true },
    KernelSpec { name: "stencil_u", vertices: 141, edges: 159, self_cycles: 0, unrolled: true },
    KernelSpec { name: "sum", vertices: 8, edges: 9, self_cycles: 1, unrolled: false },
];

/// Instantiate one kernel from its spec.
#[must_use]
pub fn build(spec: &KernelSpec) -> Dfg {
    // Seed derived from the name so every kernel is unique but stable.
    let seed = spec
        .name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3));
    let cfg = RandomDfgConfig {
        nodes: spec.vertices,
        edges: spec.edges,
        self_cycles: spec.self_cycles,
        max_fanin: 3,
        seed,
    };
    random_dfg(spec.name, &cfg)
}

/// Build the whole suite in Table 2 order.
#[must_use]
pub fn all() -> Vec<Dfg> {
    KERNELS.iter().map(build).collect()
}

/// The non-unrolled kernels used for the mapping-quality experiments
/// (Figs. 8–11, 13 of the paper use the unrolled ones separately).
#[must_use]
pub fn standard() -> Vec<Dfg> {
    KERNELS.iter().filter(|k| !k.unrolled).map(build).collect()
}

/// The unrolled kernels used for the scalability study (Fig. 13).
#[must_use]
pub fn unrolled() -> Vec<Dfg> {
    KERNELS.iter().filter(|k| k.unrolled).map(build).collect()
}

/// Look a kernel up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Dfg> {
    KERNELS.iter().find(|k| k.name == name).map(build)
}

/// A small, quick-to-map subset used by examples and smoke tests.
#[must_use]
pub fn small() -> Vec<Dfg> {
    ["sum", "mac", "conv2", "accumulate"]
        .iter()
        .map(|n| by_name(n).expect("kernel exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::is_weakly_connected;

    #[test]
    fn table2_counts_match_exactly() {
        for spec in &KERNELS {
            let g = build(spec);
            assert_eq!(g.node_count(), spec.vertices, "{} |V|", spec.name);
            assert_eq!(g.edge_count(), spec.edges, "{} |E|", spec.name);
        }
    }

    #[test]
    fn reduction_kernels_have_self_cycles() {
        for name in ["accumulate", "mac", "mac2", "matmul", "sum"] {
            let g = by_name(name).unwrap();
            assert!(
                g.node_ids().any(|u| g.node(u).has_self_cycle),
                "{name} should carry an accumulator"
            );
        }
    }

    #[test]
    fn all_kernels_connected() {
        for g in all() {
            assert!(is_weakly_connected(&g), "{} disconnected", g.name());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = by_name("arf").unwrap();
        let b = by_name("arf").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn standard_and_unrolled_partition_suite() {
        assert_eq!(standard().len() + unrolled().len(), KERNELS.len());
        assert_eq!(unrolled().len(), 5);
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn kernels_use_memory_and_arithmetic() {
        for g in standard() {
            let counts = g.class_counts();
            assert!(counts[1] > 0, "{} has arithmetic", g.name());
            assert!(counts[2] > 0, "{} has memory ops", g.name());
        }
    }
}
