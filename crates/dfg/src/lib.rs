//! Data flow graph (DFG) intermediate representation for the MapZero CGRA
//! compiler.
//!
//! This crate provides everything the mapper needs to know about the
//! *software* side of the mapping problem:
//!
//! * the DFG IR itself ([`Dfg`], [`Node`], [`Edge`]) with inter-iteration
//!   dependence distances and self-cycles,
//! * opcodes grouped into the three functional classes the paper's PEs
//!   expose (arithmetic / logical / memory, [`OpClass`]),
//! * modulo scheduling: minimum initiation interval computation
//!   ([`mii`]) and a resource-constrained modulo list scheduler
//!   ([`schedule`]),
//! * the 10-dimensional per-node feature vectors of §3.2.1
//!   ([`features`]),
//! * the benchmark suite of Table 2 ([`suite`]) and a random DFG
//!   generator used for curriculum pre-training ([`random`]),
//! * text / DOT serialization ([`textfmt`], [`dot`]).
//!
//! # Example
//!
//! ```
//! use mapzero_dfg::{DfgBuilder, Opcode};
//!
//! # fn main() -> Result<(), mapzero_dfg::DfgError> {
//! let mut b = DfgBuilder::new("dotprod");
//! let a = b.node(Opcode::Load);
//! let x = b.node(Opcode::Load);
//! let m = b.node(Opcode::Mul);
//! let s = b.node(Opcode::Add);
//! let o = b.node(Opcode::Store);
//! b.edge(a, m)?;
//! b.edge(x, m)?;
//! b.edge(m, s)?;
//! b.back_edge(s, s, 1)?; // accumulation across iterations
//! b.edge(s, o)?;
//! let dfg = b.finish()?;
//! assert_eq!(dfg.node_count(), 5);
//! assert!(dfg.node(s).has_self_cycle);
//! # Ok(())
//! # }
//! ```

mod error;
mod graph;
mod op;

pub mod analysis;
pub mod dot;
pub mod features;
pub mod kernels;
pub mod mii;
pub mod random;
pub mod schedule;
pub mod suite;
pub mod textfmt;
pub mod transform;

pub use error::DfgError;
pub use graph::{Dfg, DfgBuilder, Edge, EdgeId, Node, NodeId};
pub use mii::{rec_mii, res_mii, ResourceModel};
pub use op::{OpClass, Opcode};
pub use schedule::{modulo_schedule, modulo_schedule_at, Schedule, ScheduleError};
