//! The data flow graph representation.

use crate::{DfgError, OpClass, Opcode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the node vector.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Index into the edge vector.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single operation in the data flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The operation this node performs.
    pub opcode: Opcode,
    /// Whether the node has a distance-1 dependence on itself
    /// (e.g. an accumulator). Mirrors feature (8) of §3.2.1.
    pub has_self_cycle: bool,
}

/// A data dependence between two operations.
///
/// `dist == 0` is an ordinary intra-iteration dependence; `dist >= 1` is a
/// loop-carried dependence crossing `dist` iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Inter-iteration dependence distance.
    pub dist: u32,
}

impl Edge {
    /// True if this edge carries a value across loop iterations.
    #[must_use]
    pub fn is_back_edge(&self) -> bool {
        self.dist > 0
    }
}

/// An immutable, validated data flow graph.
///
/// Construct with [`DfgBuilder`]. Forward (distance-0) edges are
/// guaranteed to be acyclic, so a topological order always exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    preds: Vec<Vec<EdgeId>>,
    succs: Vec<Vec<EdgeId>>,
    topo: Vec<NodeId>,
}

impl Dfg {
    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependences (including loop-carried back edges).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Access a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Access an edge.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterate over all node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Edges entering `id` (both forward and loop-carried).
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.preds[id.index()].iter().map(move |e| &self.edges[e.index()])
    }

    /// Edges leaving `id` (both forward and loop-carried).
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.succs[id.index()].iter().map(move |e| &self.edges[e.index()])
    }

    /// In-degree counting all edges (feature (5) of §3.2.1).
    #[must_use]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.preds[id.index()].len()
    }

    /// Out-degree counting all edges (feature (6) of §3.2.1).
    #[must_use]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.succs[id.index()].len()
    }

    /// Topological order over forward (distance-0) edges.
    ///
    /// Doubles as the scheduling order of §3.2.1, feature (2).
    #[must_use]
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Position of each node in the topological order.
    #[must_use]
    pub fn topological_rank(&self) -> Vec<usize> {
        let mut rank = vec![0usize; self.node_count()];
        for (i, &n) in self.topo.iter().enumerate() {
            rank[n.index()] = i;
        }
        rank
    }

    /// Number of nodes per functional class.
    #[must_use]
    pub fn class_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for n in &self.nodes {
            counts[n.opcode.class().index()] += 1;
        }
        counts
    }

    /// Whether any node requires the given functional class.
    #[must_use]
    pub fn uses_class(&self, class: OpClass) -> bool {
        self.class_counts()[class.index()] > 0
    }

    /// The maximum dependence distance over all edges (0 for pure DAGs).
    #[must_use]
    pub fn max_dist(&self) -> u32 {
        self.edges.iter().map(|e| e.dist).max().unwrap_or(0)
    }
}

/// Incremental builder for [`Dfg`].
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl DfgBuilder {
    /// Start building a DFG with the given kernel name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder { name: name.into(), nodes: Vec::new(), edges: Vec::new() }
    }

    /// Add an operation node; returns its id.
    pub fn node(&mut self, opcode: Opcode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { opcode, has_self_cycle: false });
        id
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add an intra-iteration dependence `src -> dst`.
    ///
    /// # Errors
    /// Returns [`DfgError::UnknownNode`] for out-of-range ids and
    /// [`DfgError::DuplicateEdge`] if the edge already exists.
    pub fn edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, DfgError> {
        self.push_edge(src, dst, 0)
    }

    /// Add a loop-carried dependence `src -> dst` crossing `dist`
    /// iterations.
    ///
    /// # Errors
    /// Returns [`DfgError::ZeroDistanceBackEdge`] if `dist == 0`,
    /// otherwise the same errors as [`DfgBuilder::edge`].
    pub fn back_edge(&mut self, src: NodeId, dst: NodeId, dist: u32) -> Result<EdgeId, DfgError> {
        if dist == 0 {
            return Err(DfgError::ZeroDistanceBackEdge { src: src.0, dst: dst.0 });
        }
        self.push_edge(src, dst, dist)
    }

    /// True if the directed edge `src -> dst` (any distance) exists.
    #[must_use]
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.edges.iter().any(|e| e.src == src && e.dst == dst)
    }

    fn push_edge(&mut self, src: NodeId, dst: NodeId, dist: u32) -> Result<EdgeId, DfgError> {
        for id in [src, dst] {
            if id.index() >= self.nodes.len() {
                return Err(DfgError::UnknownNode(id.0));
            }
        }
        if self.has_edge(src, dst) {
            return Err(DfgError::DuplicateEdge { src: src.0, dst: dst.0 });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, dist });
        Ok(id)
    }

    /// Validate and freeze the graph.
    ///
    /// # Errors
    /// Returns [`DfgError::Empty`] for a node-less graph and
    /// [`DfgError::ForwardCycle`] if the distance-0 edges contain a cycle.
    pub fn finish(mut self) -> Result<Dfg, DfgError> {
        if self.nodes.is_empty() {
            return Err(DfgError::Empty);
        }
        let n = self.nodes.len();
        let mut preds: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            succs[e.src.index()].push(id);
            preds[e.dst.index()].push(id);
            if e.src == e.dst && e.dist > 0 {
                self.nodes[e.src.index()].has_self_cycle = true;
            }
        }
        // Kahn's algorithm over forward edges only.
        let mut indeg: Vec<usize> = vec![0; n];
        for e in &self.edges {
            if e.dist == 0 {
                indeg[e.dst.index()] += 1;
            }
        }
        let mut queue: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|id| indeg[id.index()] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(u);
            for &eid in &succs[u.index()] {
                let e = self.edges[eid.index()];
                if e.dist == 0 {
                    indeg[e.dst.index()] -= 1;
                    if indeg[e.dst.index()] == 0 {
                        queue.push(e.dst);
                    }
                }
            }
        }
        if topo.len() != n {
            return Err(DfgError::ForwardCycle);
        }
        Ok(Dfg { name: self.name, nodes: self.nodes, edges: self.edges, preds, succs, topo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("diamond");
        let a = b.node(Opcode::Load);
        let l = b.node(Opcode::Add);
        let r = b.node(Opcode::Mul);
        let s = b.node(Opcode::Store);
        b.edge(a, l).unwrap();
        b.edge(a, r).unwrap();
        b.edge(l, s).unwrap();
        b.edge(r, s).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn topological_order_respects_forward_edges() {
        let g = diamond();
        let rank = g.topological_rank();
        for e in g.edges() {
            if e.dist == 0 {
                assert!(rank[e.src.index()] < rank[e.dst.index()]);
            }
        }
    }

    #[test]
    fn forward_cycle_rejected() {
        let mut b = DfgBuilder::new("cyc");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        b.edge(a, c).unwrap();
        b.edge(c, a).unwrap();
        assert_eq!(b.finish().unwrap_err(), DfgError::ForwardCycle);
    }

    #[test]
    fn back_edge_cycle_allowed_and_marks_self_cycle() {
        let mut b = DfgBuilder::new("acc");
        let a = b.node(Opcode::Add);
        b.back_edge(a, a, 1).unwrap();
        let g = b.finish().unwrap();
        assert!(g.node(NodeId(0)).has_self_cycle);
        assert_eq!(g.max_dist(), 1);
    }

    #[test]
    fn zero_distance_back_edge_rejected() {
        let mut b = DfgBuilder::new("bad");
        let a = b.node(Opcode::Add);
        assert!(matches!(
            b.back_edge(a, a, 0),
            Err(DfgError::ZeroDistanceBackEdge { .. })
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DfgBuilder::new("dup");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        b.edge(a, c).unwrap();
        assert!(matches!(b.edge(a, c), Err(DfgError::DuplicateEdge { .. })));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = DfgBuilder::new("oops");
        let a = b.node(Opcode::Add);
        assert!(matches!(b.edge(a, NodeId(7)), Err(DfgError::UnknownNode(7))));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(DfgBuilder::new("nil").finish().unwrap_err(), DfgError::Empty);
    }

    #[test]
    fn class_counts_sum_to_node_count() {
        let g = diamond();
        let counts = g.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), g.node_count());
    }
}
