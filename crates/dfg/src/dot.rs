//! Graphviz DOT export for visual inspection of DFGs.

use crate::Dfg;
use std::fmt::Write as _;

/// Render the DFG in Graphviz DOT syntax.
///
/// Back edges are drawn dashed and labeled with their iteration distance.
#[must_use]
pub fn to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for u in dfg.node_ids() {
        let node = dfg.node(u);
        let shape = match node.opcode.class() {
            crate::OpClass::Memory => "box",
            crate::OpClass::Logical => "diamond",
            crate::OpClass::Arithmetic => "ellipse",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}:{}\" shape={}];",
            u.0, u.0, node.opcode, shape
        );
    }
    for e in dfg.edges() {
        if e.dist == 0 {
            let _ = writeln!(out, "  n{} -> n{};", e.src.0, e.dst.0);
        } else {
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=dashed label=\"{}\"];",
                e.src.0, e.dst.0, e.dist
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Opcode};

    #[test]
    fn dot_is_deterministic() {
        let g = crate::suite::by_name("mac").unwrap();
        assert_eq!(to_dot(&g), to_dot(&g));
    }

    #[test]
    fn dot_node_count_matches_graph() {
        let g = crate::suite::by_name("sum").unwrap();
        let dot = to_dot(&g);
        let nodes = dot.lines().filter(|l| l.contains("[label=")).count();
        assert_eq!(nodes, g.node_count());
        let edges = dot.matches(" -> ").count();
        assert_eq!(edges, g.edge_count());
    }

    #[test]
    fn dot_contains_nodes_edges_and_distances() {
        let mut b = DfgBuilder::new("viz");
        let a = b.node(Opcode::Load);
        let c = b.node(Opcode::Add);
        b.edge(a, c).unwrap();
        b.back_edge(c, c, 1).unwrap();
        let dot = to_dot(&b.finish().unwrap());
        assert!(dot.contains("digraph \"viz\""));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=box")); // load is a memory op
    }
}
