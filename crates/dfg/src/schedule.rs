//! Resource-constrained modulo scheduling.
//!
//! The paper folds scheduling into placement ("scheduling is contained in
//! placement", §1): each DFG node gets a time slice, and its *modulo* time
//! slice (`time % II`) selects which copy of the CGRA in the modulo
//! routing resource graph it may occupy. This module produces that time
//! assignment with a modulo list scheduler.

use crate::mii::{mii, ResourceModel};
use crate::{Dfg, NodeId, OpClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A modulo schedule: a start time per node under a given II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    ii: u32,
    time: Vec<u32>,
}

impl Schedule {
    /// The initiation interval this schedule satisfies.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Absolute start time slice of `node`.
    #[must_use]
    pub fn time(&self, node: NodeId) -> u32 {
        self.time[node.index()]
    }

    /// Modulo time slice (`time % II`) of `node`.
    #[must_use]
    pub fn modulo_slot(&self, node: NodeId) -> u32 {
        self.time[node.index()] % self.ii
    }

    /// Total schedule length (latest start time + 1).
    #[must_use]
    pub fn makespan(&self) -> u32 {
        self.time.iter().copied().max().map_or(0, |t| t + 1)
    }

    /// Number of nodes sharing the modulo slice of `node`
    /// (feature (9) of §3.2.1, including the node itself).
    #[must_use]
    pub fn modulo_peers(&self, node: NodeId) -> usize {
        let slot = self.modulo_slot(node);
        self.time
            .iter()
            .enumerate()
            .filter(|&(i, &t)| t % self.ii == slot && i != node.index())
            .count()
            + 1
    }

    /// Nodes grouped by modulo slice, each inner vector in node-id order.
    #[must_use]
    pub fn slots(&self) -> Vec<Vec<NodeId>> {
        let mut slots = vec![Vec::new(); self.ii as usize];
        for (i, &t) in self.time.iter().enumerate() {
            slots[(t % self.ii) as usize].push(NodeId(i as u32));
        }
        slots
    }
}

/// Why modulo scheduling failed at a particular II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The fabric has no PE for a functional class the DFG needs.
    UnsupportedClass(OpClass),
    /// No schedule satisfying the resource and recurrence constraints was
    /// found at the requested II.
    Infeasible { ii: u32 },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnsupportedClass(c) => {
                write!(f, "fabric has no PE supporting {c} operations")
            }
            ScheduleError::Infeasible { ii } => {
                write!(f, "no modulo schedule exists at II = {ii}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Compute a modulo schedule for `dfg` at exactly the given `ii`.
///
/// Uses list scheduling in topological order: each node starts at the
/// earliest slice satisfying its forward dependences, then slides later
/// until its modulo slice has spare capacity (total and per functional
/// class). Loop-carried deadlines (`t(src) <= t(dst) + dist*II - latency`)
/// are verified afterwards; violation means infeasibility at this II.
///
/// # Errors
/// [`ScheduleError::UnsupportedClass`] if a needed class has no capable
/// PE; [`ScheduleError::Infeasible`] if no schedule exists at `ii`.
pub fn modulo_schedule_at(
    dfg: &Dfg,
    res: &ResourceModel,
    ii: u32,
) -> Result<Schedule, ScheduleError> {
    for class in OpClass::ALL {
        if dfg.class_counts()[class.index()] > 0 && res.per_class[class.index()] == 0 {
            return Err(ScheduleError::UnsupportedClass(class));
        }
    }
    let n = dfg.node_count();
    let mut time = vec![0u32; n];
    // Occupancy per modulo slot: total and per class.
    let mut used_total = vec![0usize; ii as usize];
    let mut used_class = vec![[0usize; 3]; ii as usize];
    // Bound how far a node may slide: beyond n*ii extra slots the modulo
    // pattern repeats, so nothing new can free up.
    let horizon = (n as u32 + 2) * ii;

    for &u in dfg.topological_order() {
        let mut earliest = 0u32;
        for e in dfg.in_edges(u) {
            if e.dist == 0 {
                let ready = time[e.src.index()] + dfg.node(e.src).opcode.latency();
                earliest = earliest.max(ready);
            }
        }
        let class = dfg.node(u).opcode.class().index();
        let mut t = earliest;
        let placed = loop {
            if t > earliest + horizon {
                break false;
            }
            let slot = (t % ii) as usize;
            if used_total[slot] < res.total && used_class[slot][class] < res.per_class[class] {
                break true;
            }
            t += 1;
        };
        if !placed {
            return Err(ScheduleError::Infeasible { ii });
        }
        time[u.index()] = t;
        let slot = (t % ii) as usize;
        used_total[slot] += 1;
        used_class[slot][class] += 1;
    }

    // Check loop-carried deadlines.
    for e in dfg.edges() {
        if e.dist > 0 {
            let lat = dfg.node(e.src).opcode.latency();
            if time[e.src.index()] + lat > time[e.dst.index()] + e.dist * ii {
                return Err(ScheduleError::Infeasible { ii });
            }
        }
    }
    Ok(Schedule { ii, time })
}

/// Compute a modulo schedule, starting at MII and increasing the II until
/// one is found (bounded by `max_ii`).
///
/// Returns the first feasible schedule, which therefore has the smallest
/// II this scheduler can achieve.
///
/// # Errors
/// Propagates [`ScheduleError::UnsupportedClass`]; returns
/// [`ScheduleError::Infeasible`] with `ii = max_ii` when the bound is
/// exhausted.
pub fn modulo_schedule(
    dfg: &Dfg,
    res: &ResourceModel,
    max_ii: u32,
) -> Result<Schedule, ScheduleError> {
    let start = mii(dfg, res).ok_or_else(|| {
        let missing = OpClass::ALL
            .into_iter()
            .find(|c| dfg.class_counts()[c.index()] > 0 && res.per_class[c.index()] == 0)
            .unwrap_or(OpClass::Arithmetic);
        ScheduleError::UnsupportedClass(missing)
    })?;
    for ii in start..=max_ii.max(start) {
        match modulo_schedule_at(dfg, res, ii) {
            Ok(s) => return Ok(s),
            Err(ScheduleError::Infeasible { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(ScheduleError::Infeasible { ii: max_ii })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Opcode};

    fn fanout_tree() -> Dfg {
        let mut b = DfgBuilder::new("tree");
        let root = b.node(Opcode::Load);
        let mids: Vec<_> = (0..4).map(|_| b.node(Opcode::Mul)).collect();
        let sink = b.node(Opcode::Store);
        for &m in &mids {
            b.edge(root, m).unwrap();
            b.edge(m, sink).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn schedule_respects_dependences() {
        let g = fanout_tree();
        let s = modulo_schedule(&g, &ResourceModel::homogeneous(16), 8).unwrap();
        for e in g.edges() {
            if e.dist == 0 {
                assert!(s.time(e.dst) > s.time(e.src), "edge {e:?}");
            }
        }
    }

    #[test]
    fn schedule_respects_modulo_capacity() {
        let g = fanout_tree();
        let res = ResourceModel::homogeneous(2);
        let s = modulo_schedule(&g, &res, 16).unwrap();
        let mut per_slot = vec![0usize; s.ii() as usize];
        for u in g.node_ids() {
            per_slot[s.modulo_slot(u) as usize] += 1;
        }
        assert!(per_slot.iter().all(|&c| c <= 2), "slots {per_slot:?}");
    }

    #[test]
    fn achieves_mii_on_easy_graph() {
        let g = fanout_tree(); // 6 nodes on 16 PEs: MII = 1
        let s = modulo_schedule(&g, &ResourceModel::homogeneous(16), 8).unwrap();
        assert_eq!(s.ii(), 1);
    }

    #[test]
    fn respects_per_class_capacity() {
        let mut b = DfgBuilder::new("mems");
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        let a = b.node(Opcode::Add);
        b.edge(l0, a).unwrap();
        b.edge(l1, a).unwrap();
        let g = b.finish().unwrap();
        let res = ResourceModel { total: 8, per_class: [8, 8, 1] };
        let s = modulo_schedule(&g, &res, 8).unwrap();
        assert_eq!(s.ii(), 2);
        // The two loads land in different modulo slices.
        assert_ne!(s.modulo_slot(NodeId(0)), s.modulo_slot(NodeId(1)));
    }

    #[test]
    fn unsupported_class_reported() {
        let mut b = DfgBuilder::new("mem");
        b.node(Opcode::Load);
        let g = b.finish().unwrap();
        let res = ResourceModel { total: 4, per_class: [4, 4, 0] };
        assert_eq!(
            modulo_schedule(&g, &res, 4).unwrap_err(),
            ScheduleError::UnsupportedClass(OpClass::Memory)
        );
    }

    #[test]
    fn loop_carried_deadline_enforced() {
        // 3-long cycle carried over one iteration requires II >= 3.
        let mut b = DfgBuilder::new("rec");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Mul);
        let d = b.node(Opcode::Sub);
        b.edge(a, c).unwrap();
        b.edge(c, d).unwrap();
        b.back_edge(d, a, 1).unwrap();
        let g = b.finish().unwrap();
        let s = modulo_schedule(&g, &ResourceModel::homogeneous(16), 8).unwrap();
        assert_eq!(s.ii(), 3);
    }

    #[test]
    fn modulo_peers_counts_self() {
        let g = fanout_tree();
        let s = modulo_schedule(&g, &ResourceModel::homogeneous(16), 8).unwrap();
        assert_eq!(g.node_count(), 6);
        // With II = 1 every node shares the single slice.
        assert_eq!(s.modulo_peers(NodeId(0)), 6);
    }

    #[test]
    fn slots_partition_nodes() {
        let g = fanout_tree();
        let s = modulo_schedule(&g, &ResourceModel::homogeneous(2), 16).unwrap();
        let slots = s.slots();
        let count: usize = slots.iter().map(Vec::len).sum();
        assert_eq!(count, g.node_count());
    }
}
