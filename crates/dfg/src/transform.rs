//! DFG transformation passes.
//!
//! The paper's benchmark flow applies "node balancing and memory access
//! alignment operation elimination" after LLVM extraction (§4.1.2), and
//! evaluates scalability on *unrolled* kernels. This module implements
//! the corresponding graph-level passes:
//!
//! * [`unroll`] — replicate the loop body `factor` times, rewiring
//!   loop-carried dependences between copies;
//! * [`balance_fanout`] — node balancing: split nodes whose fan-out
//!   exceeds a bound into a tree of routing-friendly copies;
//! * [`eliminate_redundant_loads`] — memory-access cleanup: merge loads
//!   that are structurally identical (same opcode, same predecessors).

use crate::{Dfg, DfgBuilder, NodeId, Opcode};
use std::collections::HashMap;

/// Unroll a loop DFG by `factor`.
///
/// Copy `k` of node `u` becomes node `k * n + u`. A loop-carried edge
/// `u → v` with distance `d` becomes, for each copy `k`:
///
/// * an ordinary forward edge `(k − d) → k` when `k ≥ d` (the
///   dependence is now satisfied inside the unrolled body), or
/// * a loop-carried edge of distance `ceil((d − k) / factor)` wrapping
///   to copy `k − d mod factor` otherwise.
///
/// # Panics
/// Panics if `factor == 0`.
#[must_use]
pub fn unroll(dfg: &Dfg, factor: u32) -> Dfg {
    assert!(factor > 0, "unroll factor must be positive");
    if factor == 1 {
        return dfg.clone();
    }
    let n = dfg.node_count() as u32;
    let mut b = DfgBuilder::new(format!("{}_u{}", dfg.name(), factor));
    let mut ids = Vec::with_capacity((n * factor) as usize);
    for _copy in 0..factor {
        for u in dfg.node_ids() {
            ids.push(b.node(dfg.node(u).opcode));
        }
    }
    let id = |copy: u32, u: NodeId| ids[(copy * n + u.0) as usize];
    for copy in 0..factor {
        for e in dfg.edges() {
            if e.dist == 0 {
                b.edge(id(copy, e.src), id(copy, e.dst))
                    .expect("copies preserve acyclicity");
            } else if copy >= e.dist {
                // Producer is an earlier copy in the same unrolled body.
                let src_copy = copy - e.dist;
                if !b.has_edge(id(src_copy, e.src), id(copy, e.dst)) {
                    b.edge(id(src_copy, e.src), id(copy, e.dst))
                        .expect("earlier copy keeps topological order");
                }
            } else {
                // Still crosses the unrolled-loop boundary.
                let remaining = e.dist - copy;
                let new_dist = remaining.div_ceil(factor);
                let src_copy = (factor - (remaining % factor)) % factor;
                if !b.has_edge(id(src_copy, e.src), id(copy, e.dst)) {
                    b.back_edge(id(src_copy, e.src), id(copy, e.dst), new_dist)
                        .expect("distance >= 1 by construction");
                }
            }
        }
    }
    b.finish().expect("unrolling preserves validity")
}

/// Node balancing: any node with fan-out greater than `max_fanout` gets
/// routing-copy nodes (`Phi`, a register move) so that no node in the
/// result exceeds the bound. Returns the original graph when already
/// balanced.
///
/// # Panics
/// Panics if `max_fanout < 2`.
#[must_use]
pub fn balance_fanout(dfg: &Dfg, max_fanout: usize) -> Dfg {
    assert!(max_fanout >= 2, "fan-out bound must be at least 2");
    if dfg.node_ids().all(|u| dfg.out_degree(u) <= max_fanout) {
        return dfg.clone();
    }
    let mut b = DfgBuilder::new(format!("{}_bal", dfg.name()));
    let ids: Vec<NodeId> = dfg.node_ids().map(|u| b.node(dfg.node(u).opcode)).collect();
    for u in dfg.node_ids() {
        let outs: Vec<_> = dfg.out_edges(u).copied().collect();
        if outs.len() <= max_fanout {
            for e in outs {
                add_edge(&mut b, ids[e.src.index()], ids[e.dst.index()], e.dist);
            }
            continue;
        }
        // Keep (max_fanout - 1) direct consumers, funnel the rest
        // through a chain of copy nodes each of fan-out `max_fanout`.
        let mut source = ids[u.index()];
        let mut remaining = outs;
        loop {
            if remaining.len() <= max_fanout {
                for e in remaining {
                    add_edge(&mut b, source, ids[e.dst.index()], e.dist);
                }
                break;
            }
            let direct: Vec<_> = remaining.drain(..max_fanout - 1).collect();
            for e in direct {
                add_edge(&mut b, source, ids[e.dst.index()], e.dist);
            }
            let copy = b.node(Opcode::Phi);
            b.edge(source, copy).expect("fresh copy node");
            source = copy;
        }
    }
    b.finish().expect("balancing preserves validity")
}

fn add_edge(b: &mut DfgBuilder, src: NodeId, dst: NodeId, dist: u32) {
    if b.has_edge(src, dst) {
        return;
    }
    if dist == 0 {
        b.edge(src, dst).expect("valid forward edge");
    } else {
        b.back_edge(src, dst, dist).expect("valid back edge");
    }
}

/// Merge structurally-identical loads: loads with the same (sorted)
/// predecessor set collapse into one, and their consumers re-point at
/// the survivor. Mirrors the "memory access alignment operation
/// elimination" cleanup.
#[must_use]
pub fn eliminate_redundant_loads(dfg: &Dfg) -> Dfg {
    // Map each load to a signature of its predecessors.
    let mut survivor: HashMap<Vec<(u32, u32)>, NodeId> = HashMap::new();
    let mut replace: HashMap<NodeId, NodeId> = HashMap::new();
    for u in dfg.node_ids() {
        if dfg.node(u).opcode != Opcode::Load {
            continue;
        }
        let mut sig: Vec<(u32, u32)> =
            dfg.in_edges(u).map(|e| (e.src.0, e.dist)).collect();
        sig.sort_unstable();
        match survivor.entry(sig) {
            std::collections::hash_map::Entry::Occupied(o) => {
                replace.insert(u, *o.get());
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(u);
            }
        }
    }
    if replace.is_empty() {
        return dfg.clone();
    }
    let mut b = DfgBuilder::new(dfg.name().to_owned());
    let mut ids: HashMap<NodeId, NodeId> = HashMap::new();
    for u in dfg.node_ids() {
        if !replace.contains_key(&u) {
            ids.insert(u, b.node(dfg.node(u).opcode));
        }
    }
    let resolve = |u: NodeId| ids[replace.get(&u).unwrap_or(&u)];
    for e in dfg.edges() {
        // Skip edges whose destination was merged away (duplicates of
        // the survivor's own inputs).
        if replace.contains_key(&e.dst) {
            continue;
        }
        add_edge(&mut b, resolve(e.src), resolve(e.dst), e.dist);
    }
    b.finish().expect("elimination preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accumulator() -> Dfg {
        let mut b = DfgBuilder::new("acc");
        let ld = b.node(Opcode::Load);
        let add = b.node(Opcode::Add);
        let st = b.node(Opcode::Store);
        b.edge(ld, add).unwrap();
        b.back_edge(add, add, 1).unwrap();
        b.edge(add, st).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn unroll_by_one_is_identity() {
        let g = accumulator();
        assert_eq!(unroll(&g, 1), g);
    }

    #[test]
    fn unroll_scales_nodes_and_internalizes_carries() {
        let g = accumulator();
        let u2 = unroll(&g, 2);
        assert_eq!(u2.node_count(), 6);
        // Self-cycle of distance 1: copy 1's add depends on copy 0's
        // add as a *forward* edge; only copy 0 keeps a back edge.
        let back: Vec<_> = u2.edges().filter(|e| e.dist > 0).collect();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].dst.0, 1); // copy-0 add (id 1)
        assert_eq!(back[0].src.0, 4); // copy-1 add (id 3 + 1)
        // Dependences remain schedulable.
        assert_eq!(crate::rec_mii(&u2), 2); // 2 adds per unrolled iter
    }

    #[test]
    fn unroll_distance_two_carries() {
        let mut b = DfgBuilder::new("d2");
        let a = b.node(Opcode::Add);
        b.back_edge(a, a, 2).unwrap();
        let g = b.finish().unwrap();
        let u2 = unroll(&g, 2);
        // Each copy depends on itself two iterations back -> distance 1
        // in the unrolled loop.
        assert_eq!(u2.edge_count(), 2);
        assert!(u2.edges().all(|e| e.dist == 1 && e.src == e.dst));
    }

    #[test]
    fn balance_fanout_bounds_out_degree() {
        let mut b = DfgBuilder::new("fan");
        let root = b.node(Opcode::Load);
        let sinks: Vec<_> = (0..7).map(|_| b.node(Opcode::Store)).collect();
        for s in &sinks {
            b.edge(root, *s).unwrap();
        }
        let g = b.finish().unwrap();
        let balanced = balance_fanout(&g, 3);
        assert!(balanced.node_ids().all(|u| balanced.out_degree(u) <= 3));
        // Same number of stores, plus copy nodes.
        let stores =
            balanced.node_ids().filter(|&u| balanced.node(u).opcode == Opcode::Store).count();
        assert_eq!(stores, 7);
        assert!(balanced.node_count() > g.node_count());
    }

    #[test]
    fn balance_noop_when_within_bound() {
        let g = accumulator();
        assert_eq!(balance_fanout(&g, 4), g);
    }

    #[test]
    fn redundant_loads_merged() {
        let mut b = DfgBuilder::new("loads");
        let addr = b.node(Opcode::Const);
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        let use0 = b.node(Opcode::Add);
        let use1 = b.node(Opcode::Mul);
        b.edge(addr, l0).unwrap();
        b.edge(addr, l1).unwrap();
        b.edge(l0, use0).unwrap();
        b.edge(l1, use1).unwrap();
        let g = b.finish().unwrap();
        let cleaned = eliminate_redundant_loads(&g);
        assert_eq!(cleaned.node_count(), 4); // one load gone
        let loads =
            cleaned.node_ids().filter(|&u| cleaned.node(u).opcode == Opcode::Load).count();
        assert_eq!(loads, 1);
        // Both consumers now read the surviving load.
        let load = cleaned
            .node_ids()
            .find(|&u| cleaned.node(u).opcode == Opcode::Load)
            .unwrap();
        assert_eq!(cleaned.out_degree(load), 2);
    }

    #[test]
    fn distinct_loads_kept() {
        let mut b = DfgBuilder::new("loads2");
        let a0 = b.node(Opcode::Const);
        let a1 = b.node(Opcode::Const);
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        b.edge(a0, l0).unwrap();
        b.edge(a1, l1).unwrap();
        let g = b.finish().unwrap();
        let cleaned = eliminate_redundant_loads(&g);
        assert_eq!(cleaned.node_count(), 4);
    }

    #[test]
    fn unrolled_graph_schedulable_end_to_end() {
        let g = accumulator();
        let u4 = unroll(&g, 4);
        let res = crate::ResourceModel::homogeneous(16);
        let s = crate::modulo_schedule(&u4, &res, 32).unwrap();
        for e in u4.edges() {
            assert!(s.time(e.src) < s.time(e.dst) + e.dist * s.ii());
        }
    }
}
