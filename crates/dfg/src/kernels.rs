//! Structured loop-kernel builders.
//!
//! Where [`crate::suite`] reproduces Table 2's exact vertex/edge counts
//! with seeded synthesis, this module builds *structurally faithful*
//! kernels — convolutions, matrix multiplies, FIR filters, reductions,
//! stencils — for users who want realistic dataflow shapes rather than
//! statistics. All builders return validated DFGs.

use crate::{Dfg, DfgBuilder, NodeId, Opcode};

/// 1-D convolution / FIR filter with `taps` coefficient taps: `taps`
/// loads, `taps` constant coefficients, `taps` multiplies and an adder
/// tree, ending in one store.
///
/// # Panics
/// Panics if `taps == 0`.
#[must_use]
pub fn fir(taps: usize) -> Dfg {
    assert!(taps > 0, "need at least one tap");
    let mut b = DfgBuilder::new(format!("fir{taps}"));
    let mut products = Vec::with_capacity(taps);
    for _ in 0..taps {
        let x = b.node(Opcode::Load);
        let c = b.node(Opcode::Const);
        let m = b.node(Opcode::Mul);
        b.edge(x, m).expect("fresh nodes");
        b.edge(c, m).expect("fresh nodes");
        products.push(m);
    }
    let sum = adder_tree(&mut b, &products);
    let out = b.node(Opcode::Store);
    b.edge(sum, out).expect("fresh node");
    b.finish().expect("builder produces valid kernels")
}

/// 2-D convolution with a `k x k` kernel window: `k²` loads and
/// multiplies feeding an adder tree.
///
/// # Panics
/// Panics if `k == 0`.
#[must_use]
pub fn conv2d(k: usize) -> Dfg {
    assert!(k > 0, "kernel must be non-empty");
    let mut b = DfgBuilder::new(format!("conv2d_{k}x{k}"));
    let mut products = Vec::with_capacity(k * k);
    for _ in 0..k * k {
        let x = b.node(Opcode::Load);
        let c = b.node(Opcode::Const);
        let m = b.node(Opcode::Mul);
        b.edge(x, m).expect("fresh nodes");
        b.edge(c, m).expect("fresh nodes");
        products.push(m);
    }
    let sum = adder_tree(&mut b, &products);
    let st = b.node(Opcode::Store);
    b.edge(sum, st).expect("fresh node");
    b.finish().expect("builder produces valid kernels")
}

/// Inner-product kernel of a matrix multiply: `n` multiply-accumulate
/// lanes with a loop-carried accumulator.
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn matmul_inner(n: usize) -> Dfg {
    assert!(n > 0, "need at least one lane");
    let mut b = DfgBuilder::new(format!("matmul_inner{n}"));
    let mut products = Vec::with_capacity(n);
    for _ in 0..n {
        let a = b.node(Opcode::Load);
        let x = b.node(Opcode::Load);
        let m = b.node(Opcode::Mul);
        b.edge(a, m).expect("fresh nodes");
        b.edge(x, m).expect("fresh nodes");
        products.push(m);
    }
    let partial = adder_tree(&mut b, &products);
    let acc = b.node(Opcode::Add);
    b.edge(partial, acc).expect("fresh node");
    b.back_edge(acc, acc, 1).expect("self accumulation");
    let st = b.node(Opcode::Store);
    b.edge(acc, st).expect("fresh node");
    b.finish().expect("builder produces valid kernels")
}

/// Tree reduction over `n` loaded elements.
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn reduction(n: usize) -> Dfg {
    assert!(n > 0, "need at least one element");
    let mut b = DfgBuilder::new(format!("reduce{n}"));
    let leaves: Vec<NodeId> = (0..n).map(|_| b.node(Opcode::Load)).collect();
    let root = adder_tree(&mut b, &leaves);
    let st = b.node(Opcode::Store);
    b.edge(root, st).expect("fresh node");
    b.finish().expect("builder produces valid kernels")
}

/// 1-D 3-point stencil over `lanes` parallel output lanes: neighbouring
/// lanes share loads (the classic stencil reuse diamond).
///
/// # Panics
/// Panics if `lanes == 0`.
#[must_use]
pub fn stencil3(lanes: usize) -> Dfg {
    assert!(lanes > 0, "need at least one lane");
    let mut b = DfgBuilder::new(format!("stencil3_{lanes}"));
    // lanes + 2 input loads; lane i uses loads i, i+1, i+2.
    let loads: Vec<NodeId> = (0..lanes + 2).map(|_| b.node(Opcode::Load)).collect();
    for i in 0..lanes {
        let s0 = b.node(Opcode::Add);
        b.edge(loads[i], s0).expect("fresh nodes");
        b.edge(loads[i + 1], s0).expect("fresh nodes");
        let s1 = b.node(Opcode::Add);
        b.edge(s0, s1).expect("fresh nodes");
        b.edge(loads[i + 2], s1).expect("fresh nodes");
        let sh = b.node(Opcode::Shr); // divide by window size
        b.edge(s1, sh).expect("fresh nodes");
        let st = b.node(Opcode::Store);
        b.edge(sh, st).expect("fresh nodes");
    }
    b.finish().expect("builder produces valid kernels")
}

/// Butterfly stage of an FFT over `points` complex points (simplified
/// to one op per real component): pairs combined by add/sub with a
/// twiddle multiply.
///
/// # Panics
/// Panics if `points` is not an even positive number.
#[must_use]
pub fn fft_stage(points: usize) -> Dfg {
    assert!(points >= 2 && points.is_multiple_of(2), "need an even number of points");
    let mut b = DfgBuilder::new(format!("fft_stage{points}"));
    let inputs: Vec<NodeId> = (0..points).map(|_| b.node(Opcode::Load)).collect();
    for pair in 0..points / 2 {
        let hi = inputs[2 * pair];
        let lo = inputs[2 * pair + 1];
        let w = b.node(Opcode::Const);
        let t = b.node(Opcode::Mul);
        b.edge(lo, t).expect("fresh nodes");
        b.edge(w, t).expect("fresh nodes");
        let plus = b.node(Opcode::Add);
        let minus = b.node(Opcode::Sub);
        b.edge(hi, plus).expect("fresh nodes");
        b.edge(t, plus).expect("fresh nodes");
        b.edge(hi, minus).expect("fresh nodes");
        b.edge(t, minus).expect("fresh nodes");
        for n in [plus, minus] {
            let st = b.node(Opcode::Store);
            b.edge(n, st).expect("fresh nodes");
        }
    }
    b.finish().expect("builder produces valid kernels")
}

/// Balanced binary adder tree over `leaves`; returns the root.
fn adder_tree(b: &mut DfgBuilder, leaves: &[NodeId]) -> NodeId {
    assert!(!leaves.is_empty(), "tree needs leaves");
    let mut level: Vec<NodeId> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let s = b.node(Opcode::Add);
                b.edge(pair[0], s).expect("fresh node");
                b.edge(pair[1], s).expect("fresh node");
                next.push(s);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::mii::ResourceModel;

    #[test]
    fn fir_structure() {
        let g = fir(4);
        // 4 loads + 4 consts + 4 muls + 3 adds + 1 store = 16.
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.class_counts()[mapzero_class_index()], 5); // 4 loads + store
        assert_eq!(analysis::critical_path_length(&g), 5); // load,mul,add,add,store
    }

    fn mapzero_class_index() -> usize {
        crate::OpClass::Memory.index()
    }

    #[test]
    fn conv2d_grows_quadratically() {
        assert!(conv2d(3).node_count() > conv2d(2).node_count());
        let g = conv2d(3);
        // 9 windows: 9 loads, 9 consts, 9 muls, 8 adds, 1 store.
        assert_eq!(g.node_count(), 36);
    }

    #[test]
    fn matmul_inner_carries_accumulator() {
        let g = matmul_inner(4);
        assert!(g.node_ids().any(|u| g.node(u).has_self_cycle));
        assert_eq!(crate::rec_mii(&g), 1);
    }

    #[test]
    fn reduction_tree_depth_is_logarithmic() {
        let g = reduction(8);
        // loads(1) + 3 tree levels + store = 5.
        assert_eq!(analysis::critical_path_length(&g), 5);
        let g16 = reduction(16);
        assert_eq!(analysis::critical_path_length(&g16), 6);
    }

    #[test]
    fn stencil_shares_loads_across_lanes() {
        let g = stencil3(4);
        // Interior loads feed three lanes.
        let max_fanout = crate::random::max_fanout(&g);
        assert!(max_fanout >= 3, "load sharing expected, got {max_fanout}");
        assert_eq!(g.node_count(), 4 + 2 + 4 * 4);
    }

    #[test]
    fn fft_stage_shape() {
        let g = fft_stage(8);
        // Per pair: 2 loads + const + mul + add + sub + 2 stores = 8.
        assert_eq!(g.node_count(), 4 * 8);
        assert!(crate::random::is_weakly_connected(&fft_stage(2)));
    }

    #[test]
    fn all_kernels_schedulable_on_16_pes() {
        let res = ResourceModel::homogeneous(16);
        for g in [fir(4), conv2d(3), matmul_inner(4), reduction(8), stencil3(3), fft_stage(4)]
        {
            let s = crate::modulo_schedule(&g, &res, 64)
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(s.ii() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "even number of points")]
    fn fft_rejects_odd() {
        let _ = fft_stage(3);
    }
}
