//! Per-PE functional capabilities.

use mapzero_dfg::{OpClass, Opcode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The set of functional classes a PE can execute.
///
/// Mirrors features (4)–(6) of the paper's hardware encoding: three
/// booleans for logical, arithmetic, and memory-access support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Capability {
    /// Supports bitwise / comparison / select operations.
    pub logical: bool,
    /// Supports integer arithmetic.
    pub arithmetic: bool,
    /// Supports loads and stores.
    pub memory: bool,
}

impl Capability {
    /// A fully general PE (the paper's default: ALU + 2 load units +
    /// 1 store unit + constants).
    pub const ALL: Capability = Capability { logical: true, arithmetic: true, memory: true };

    /// A compute-only PE (no memory port).
    pub const COMPUTE: Capability = Capability { logical: true, arithmetic: true, memory: false };

    /// An arithmetic-only PE.
    pub const ARITH: Capability = Capability { logical: false, arithmetic: true, memory: false };

    /// A PE with no functional units (placeholder; never useful alone).
    pub const NONE: Capability = Capability { logical: false, arithmetic: false, memory: false };

    /// True if the PE can execute ops of `class`.
    #[must_use]
    pub fn supports_class(self, class: OpClass) -> bool {
        match class {
            OpClass::Logical => self.logical,
            OpClass::Arithmetic => self.arithmetic,
            OpClass::Memory => self.memory,
        }
    }

    /// True if the PE can execute `op`.
    #[must_use]
    pub fn supports(self, op: Opcode) -> bool {
        self.supports_class(op.class())
    }

    /// The three booleans in the feature-vector order
    /// (logical, arithmetic, memory).
    #[must_use]
    pub fn as_bools(self) -> [bool; 3] {
        [self.logical, self.arithmetic, self.memory]
    }

    /// Number of supported classes.
    #[must_use]
    pub fn class_count(self) -> usize {
        self.as_bools().iter().filter(|&&b| b).count()
    }
}

impl Default for Capability {
    fn default() -> Self {
        Capability::ALL
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (flag, name) in [
            (self.logical, "logic"),
            (self.arithmetic, "arith"),
            (self.memory, "mem"),
        ] {
            if flag {
                if !first {
                    f.write_str("+")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("none")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_supports_everything() {
        for op in Opcode::ALL {
            assert!(Capability::ALL.supports(op));
        }
    }

    #[test]
    fn compute_refuses_memory() {
        assert!(!Capability::COMPUTE.supports(Opcode::Load));
        assert!(!Capability::COMPUTE.supports(Opcode::Store));
        assert!(Capability::COMPUTE.supports(Opcode::Add));
        assert!(Capability::COMPUTE.supports(Opcode::And));
    }

    #[test]
    fn arith_only() {
        assert!(Capability::ARITH.supports(Opcode::Mul));
        assert!(!Capability::ARITH.supports(Opcode::Xor));
        assert!(!Capability::ARITH.supports(Opcode::Load));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Capability::ALL.to_string(), "logic+arith+mem");
        assert_eq!(Capability::ARITH.to_string(), "arith");
        assert_eq!(Capability::NONE.to_string(), "none");
    }

    #[test]
    fn bools_order_matches_feature_encoding() {
        let c = Capability { logical: true, arithmetic: false, memory: true };
        assert_eq!(c.as_bools(), [true, false, true]);
        assert_eq!(c.class_count(), 2);
    }
}
