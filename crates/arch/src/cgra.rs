//! The fabric description: a grid of PEs plus directed links.

use crate::{Capability, Interconnect};
use mapzero_dfg::{OpClass, Opcode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a PE within a [`Cgra`], in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeId(pub u32);

impl PeId {
    /// Index into the PE vector.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// A processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pe {
    /// Grid row.
    pub row: usize,
    /// Grid column.
    pub col: usize,
    /// Functional capabilities.
    pub capability: Capability,
}

/// How values travel between PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingStyle {
    /// Registered neighbour-to-neighbour routing: one link per cycle,
    /// values park in PE output registers between hops. Placement and
    /// routing are *coupled* (§3.3).
    NeighborRegister,
    /// HyCube-style circuit-switched mesh: crossbar switches with
    /// clockless repeaters let a value traverse several links within one
    /// cycle. Placement and routing are *decoupled*; Dijkstra routes
    /// after each placement (§3.3).
    CircuitSwitched,
}

impl RoutingStyle {
    /// True for the circuit-switched (HyCube) style.
    #[must_use]
    pub fn is_circuit_switched(self) -> bool {
        matches!(self, RoutingStyle::CircuitSwitched)
    }
}

/// A complete CGRA fabric description.
///
/// Construct via [`CgraBuilder`] or one of the [`crate::presets`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cgra {
    name: String,
    rows: usize,
    cols: usize,
    pes: Vec<Pe>,
    /// Directed adjacency: `links[p]` lists the PEs reachable from `p`
    /// over one physical link.
    links: Vec<Vec<PeId>>,
    /// Reverse adjacency.
    rlinks: Vec<Vec<PeId>>,
    interconnects: Vec<Interconnect>,
    style: RoutingStyle,
    /// ADRES-style constraint: all PEs of a row share one memory bus, so
    /// at most one memory operation may execute per row per time slice.
    row_shared_mem_bus: bool,
}

impl Cgra {
    /// Fabric name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of PEs.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Access a PE.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn pe(&self, id: PeId) -> &Pe {
        &self.pes[id.index()]
    }

    /// Iterate over all PE ids in row-major order.
    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.pes.len() as u32).map(PeId)
    }

    /// The PE at a grid coordinate.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the grid.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> PeId {
        assert!(row < self.rows && col < self.cols, "coordinate outside grid");
        PeId((row * self.cols + col) as u32)
    }

    /// Outgoing physical links of `p`.
    #[must_use]
    pub fn links_from(&self, p: PeId) -> &[PeId] {
        &self.links[p.index()]
    }

    /// Incoming physical links of `p`.
    #[must_use]
    pub fn links_to(&self, p: PeId) -> &[PeId] {
        &self.rlinks[p.index()]
    }

    /// Out-degree of `p` (feature (3) of §3.2.2).
    #[must_use]
    pub fn out_degree(&self, p: PeId) -> usize {
        self.links[p.index()].len()
    }

    /// In-degree of `p` (feature (2) of §3.2.2).
    #[must_use]
    pub fn in_degree(&self, p: PeId) -> usize {
        self.rlinks[p.index()].len()
    }

    /// Interconnect styles composing this fabric.
    #[must_use]
    pub fn interconnects(&self) -> &[Interconnect] {
        &self.interconnects
    }

    /// Routing style.
    #[must_use]
    pub fn style(&self) -> RoutingStyle {
        self.style
    }

    /// Whether rows share a single memory bus (ADRES).
    #[must_use]
    pub fn row_shared_mem_bus(&self) -> bool {
        self.row_shared_mem_bus
    }

    /// PEs able to execute `op`.
    pub fn capable_pes(&self, op: Opcode) -> impl Iterator<Item = PeId> + '_ {
        self.pe_ids().filter(move |&p| self.pe(p).capability.supports(op))
    }

    /// Number of PEs supporting each functional class, indexed by
    /// [`OpClass::index`]; used for ResMII.
    #[must_use]
    pub fn class_capacity(&self) -> [usize; 3] {
        let mut out = [0usize; 3];
        for pe in &self.pes {
            for class in OpClass::ALL {
                if pe.capability.supports_class(class) {
                    out[class.index()] += 1;
                }
            }
        }
        out
    }

    /// The [`mapzero_dfg::ResourceModel`] seen by the modulo scheduler.
    ///
    /// On row-shared-memory-bus fabrics (ADRES) the per-slice memory
    /// capacity is additionally bounded by the number of rows: one
    /// memory operation per row bus per cycle.
    #[must_use]
    pub fn resource_model(&self) -> mapzero_dfg::ResourceModel {
        let mut per_class = self.class_capacity();
        if self.row_shared_mem_bus {
            let mem = mapzero_dfg::OpClass::Memory.index();
            per_class[mem] = per_class[mem].min(self.rows);
        }
        mapzero_dfg::ResourceModel { total: self.pe_count(), per_class }
    }

    /// True if every PE has the same capability (homogeneous fabric).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.pes.windows(2).all(|w| w[0].capability == w[1].capability)
    }

    /// Total number of directed links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.iter().map(Vec::len).sum()
    }
}

/// Builder for [`Cgra`].
#[derive(Debug, Clone)]
pub struct CgraBuilder {
    name: String,
    rows: usize,
    cols: usize,
    capabilities: Vec<Capability>,
    interconnects: Vec<Interconnect>,
    extra_links: Vec<(PeId, PeId)>,
    style: RoutingStyle,
    row_shared_mem_bus: bool,
}

impl CgraBuilder {
    /// Start a fabric of `rows x cols` general-purpose PEs with
    /// registered neighbour routing and no interconnects.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        CgraBuilder {
            name: name.into(),
            rows,
            cols,
            capabilities: vec![Capability::ALL; rows * cols],
            interconnects: Vec::new(),
            extra_links: Vec::new(),
            style: RoutingStyle::NeighborRegister,
            row_shared_mem_bus: false,
        }
    }

    /// Add an interconnect style (duplicates are ignored).
    #[must_use]
    pub fn interconnect(mut self, style: Interconnect) -> Self {
        if !self.interconnects.contains(&style) {
            self.interconnects.push(style);
        }
        if style == Interconnect::Crossbar {
            self.style = RoutingStyle::CircuitSwitched;
        }
        self
    }

    /// Set the routing style explicitly.
    #[must_use]
    pub fn routing_style(mut self, style: RoutingStyle) -> Self {
        self.style = style;
        self
    }

    /// Enable the ADRES row-shared memory bus constraint.
    #[must_use]
    pub fn row_shared_mem_bus(mut self) -> Self {
        self.row_shared_mem_bus = true;
        self
    }

    /// Set the capability of the PE at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the grid.
    #[must_use]
    pub fn capability(mut self, row: usize, col: usize, cap: Capability) -> Self {
        assert!(row < self.rows && col < self.cols, "coordinate outside grid");
        self.capabilities[row * self.cols + col] = cap;
        self
    }

    /// Set every PE's capability.
    #[must_use]
    pub fn all_capabilities(mut self, cap: Capability) -> Self {
        self.capabilities.fill(cap);
        self
    }

    /// Add a custom directed link.
    #[must_use]
    pub fn link(mut self, from: PeId, to: PeId) -> Self {
        self.extra_links.push((from, to));
        self
    }

    /// Freeze the fabric.
    #[must_use]
    pub fn finish(self) -> Cgra {
        let n = self.rows * self.cols;
        let mut link_sets: Vec<BTreeSet<PeId>> = vec![BTreeSet::new(); n];
        for style in &self.interconnects {
            for r in 0..self.rows {
                for c in 0..self.cols {
                    let from = r * self.cols + c;
                    for (nr, nc) in style.neighbors(self.rows, self.cols, r, c) {
                        let to = nr * self.cols + nc;
                        if to != from {
                            link_sets[from].insert(PeId(to as u32));
                        }
                    }
                }
            }
        }
        for (from, to) in &self.extra_links {
            assert!(from.index() < n && to.index() < n, "link endpoint outside grid");
            if from != to {
                link_sets[from.index()].insert(*to);
            }
        }
        let links: Vec<Vec<PeId>> =
            link_sets.into_iter().map(|s| s.into_iter().collect()).collect();
        let mut rlinks: Vec<Vec<PeId>> = vec![Vec::new(); n];
        for (from, outs) in links.iter().enumerate() {
            for &to in outs {
                rlinks[to.index()].push(PeId(from as u32));
            }
        }
        let pes = (0..n)
            .map(|i| Pe {
                row: i / self.cols,
                col: i % self.cols,
                capability: self.capabilities[i],
            })
            .collect();
        Cgra {
            name: self.name,
            rows: self.rows,
            cols: self.cols,
            pes,
            links,
            rlinks,
            interconnects: self.interconnects,
            style: self.style,
            row_shared_mem_bus: self.row_shared_mem_bus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Cgra {
        CgraBuilder::new("m4", 4, 4).interconnect(Interconnect::Mesh).finish()
    }

    #[test]
    fn row_major_ids() {
        let g = mesh4();
        assert_eq!(g.at(0, 0), PeId(0));
        assert_eq!(g.at(1, 0), PeId(4));
        assert_eq!(g.at(3, 3), PeId(15));
        assert_eq!(g.pe(PeId(5)).row, 1);
        assert_eq!(g.pe(PeId(5)).col, 1);
    }

    #[test]
    fn mesh_link_counts() {
        let g = mesh4();
        // 4x4 mesh: 2*2*(4*3) = 48 directed links.
        assert_eq!(g.link_count(), 48);
        assert_eq!(g.out_degree(g.at(0, 0)), 2);
        assert_eq!(g.out_degree(g.at(1, 1)), 4);
        assert_eq!(g.in_degree(g.at(1, 1)), 4);
    }

    #[test]
    fn links_are_symmetric_for_mesh() {
        let g = mesh4();
        for p in g.pe_ids() {
            for &q in g.links_from(p) {
                assert!(g.links_from(q).contains(&p));
            }
        }
    }

    #[test]
    fn combined_interconnects_union_links() {
        let g = CgraBuilder::new("combo", 4, 4)
            .interconnect(Interconnect::Mesh)
            .interconnect(Interconnect::Diagonal)
            .finish();
        assert_eq!(g.out_degree(g.at(1, 1)), 8);
    }

    #[test]
    fn crossbar_sets_circuit_switched() {
        let g = CgraBuilder::new("hy", 4, 4).interconnect(Interconnect::Crossbar).finish();
        assert!(g.style().is_circuit_switched());
    }

    #[test]
    fn heterogeneous_capabilities_tracked() {
        let g = CgraBuilder::new("het", 2, 2)
            .all_capabilities(Capability::COMPUTE)
            .capability(0, 0, Capability::ALL)
            .finish();
        assert!(!g.is_homogeneous());
        let cap = g.class_capacity();
        assert_eq!(cap[mapzero_dfg::OpClass::Memory.index()], 1);
        assert_eq!(cap[mapzero_dfg::OpClass::Arithmetic.index()], 4);
        assert_eq!(g.capable_pes(Opcode::Load).count(), 1);
    }

    #[test]
    fn extra_links_deduplicated_and_directed() {
        let g = CgraBuilder::new("x", 2, 2)
            .link(PeId(0), PeId(3))
            .link(PeId(0), PeId(3))
            .finish();
        assert_eq!(g.link_count(), 1);
        assert_eq!(g.links_from(PeId(0)), &[PeId(3)]);
        assert!(g.links_from(PeId(3)).is_empty());
    }

    #[test]
    fn resource_model_matches_capacities() {
        let g = mesh4();
        let rm = g.resource_model();
        assert_eq!(rm.total, 16);
        assert_eq!(rm.per_class, [16, 16, 16]);
    }

    #[test]
    #[should_panic(expected = "coordinate outside grid")]
    fn at_panics_outside() {
        let _ = mesh4().at(4, 0);
    }
}
