//! Fabric connectivity analyses: shortest-path metrics, diameter, and
//! routing-capacity summaries used by the DSE area/performance models
//! and the architecture reports.

use crate::{Cgra, PeId};
use std::collections::VecDeque;

/// All-pairs shortest hop distances (BFS per source). `None` entries
/// mean unreachable.
#[must_use]
pub fn shortest_paths(cgra: &Cgra) -> Vec<Vec<Option<u32>>> {
    let n = cgra.pe_count();
    let mut out = Vec::with_capacity(n);
    for src in cgra.pe_ids() {
        let mut dist = vec![None; n];
        dist[src.index()] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("visited");
            for &v in cgra.links_from(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        out.push(dist);
    }
    out
}

/// Connectivity metrics of one fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricMetrics {
    /// Longest shortest path between reachable pairs.
    pub diameter: u32,
    /// Mean shortest path over reachable ordered pairs.
    pub avg_distance: f64,
    /// True if every PE reaches every other PE.
    pub strongly_connected: bool,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Directed link count.
    pub links: usize,
}

/// Compute [`FabricMetrics`].
#[must_use]
pub fn metrics(cgra: &Cgra) -> FabricMetrics {
    let paths = shortest_paths(cgra);
    let mut diameter = 0u32;
    let mut total = 0u64;
    let mut pairs = 0u64;
    let mut connected = true;
    let n = cgra.pe_count();
    for (i, row) in paths.iter().enumerate() {
        for (j, d) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            match d {
                Some(d) => {
                    diameter = diameter.max(*d);
                    total += u64::from(*d);
                    pairs += 1;
                }
                None => connected = false,
            }
        }
    }
    FabricMetrics {
        diameter,
        avg_distance: if pairs == 0 { 0.0 } else { total as f64 / pairs as f64 },
        strongly_connected: connected,
        avg_degree: cgra.link_count() as f64 / n.max(1) as f64,
        links: cgra.link_count(),
    }
}

/// The PEs reachable from `src` within `hops` links (excluding `src`);
/// the paper's motivational example reasons about exactly this
/// ("routing capability" of the shaded PEs).
#[must_use]
pub fn reachable_within(cgra: &Cgra, src: PeId, hops: u32) -> Vec<PeId> {
    let paths = shortest_paths(cgra);
    cgra.pe_ids()
        .filter(|&p| {
            p != src
                && paths[src.index()][p.index()].is_some_and(|d| d <= hops)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, CgraBuilder, Interconnect};

    #[test]
    fn mesh_diameter_is_manhattan() {
        let m = metrics(&presets::simple_mesh(4, 4));
        assert_eq!(m.diameter, 6); // (0,0) -> (3,3)
        assert!(m.strongly_connected);
        assert_eq!(m.links, 48);
    }

    #[test]
    fn toroidal_wrap_shrinks_diameter() {
        let torus = CgraBuilder::new("t", 4, 4)
            .interconnect(Interconnect::Mesh)
            .interconnect(Interconnect::Toroidal)
            .finish();
        let m = metrics(&torus);
        assert_eq!(m.diameter, 4); // 2 + 2 with wrap
        assert!(m.avg_distance < metrics(&presets::simple_mesh(4, 4)).avg_distance);
    }

    #[test]
    fn one_hop_links_shrink_distances() {
        let plain = metrics(&presets::simple_mesh(4, 4));
        let hop = metrics(
            &CgraBuilder::new("h", 4, 4)
                .interconnect(Interconnect::Mesh)
                .interconnect(Interconnect::OneHop)
                .finish(),
        );
        assert!(hop.diameter < plain.diameter);
        assert!(hop.avg_degree > plain.avg_degree);
    }

    #[test]
    fn disconnected_fabric_detected() {
        // Extra-links-only builder with a single link: not connected.
        let g = CgraBuilder::new("d", 2, 2).link(PeId(0), PeId(1)).finish();
        let m = metrics(&g);
        assert!(!m.strongly_connected);
    }

    #[test]
    fn reachability_matches_motivational_example() {
        let g = presets::motivational2x3();
        // Shaded pe1 reaches more PEs in one hop than plain pe5.
        let strong = reachable_within(&g, PeId(1), 1).len();
        let weak = reachable_within(&g, PeId(5), 1).len();
        assert!(strong > weak, "{strong} vs {weak}");
        // Everything reaches everything within the fabric diameter.
        let m = metrics(&g);
        assert_eq!(
            reachable_within(&g, PeId(0), m.diameter).len(),
            g.pe_count() - 1
        );
    }
}
