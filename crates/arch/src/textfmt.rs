//! A line-oriented text format for fabric descriptions, so users can
//! define CGRAs in files rather than code (the CGRA-ME workflow).
//!
//! ```text
//! cgra my_fabric 4 4
//! interconnect mesh
//! interconnect diagonal
//! rowbus                    # ADRES-style shared memory bus
//! capability 0 0 arith      # row col {all|compute|arith|none|custom}
//! capability 1 2 logic+mem
//! link 0 15                 # extra directed link by PE id
//! ```

use crate::{Capability, Cgra, CgraBuilder, Interconnect, PeId};
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCgraError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseCgraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCgraError {}

/// Serialize a fabric to the text format.
#[must_use]
pub fn emit(cgra: &Cgra) -> String {
    let mut out = format!("cgra {} {} {}\n", cgra.name().replace(' ', "_"), cgra.rows(), cgra.cols());
    for style in cgra.interconnects() {
        out.push_str(&format!("interconnect {style}\n"));
    }
    if cgra.row_shared_mem_bus() {
        out.push_str("rowbus\n");
    }
    for p in cgra.pe_ids() {
        let pe = cgra.pe(p);
        if pe.capability != Capability::ALL {
            out.push_str(&format!(
                "capability {} {} {}\n",
                pe.row,
                pe.col,
                cap_name(pe.capability)
            ));
        }
    }
    out
}

fn cap_name(c: Capability) -> String {
    match c {
        Capability::ALL => "all".to_owned(),
        Capability::COMPUTE => "compute".to_owned(),
        Capability::ARITH => "arith".to_owned(),
        Capability::NONE => "none".to_owned(),
        other => other.to_string(), // logic+arith+mem style
    }
}

fn parse_capability(tok: &str) -> Option<Capability> {
    match tok {
        "all" => Some(Capability::ALL),
        "compute" => Some(Capability::COMPUTE),
        "arith" => Some(Capability::ARITH),
        "none" => Some(Capability::NONE),
        custom => {
            let mut cap = Capability::NONE;
            for part in custom.split('+') {
                match part {
                    "logic" => cap.logical = true,
                    "arith" => cap.arithmetic = true,
                    "mem" => cap.memory = true,
                    _ => return None,
                }
            }
            Some(cap)
        }
    }
}

fn parse_interconnect(tok: &str) -> Option<Interconnect> {
    match tok {
        "mesh" => Some(Interconnect::Mesh),
        "1-hop" | "onehop" => Some(Interconnect::OneHop),
        "diagonal" => Some(Interconnect::Diagonal),
        "toroidal" | "torus" => Some(Interconnect::Toroidal),
        "crossbar" => Some(Interconnect::Crossbar),
        _ => None,
    }
}

/// Parse a fabric from the text format.
///
/// # Errors
/// Returns [`ParseCgraError`] with the offending line on malformed
/// input.
pub fn parse(text: &str) -> Result<Cgra, ParseCgraError> {
    let err = |line: usize, message: &str| ParseCgraError { line, message: message.to_owned() };
    let mut builder: Option<CgraBuilder> = None;
    let mut dims = (0usize, 0usize);
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty");
        match keyword {
            "cgra" => {
                let name = parts.next().ok_or_else(|| err(lineno, "missing name"))?;
                let rows: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing or invalid row count"))?;
                let cols: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing or invalid column count"))?;
                if rows == 0 || cols == 0 {
                    return Err(err(lineno, "grid must be non-empty"));
                }
                dims = (rows, cols);
                builder = Some(CgraBuilder::new(name.replace('_', " "), rows, cols));
            }
            "interconnect" => {
                let b = builder.take().ok_or_else(|| err(lineno, "`cgra` line must come first"))?;
                let tok = parts.next().ok_or_else(|| err(lineno, "missing style"))?;
                let style = parse_interconnect(tok)
                    .ok_or_else(|| err(lineno, &format!("unknown interconnect `{tok}`")))?;
                builder = Some(b.interconnect(style));
            }
            "rowbus" => {
                let b = builder.take().ok_or_else(|| err(lineno, "`cgra` line must come first"))?;
                builder = Some(b.row_shared_mem_bus());
            }
            "capability" => {
                let b = builder.take().ok_or_else(|| err(lineno, "`cgra` line must come first"))?;
                let row: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing row"))?;
                let col: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing column"))?;
                if row >= dims.0 || col >= dims.1 {
                    return Err(err(lineno, "coordinate outside grid"));
                }
                let tok = parts.next().ok_or_else(|| err(lineno, "missing capability"))?;
                let cap = parse_capability(tok)
                    .ok_or_else(|| err(lineno, &format!("unknown capability `{tok}`")))?;
                builder = Some(b.capability(row, col, cap));
            }
            "link" => {
                let b = builder.take().ok_or_else(|| err(lineno, "`cgra` line must come first"))?;
                let from: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing source PE"))?;
                let to: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing target PE"))?;
                let n = (dims.0 * dims.1) as u32;
                if from >= n || to >= n {
                    return Err(err(lineno, "link endpoint outside grid"));
                }
                builder = Some(b.link(PeId(from), PeId(to)));
            }
            other => return Err(err(lineno, &format!("unknown keyword `{other}`"))),
        }
        if parts.next().is_some() {
            return Err(err(lineno, "trailing tokens"));
        }
    }
    builder
        .map(CgraBuilder::finish)
        .ok_or_else(|| err(text.lines().count().max(1), "no `cgra` declaration found"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn round_trips_presets() {
        for fabric in presets::table1().iter().chain(&[presets::heterogeneous()]) {
            let text = emit(fabric);
            let back = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", fabric.name()));
            assert_eq!(back.rows(), fabric.rows());
            assert_eq!(back.interconnects(), fabric.interconnects());
            assert_eq!(back.row_shared_mem_bus(), fabric.row_shared_mem_bus());
            for p in fabric.pe_ids() {
                assert_eq!(back.pe(p).capability, fabric.pe(p).capability, "{p}");
            }
        }
    }

    #[test]
    fn parses_full_example() {
        let text = "\n# demo\ncgra my_fab 2 3\ninterconnect mesh\nrowbus\ncapability 0 0 arith\ncapability 1 2 logic+mem\nlink 0 5\n";
        let g = parse(text).unwrap();
        assert_eq!(g.name(), "my fab");
        assert_eq!((g.rows(), g.cols()), (2, 3));
        assert!(g.row_shared_mem_bus());
        assert_eq!(g.pe(PeId(0)).capability, Capability::ARITH);
        assert!(g.pe(PeId(5)).capability.logical);
        assert!(g.pe(PeId(5)).capability.memory);
        assert!(!g.pe(PeId(5)).capability.arithmetic);
        assert!(g.links_from(PeId(0)).contains(&PeId(5)));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse("interconnect mesh\n").is_err()); // before cgra
        assert!(parse("cgra x 0 4\n").is_err()); // empty grid
        assert!(parse("cgra x 2 2\ninterconnect warp\n").is_err());
        assert!(parse("cgra x 2 2\ncapability 5 0 all\n").is_err());
        assert!(parse("cgra x 2 2\nlink 0 9\n").is_err());
        assert!(parse("").is_err());
        assert!(parse("cgra x 2 2 extra\n").is_err());
    }
}
