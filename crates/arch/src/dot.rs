//! Graphviz DOT export for fabric visualization.

use crate::{Cgra, RoutingStyle};
use std::fmt::Write as _;

/// Render the fabric in Graphviz DOT: PEs laid out on the grid with
/// capability-coded fills and one edge per directed link.
#[must_use]
pub fn to_dot(cgra: &Cgra) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", cgra.name());
    let _ = writeln!(out, "  layout=neato; overlap=true; splines=true;");
    for p in cgra.pe_ids() {
        let pe = cgra.pe(p);
        let fill = match (pe.capability.memory, pe.capability.logical) {
            (true, true) => "lightblue",
            (true, false) => "lightsalmon",
            (false, true) => "lightgrey",
            (false, false) => "white",
        };
        let _ = writeln!(
            out,
            "  pe{} [label=\"{}\\n{}\" pos=\"{},{}!\" shape=box style=filled fillcolor={}];",
            p.0,
            p,
            pe.capability,
            pe.col,
            cgra.rows() - 1 - pe.row,
            fill
        );
    }
    let style = match cgra.style() {
        RoutingStyle::NeighborRegister => "solid",
        RoutingStyle::CircuitSwitched => "dashed",
    };
    for p in cgra.pe_ids() {
        for &q in cgra.links_from(p) {
            let _ = writeln!(out, "  pe{} -> pe{} [style={style}];", p.0, q.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn dot_lists_every_pe_and_link() {
        let g = presets::simple_mesh(2, 2);
        let dot = to_dot(&g);
        for p in g.pe_ids() {
            assert!(dot.contains(&format!("pe{}", p.0)));
        }
        assert_eq!(dot.matches(" -> ").count(), g.link_count());
    }

    #[test]
    fn circuit_switched_links_dashed() {
        let dot = to_dot(&presets::hycube());
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn heterogeneous_capabilities_colored() {
        let dot = to_dot(&presets::heterogeneous());
        assert!(dot.contains("lightblue")); // mem + logic
        assert!(dot.contains("lightsalmon")); // mem only
    }
}
