//! Interconnect topology generators (Fig. 7 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A PE-to-PE interconnection style.
///
/// A fabric combines one or more of these; each contributes directed
/// links between grid coordinates. `Crossbar` marks the HyCube-style
/// circuit-switched mesh where the same physical links are traversed by
/// clockless repeaters (multi-hop within one cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interconnect {
    /// 4-neighbour mesh (N/S/E/W), Fig. 7(a).
    Mesh,
    /// Links skipping one PE in each cardinal direction, Fig. 7(c).
    OneHop,
    /// Diagonal neighbours, Fig. 7(d).
    Diagonal,
    /// Wrap-around links on rows and columns, Fig. 7(b).
    Toroidal,
    /// Circuit-switched crossbar mesh (HyCube), Fig. 7(e). Physically a
    /// mesh; semantically single-cycle multi-hop.
    Crossbar,
}

impl Interconnect {
    /// All styles in display order (the column order of Table 1).
    pub const ALL: [Interconnect; 5] = [
        Interconnect::Mesh,
        Interconnect::OneHop,
        Interconnect::Diagonal,
        Interconnect::Toroidal,
        Interconnect::Crossbar,
    ];

    /// Directed neighbour offsets contributed by this style on an
    /// `rows x cols` grid from `(r, c)`. Toroidal wraps; others clip.
    #[must_use]
    pub fn neighbors(
        self,
        rows: usize,
        cols: usize,
        r: usize,
        c: usize,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let r = r as isize;
        let c = c as isize;
        let (rows_i, cols_i) = (rows as isize, cols as isize);
        let mut push_clip = |dr: isize, dc: isize| {
            let (nr, nc) = (r + dr, c + dc);
            if nr >= 0 && nr < rows_i && nc >= 0 && nc < cols_i && (dr, dc) != (0, 0) {
                out.push((nr as usize, nc as usize));
            }
        };
        match self {
            Interconnect::Mesh | Interconnect::Crossbar => {
                for (dr, dc) in [(-1, 0), (1, 0), (0, -1), (0, 1)] {
                    push_clip(dr, dc);
                }
            }
            Interconnect::OneHop => {
                for (dr, dc) in [(-2, 0), (2, 0), (0, -2), (0, 2)] {
                    push_clip(dr, dc);
                }
            }
            Interconnect::Diagonal => {
                for (dr, dc) in [(-1, -1), (-1, 1), (1, -1), (1, 1)] {
                    push_clip(dr, dc);
                }
            }
            Interconnect::Toroidal => {
                // Wrap-around links only exist at the fabric edges; the
                // interior is covered by the mesh style.
                let mut push_wrap = |nr: isize, nc: isize| {
                    let (nr, nc) = (nr.rem_euclid(rows_i) as usize, nc.rem_euclid(cols_i) as usize);
                    if (nr, nc) != (r as usize, c as usize) {
                        out.push((nr, nc));
                    }
                };
                if r == 0 {
                    push_wrap(rows_i - 1, c);
                }
                if r == rows_i - 1 {
                    push_wrap(0, c);
                }
                if c == 0 {
                    push_wrap(r, cols_i - 1);
                }
                if c == cols_i - 1 {
                    push_wrap(r, 0);
                }
            }
        }
        out
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Interconnect::Mesh => "mesh",
            Interconnect::OneHop => "1-hop",
            Interconnect::Diagonal => "diagonal",
            Interconnect::Toroidal => "toroidal",
            Interconnect::Crossbar => "crossbar",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mesh_corner_has_two_neighbors() {
        let n = Interconnect::Mesh.neighbors(4, 4, 0, 0);
        let set: HashSet<_> = n.into_iter().collect();
        assert_eq!(set, HashSet::from([(0, 1), (1, 0)]));
    }

    #[test]
    fn mesh_center_has_four_neighbors() {
        assert_eq!(Interconnect::Mesh.neighbors(4, 4, 1, 1).len(), 4);
    }

    #[test]
    fn onehop_skips_one() {
        let n: HashSet<_> = Interconnect::OneHop.neighbors(4, 4, 0, 0).into_iter().collect();
        assert_eq!(n, HashSet::from([(2, 0), (0, 2)]));
    }

    #[test]
    fn diagonal_center() {
        let n: HashSet<_> = Interconnect::Diagonal.neighbors(4, 4, 2, 2).into_iter().collect();
        assert_eq!(n, HashSet::from([(1, 1), (1, 3), (3, 1), (3, 3)]));
    }

    #[test]
    fn toroidal_only_wraps_edges() {
        assert!(Interconnect::Toroidal.neighbors(4, 4, 1, 1).is_empty());
        let corner: HashSet<_> =
            Interconnect::Toroidal.neighbors(4, 4, 0, 0).into_iter().collect();
        assert_eq!(corner, HashSet::from([(3, 0), (0, 3)]));
    }

    #[test]
    fn toroidal_on_1d_strip_does_not_self_link() {
        // A 1x4 strip: wrap from (0,0) vertically would reach itself.
        let n = Interconnect::Toroidal.neighbors(1, 4, 0, 0);
        assert!(!n.contains(&(0, 0)));
    }

    #[test]
    fn crossbar_links_match_mesh() {
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(
                    Interconnect::Crossbar.neighbors(4, 4, r, c),
                    Interconnect::Mesh.neighbors(4, 4, r, c)
                );
            }
        }
    }
}
