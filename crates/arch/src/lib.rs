//! CGRA architecture models for the MapZero compiler.
//!
//! This crate captures everything the mapper needs to know about the
//! *hardware* side of the problem:
//!
//! * processing elements with per-class functional capabilities
//!   ([`Capability`], [`Pe`]),
//! * the interconnect generators of Fig. 7 (mesh, 1-hop, diagonal,
//!   toroidal, HyCube-style circuit-switched crossbar — [`Interconnect`]),
//! * whole-fabric descriptions ([`Cgra`]) including the ADRES row-shared
//!   memory bus constraint and the routing style (registered
//!   neighbour-to-neighbour vs. single-cycle multi-hop crossbar),
//! * the preset target architectures of Table 1 and the heterogeneous
//!   fabric of Fig. 14 ([`presets`]),
//! * 7-dimensional PE feature vectors of §3.2.2 ([`features`]),
//! * the fabric symmetry group used for training-data augmentation
//!   (§3.6.1, [`symmetry`]).
//!
//! # Example
//!
//! ```
//! use mapzero_arch::{presets, Interconnect};
//!
//! let hycube = presets::hycube();
//! assert_eq!(hycube.pe_count(), 16);
//! assert!(hycube.style().is_circuit_switched());
//! let hrea = presets::hrea();
//! assert!(hrea.interconnects().contains(&Interconnect::Diagonal));
//! ```

mod capability;
mod cgra;
mod topology;

pub mod analysis;
pub mod dot;
pub mod features;
pub mod presets;
pub mod symmetry;
pub mod textfmt;

pub use capability::Capability;
pub use cgra::{Cgra, CgraBuilder, Pe, PeId, RoutingStyle};
pub use topology::Interconnect;
