//! Per-PE feature vectors (§3.2.2 of the paper).
//!
//! Each PE is encoded into a 7-dimensional vector: (1) id,
//! (2) in-degree, (3) out-degree, (4)–(6) booleans for
//! logical / arithmetic / memory capability, (7) the id of the mapped
//! DFG node. The CGRA of *each modulo time slice* has a separate graph
//! representation, so the caller supplies the occupancy of one slice.

use crate::{Cgra, PeId};

/// Dimensionality of the CGRA PE feature vector.
pub const PE_FEATURE_DIM: usize = 7;

/// Raw feature matrix for one modulo time slice.
///
/// `mapped[p]` is the DFG node currently occupying PE `p` in this slice
/// (`None` → −1 in the feature, as for unmapped DFG nodes).
///
/// # Panics
/// Panics if `mapped.len() != cgra.pe_count()`.
#[must_use]
pub fn pe_features(cgra: &Cgra, mapped: &[Option<usize>]) -> Vec<[f32; PE_FEATURE_DIM]> {
    assert_eq!(mapped.len(), cgra.pe_count(), "one occupancy slot per PE");
    cgra.pe_ids()
        .map(|p| {
            let caps = cgra.pe(p).capability.as_bools();
            [
                p.0 as f32,
                cgra.in_degree(p) as f32,
                cgra.out_degree(p) as f32,
                f32::from(u8::from(caps[0])),
                f32::from(u8::from(caps[1])),
                f32::from(u8::from(caps[2])),
                mapped[p.index()].map_or(-1.0, |n| n as f32),
            ]
        })
        .collect()
}

/// Normalize a PE feature matrix in place: ids by PE count, degrees by
/// the maximum degree, the mapped-node id by the DFG size.
pub fn normalize_pe_features(
    features: &mut [[f32; PE_FEATURE_DIM]],
    cgra: &Cgra,
    dfg_nodes: usize,
) {
    let n = cgra.pe_count().max(1) as f32;
    let max_deg = cgra
        .pe_ids()
        .map(|p| cgra.in_degree(p).max(cgra.out_degree(p)))
        .max()
        .unwrap_or(1)
        .max(1) as f32;
    let dn = dfg_nodes.max(1) as f32;
    for row in features.iter_mut() {
        row[0] /= n;
        row[1] /= max_deg;
        row[2] /= max_deg;
        row[6] /= dn;
    }
}

/// Convenience: features of an empty slice.
#[must_use]
pub fn empty_slice_features(cgra: &Cgra) -> Vec<[f32; PE_FEATURE_DIM]> {
    pe_features(cgra, &vec![None; cgra.pe_count()])
}

/// The directed edge list of the CGRA graph, as `(from, to)` index pairs;
/// this is the adjacency consumed by the GAT encoder.
#[must_use]
pub fn edge_list(cgra: &Cgra) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(cgra.link_count());
    for p in cgra.pe_ids() {
        for &q in cgra.links_from(p) {
            out.push((p.index(), q.index()));
        }
    }
    out
}

/// Map PE occupancy from a `(node -> pe)` assignment restricted to one
/// modulo slice.
#[must_use]
pub fn slice_occupancy(
    cgra: &Cgra,
    assignments: &[(usize, PeId)],
) -> Vec<Option<usize>> {
    let mut occ = vec![None; cgra.pe_count()];
    for &(node, pe) in assignments {
        occ[pe.index()] = Some(node);
    }
    occ
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn feature_fields_match_paper() {
        let g = presets::heterogeneous();
        let f = empty_slice_features(&g);
        assert_eq!(f.len(), 16);
        // PE 0: memory-capable (col 0), logical (row 0), arithmetic.
        assert_eq!(f[0][3], 1.0);
        assert_eq!(f[0][4], 1.0);
        assert_eq!(f[0][5], 1.0);
        // PE 5 (row 1, col 1): no memory.
        assert_eq!(f[5][5], 0.0);
        // Unoccupied -> -1.
        assert!(f.iter().all(|r| r[6] == -1.0));
    }

    #[test]
    fn occupancy_reflected() {
        let g = presets::simple_mesh(2, 2);
        let occ = slice_occupancy(&g, &[(3, PeId(2))]);
        let f = pe_features(&g, &occ);
        assert_eq!(f[2][6], 3.0);
        assert_eq!(f[0][6], -1.0);
    }

    #[test]
    fn normalization_bounds_features() {
        let g = presets::hrea();
        let mut f = empty_slice_features(&g);
        normalize_pe_features(&mut f, &g, 20);
        for row in &f {
            for v in row {
                assert!(v.abs() <= 1.5, "{v}");
            }
        }
    }

    #[test]
    fn edge_list_matches_link_count() {
        let g = presets::hrea();
        assert_eq!(edge_list(&g).len(), g.link_count());
    }

    #[test]
    #[should_panic(expected = "one occupancy slot per PE")]
    fn wrong_occupancy_length_panics() {
        let g = presets::simple_mesh(2, 2);
        let _ = pe_features(&g, &[None]);
    }
}
