//! Fabric symmetries for training-data augmentation (§3.6.1).
//!
//! "By analyzing the symmetry of the target CGRA, we flip, shift, and
//! rotate the searched mapping results to get more (s, π, r) groups."
//!
//! A [`Transform`] permutes PE ids; it is *valid* for a fabric when the
//! permutation is a graph automorphism that also preserves PE
//! capabilities (so the transformed mapping is feasible iff the original
//! was).

use crate::{Cgra, PeId};
use std::collections::BTreeSet;

/// A square/rectangular-grid symmetry operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Identity (always valid).
    Identity,
    /// Mirror left-right.
    FlipH,
    /// Mirror top-bottom.
    FlipV,
    /// Rotate 90° clockwise (square grids only).
    Rot90,
    /// Rotate 180°.
    Rot180,
    /// Rotate 270° clockwise (square grids only).
    Rot270,
    /// Translate by (dr, dc) with wrap-around (toroidal fabrics only).
    Shift(usize, usize),
}

impl Transform {
    /// Apply to a grid coordinate on a `rows x cols` grid.
    ///
    /// Returns `None` when the transform is undefined for the grid shape
    /// (e.g. `Rot90` on a non-square grid).
    #[must_use]
    pub fn apply(self, rows: usize, cols: usize, r: usize, c: usize) -> Option<(usize, usize)> {
        match self {
            Transform::Identity => Some((r, c)),
            Transform::FlipH => Some((r, cols - 1 - c)),
            Transform::FlipV => Some((rows - 1 - r, c)),
            Transform::Rot180 => Some((rows - 1 - r, cols - 1 - c)),
            Transform::Rot90 => (rows == cols).then(|| (c, rows - 1 - r)),
            Transform::Rot270 => (rows == cols).then(|| (cols - 1 - c, r)),
            Transform::Shift(dr, dc) => Some(((r + dr) % rows, (c + dc) % cols)),
        }
    }

    /// The PE permutation induced on `cgra`, or `None` if undefined.
    #[must_use]
    pub fn permutation(self, cgra: &Cgra) -> Option<Vec<PeId>> {
        let (rows, cols) = (cgra.rows(), cgra.cols());
        let mut perm = Vec::with_capacity(cgra.pe_count());
        for p in cgra.pe_ids() {
            let pe = cgra.pe(p);
            let (nr, nc) = self.apply(rows, cols, pe.row, pe.col)?;
            perm.push(cgra.at(nr, nc));
        }
        Some(perm)
    }

    /// True if the induced permutation is an automorphism of the fabric
    /// graph that preserves capabilities.
    #[must_use]
    pub fn is_valid_for(self, cgra: &Cgra) -> bool {
        let Some(perm) = self.permutation(cgra) else {
            return false;
        };
        for p in cgra.pe_ids() {
            let ip = perm[p.index()];
            if cgra.pe(p).capability != cgra.pe(ip).capability {
                return false;
            }
            let mapped: BTreeSet<PeId> =
                cgra.links_from(p).iter().map(|q| perm[q.index()]).collect();
            let actual: BTreeSet<PeId> = cgra.links_from(ip).iter().copied().collect();
            if mapped != actual {
                return false;
            }
        }
        true
    }
}

/// All valid symmetry transforms of a fabric (identity always included;
/// shifts are enumerated only for fabrics whose links make them valid,
/// i.e. fully toroidal ones).
#[must_use]
pub fn valid_transforms(cgra: &Cgra) -> Vec<Transform> {
    let mut out = vec![Transform::Identity];
    let candidates = [
        Transform::FlipH,
        Transform::FlipV,
        Transform::Rot90,
        Transform::Rot180,
        Transform::Rot270,
    ];
    for t in candidates {
        if t.is_valid_for(cgra) {
            out.push(t);
        }
    }
    // Shifts: try the unit translations; if valid, all products are too,
    // but enumerating the two generators keeps augmentation cheap.
    for t in [Transform::Shift(1, 0), Transform::Shift(0, 1)] {
        if t.is_valid_for(cgra) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::{Capability, CgraBuilder, Interconnect};

    #[test]
    fn identity_always_valid() {
        for g in presets::table1() {
            assert!(Transform::Identity.is_valid_for(&g), "{}", g.name());
        }
    }

    #[test]
    fn mesh_square_has_dihedral_symmetry() {
        let g = presets::simple_mesh(4, 4);
        for t in [
            Transform::FlipH,
            Transform::FlipV,
            Transform::Rot90,
            Transform::Rot180,
            Transform::Rot270,
        ] {
            assert!(t.is_valid_for(&g), "{t:?}");
        }
        // Shifts are not automorphisms of a clipped mesh.
        assert!(!Transform::Shift(1, 0).is_valid_for(&g));
    }

    #[test]
    fn rot90_undefined_on_rectangles() {
        let g = presets::simple_mesh(2, 3);
        assert!(Transform::Rot90.permutation(&g).is_none());
        assert!(!Transform::Rot90.is_valid_for(&g));
        assert!(Transform::FlipH.is_valid_for(&g));
    }

    #[test]
    fn heterogeneous_fabric_loses_symmetries() {
        let g = presets::heterogeneous();
        // Memory on both outer columns: FlipH preserves capabilities.
        assert!(Transform::FlipH.is_valid_for(&g));
        // Logical only on the top half: FlipV breaks capabilities.
        assert!(!Transform::FlipV.is_valid_for(&g));
    }

    #[test]
    fn fully_toroidal_fabric_admits_shifts() {
        // Mesh + toroidal wrap makes every row/col translation an
        // automorphism.
        let g = CgraBuilder::new("torus", 4, 4)
            .interconnect(Interconnect::Mesh)
            .interconnect(Interconnect::Toroidal)
            .finish();
        assert!(Transform::Shift(1, 0).is_valid_for(&g));
        assert!(Transform::Shift(0, 1).is_valid_for(&g));
        let ts = valid_transforms(&g);
        assert!(ts.contains(&Transform::Shift(1, 0)));
    }

    #[test]
    fn permutation_is_bijective() {
        let g = presets::simple_mesh(4, 4);
        let perm = Transform::Rot90.permutation(&g).unwrap();
        let mut seen = [false; 16];
        for p in &perm {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn capability_mismatch_detected() {
        let g = CgraBuilder::new("corner", 2, 2)
            .capability(0, 0, Capability::ARITH)
            .finish();
        // FlipH moves the special corner; not a valid transform.
        assert!(!Transform::FlipH.is_valid_for(&g));
    }
}
