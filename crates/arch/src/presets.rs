//! The target architectures of Table 1 and the heterogeneous fabric of
//! Fig. 14.
//!
//! Sizes follow the source publications: HReA and HyCube are 4×4 arrays,
//! MorphoSys and ADRES are 8×8, plus the paper's 8×8 and 16×16 baseline
//! fabrics. "Each PE is assumed to have five constant units, two load
//! units, one ALU, one store unit, and one output register (except
//! ADRES). In ADRES, PEs in the same row share the same bus connection to
//! the memory" (§4.1.1) — modelled by [`Cgra::row_shared_mem_bus`].

use crate::{Capability, Cgra, CgraBuilder, Interconnect, PeId};

/// HReA: 4×4, mesh + 1-hop + diagonal + toroidal.
#[must_use]
pub fn hrea() -> Cgra {
    CgraBuilder::new("HReA", 4, 4)
        .interconnect(Interconnect::Mesh)
        .interconnect(Interconnect::OneHop)
        .interconnect(Interconnect::Diagonal)
        .interconnect(Interconnect::Toroidal)
        .finish()
}

/// MorphoSys: 8×8, mesh + 1-hop + toroidal.
#[must_use]
pub fn morphosys() -> Cgra {
    CgraBuilder::new("MorphoSys", 8, 8)
        .interconnect(Interconnect::Mesh)
        .interconnect(Interconnect::OneHop)
        .interconnect(Interconnect::Toroidal)
        .finish()
}

/// ADRES: 8×8, mesh + 1-hop + toroidal, with the row-shared memory bus.
#[must_use]
pub fn adres() -> Cgra {
    CgraBuilder::new("ADRES", 8, 8)
        .interconnect(Interconnect::Mesh)
        .interconnect(Interconnect::OneHop)
        .interconnect(Interconnect::Toroidal)
        .row_shared_mem_bus()
        .finish()
}

/// HyCube: 4×4 circuit-switched crossbar mesh.
#[must_use]
pub fn hycube() -> Cgra {
    CgraBuilder::new("HyCube", 4, 4).interconnect(Interconnect::Crossbar).finish()
}

/// The paper's 8×8 baseline: mesh + 1-hop + diagonal.
#[must_use]
pub fn baseline8() -> Cgra {
    CgraBuilder::new("8x8 baseline", 8, 8)
        .interconnect(Interconnect::Mesh)
        .interconnect(Interconnect::OneHop)
        .interconnect(Interconnect::Diagonal)
        .finish()
}

/// The paper's 16×16 baseline: mesh + 1-hop + diagonal + toroidal.
#[must_use]
pub fn baseline16() -> Cgra {
    CgraBuilder::new("16x16 baseline", 16, 16)
        .interconnect(Interconnect::Mesh)
        .interconnect(Interconnect::OneHop)
        .interconnect(Interconnect::Diagonal)
        .interconnect(Interconnect::Toroidal)
        .finish()
}

/// The heterogeneous 4×4 fabric of Fig. 14: memory ports only on the two
/// outer columns, logical units on the upper half, arithmetic everywhere.
#[must_use]
pub fn heterogeneous() -> Cgra {
    let mut b = CgraBuilder::new("Heterogeneous", 4, 4).interconnect(Interconnect::Mesh);
    for row in 0..4 {
        for col in 0..4 {
            let memory = col == 0 || col == 3;
            let logical = row < 2;
            let cap = Capability { logical, arithmetic: true, memory };
            b = b.capability(row, col, cap);
        }
    }
    b.finish()
}

/// A plain `rows x cols` mesh used in unit tests and the motivational
/// example of Fig. 3.
#[must_use]
pub fn simple_mesh(rows: usize, cols: usize) -> Cgra {
    CgraBuilder::new(format!("{rows}x{cols} mesh"), rows, cols)
        .interconnect(Interconnect::Mesh)
        .finish()
}

/// Every Table 1 fabric paired with its name, in the paper's row order.
#[must_use]
pub fn table1() -> Vec<Cgra> {
    vec![hrea(), morphosys(), adres(), baseline8(), baseline16(), hycube()]
}

/// The four fabrics used in the head-to-head evaluation (Figs. 8–11).
#[must_use]
pub fn evaluation_fabrics() -> Vec<Cgra> {
    vec![hrea(), morphosys(), adres(), hycube()]
}

/// Look a preset up by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<Cgra> {
    let lower = name.to_ascii_lowercase();
    table1()
        .into_iter()
        .chain(std::iter::once(heterogeneous()))
        .find(|c| c.name().to_ascii_lowercase() == lower)
}

/// The strongly-routed PE set of the Fig. 3 motivational fabric: a 2×3
/// mesh where the corner PEs additionally connect to the opposite corner
/// of their 2×2 quadrant (shaded PEs with "stronger routing capability").
#[must_use]
pub fn motivational2x3() -> Cgra {
    CgraBuilder::new("2x3 motivational", 2, 3)
        .interconnect(Interconnect::Mesh)
        .link(PeId(0), PeId(4))
        .link(PeId(4), PeId(0))
        .link(PeId(2), PeId(4))
        .link(PeId(4), PeId(2))
        .link(PeId(3), PeId(1))
        .link(PeId(1), PeId(3))
        .link(PeId(5), PeId(1))
        .link(PeId(1), PeId(5))
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matrix_matches_paper() {
        let want: &[(&str, &[Interconnect])] = &[
            ("HReA", &[
                Interconnect::Mesh,
                Interconnect::OneHop,
                Interconnect::Diagonal,
                Interconnect::Toroidal,
            ]),
            ("MorphoSys", &[Interconnect::Mesh, Interconnect::OneHop, Interconnect::Toroidal]),
            ("ADRES", &[Interconnect::Mesh, Interconnect::OneHop, Interconnect::Toroidal]),
            ("8x8 baseline", &[Interconnect::Mesh, Interconnect::OneHop, Interconnect::Diagonal]),
            ("16x16 baseline", &[
                Interconnect::Mesh,
                Interconnect::OneHop,
                Interconnect::Diagonal,
                Interconnect::Toroidal,
            ]),
            ("HyCube", &[Interconnect::Crossbar]),
        ];
        for (fabric, (name, styles)) in table1().iter().zip(want) {
            assert_eq!(fabric.name(), *name);
            assert_eq!(fabric.interconnects(), *styles, "{name}");
        }
    }

    #[test]
    fn sizes_match() {
        assert_eq!(hrea().pe_count(), 16);
        assert_eq!(morphosys().pe_count(), 64);
        assert_eq!(adres().pe_count(), 64);
        assert_eq!(hycube().pe_count(), 16);
        assert_eq!(baseline8().pe_count(), 64);
        assert_eq!(baseline16().pe_count(), 256);
    }

    #[test]
    fn adres_has_row_bus() {
        assert!(adres().row_shared_mem_bus());
        assert!(!hrea().row_shared_mem_bus());
    }

    #[test]
    fn heterogeneous_capacities() {
        let g = heterogeneous();
        assert!(!g.is_homogeneous());
        let cap = g.class_capacity();
        // Memory on two columns of four rows = 8 PEs.
        assert_eq!(cap[mapzero_dfg::OpClass::Memory.index()], 8);
        // Logical on the top two rows = 8 PEs.
        assert_eq!(cap[mapzero_dfg::OpClass::Logical.index()], 8);
        assert_eq!(cap[mapzero_dfg::OpClass::Arithmetic.index()], 16);
    }

    #[test]
    fn by_name_finds_presets() {
        assert!(by_name("hycube").is_some());
        assert!(by_name("HReA").is_some());
        assert!(by_name("Heterogeneous").is_some());
        assert!(by_name("warp9").is_none());
    }

    #[test]
    fn motivational_fabric_has_strong_corners() {
        let g = motivational2x3();
        // PE 0 (shaded) reaches 2 mesh neighbours + PE 4.
        assert_eq!(g.out_degree(PeId(0)), 3);
        // PE 1 gains links to 3 and 5.
        assert!(g.links_from(PeId(1)).contains(&PeId(3)));
    }
}
