//! Shared full-placement evaluation for the annealing-based baselines.
//!
//! Given a complete placement (one PE per DFG node, already consistent
//! with the modulo schedule's slots), replay it through a fresh ledger:
//! claim every functional unit, route every edge, and count violations.

use mapzero_core::ledger::Ledger;
use mapzero_core::mapping::{Mapping, Placement};
use mapzero_core::problem::Problem;
use mapzero_core::router::route_edge;
use mapzero_arch::PeId;
use mapzero_dfg::OpClass;

/// Penalty weight for a routing failure or placement conflict.
pub const VIOLATION_WEIGHT: f64 = 100.0;

/// Outcome of evaluating a full placement.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Number of unroutable edges plus invalid placements.
    pub violations: usize,
    /// Total routing resources claimed by successful routes.
    pub wirelen: usize,
    /// The mapping, when `violations == 0`.
    pub mapping: Option<Mapping>,
}

impl Evaluation {
    /// Scalar SA cost.
    #[must_use]
    pub fn cost(&self) -> f64 {
        VIOLATION_WEIGHT * self.violations as f64 + self.wirelen as f64
    }

    /// True when the placement is a complete valid mapping.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.violations == 0
    }
}

/// Evaluate a complete placement vector (`assignment[i]` = PE of node
/// `i`).
///
/// # Panics
/// Panics if `assignment.len() != problem.node_count()`.
#[must_use]
pub fn evaluate(problem: &Problem<'_>, assignment: &[PeId]) -> Evaluation {
    let dfg = problem.dfg();
    let cgra = problem.cgra();
    let schedule = problem.schedule();
    assert_eq!(assignment.len(), dfg.node_count(), "one PE per node");

    let mut ledger = Ledger::new(cgra, problem.ii());
    let mut violations = 0usize;

    // Placement legality.
    for u in dfg.node_ids() {
        let pe = assignment[u.index()];
        let op = dfg.node(u).opcode;
        let slot = schedule.modulo_slot(u);
        if !cgra.pe(pe).capability.supports(op) {
            violations += 1;
            continue;
        }
        if !ledger.claim_fu(pe, slot, u) {
            violations += 1;
            continue;
        }
        if cgra.row_shared_mem_bus()
            && op.class() == OpClass::Memory
            && !ledger.claim_membus(cgra.pe(pe).row, slot, u)
        {
            violations += 1;
        }
    }

    // Routing, in edge order.
    let mut wirelen = 0usize;
    let mut routes = Vec::with_capacity(dfg.edge_count());
    for e in dfg.edges() {
        let from = Placement { pe: assignment[e.src.index()], time: schedule.time(e.src) };
        let to = Placement { pe: assignment[e.dst.index()], time: schedule.time(e.dst) };
        match route_edge(cgra, &mut ledger, e.src, from, to, e.dist) {
            Some(route) => {
                wirelen += route.cost;
                routes.push(route.hops);
            }
            None => {
                violations += 1;
                routes.push(Vec::new());
            }
        }
    }

    let mapping = (violations == 0).then(|| Mapping {
        ii: problem.ii(),
        placements: dfg
            .node_ids()
            .map(|u| Placement { pe: assignment[u.index()], time: schedule.time(u) })
            .collect(),
        routes,
    });
    Evaluation { violations, wirelen, mapping }
}

/// Build a random initial placement: nodes of each modulo slot are
/// assigned distinct capable PEs where possible.
#[must_use]
pub fn random_assignment(
    problem: &Problem<'_>,
    rng: &mut mapzero_nn::SeedRng,
) -> Vec<PeId> {
    let dfg = problem.dfg();
    let cgra = problem.cgra();
    let schedule = problem.schedule();
    let mut assignment = vec![PeId(0); dfg.node_count()];
    for slot_nodes in schedule.slots() {
        let mut free: Vec<PeId> = cgra.pe_ids().collect();
        for u in slot_nodes {
            let op = dfg.node(u).opcode;
            let candidates: Vec<usize> = free
                .iter()
                .enumerate()
                .filter(|(_, &pe)| cgra.pe(pe).capability.supports(op))
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                // Slot overfull (shouldn't happen with a feasible
                // schedule) — collide deliberately; cost will reflect it.
                assignment[u.index()] = PeId(rng.below(cgra.pe_count()) as u32);
            } else {
                let pick = candidates[rng.below(candidates.len())];
                assignment[u.index()] = free.swap_remove(pick);
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;
    use mapzero_nn::SeedRng;

    #[test]
    fn random_assignment_is_slot_exclusive() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut rng = SeedRng::new(3);
        let a = random_assignment(&problem, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for pe in &a {
            assert!(seen.insert(pe.0), "II=1 assignment must be injective");
        }
    }

    #[test]
    fn evaluation_counts_conflicts() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        // Everything on PE 0: massive conflicts.
        let a = vec![PeId(0); dfg.node_count()];
        let eval = evaluate(&problem, &a);
        assert!(eval.violations >= dfg.node_count() - 1);
        assert!(eval.cost() >= VIOLATION_WEIGHT);
        assert!(eval.mapping.is_none());
    }

    #[test]
    fn valid_assignment_produces_mapping() {
        // Place the 3-node chain by hand on a 2x2 mesh.
        let mut b = mapzero_dfg::DfgBuilder::new("chain");
        let x = b.node(mapzero_dfg::Opcode::Load);
        let y = b.node(mapzero_dfg::Opcode::Add);
        let z = b.node(mapzero_dfg::Opcode::Store);
        b.edge(x, y).unwrap();
        b.edge(y, z).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let eval = evaluate(&problem, &[PeId(0), PeId(1), PeId(3)]);
        assert!(eval.is_valid(), "violations: {}", eval.violations);
        let mapping = eval.mapping.unwrap();
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn cost_orders_better_placements_first() {
        let mut b = mapzero_dfg::DfgBuilder::new("pair");
        let x = b.node(mapzero_dfg::Opcode::Load);
        let y = b.node(mapzero_dfg::Opcode::Store);
        b.edge(x, y).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(3, 3);
        let problem = Problem::new(&dfg, &cgra, 2).unwrap();
        let near = evaluate(&problem, &[PeId(0), PeId(1)]);
        let far = evaluate(&problem, &[PeId(0), PeId(8)]);
        assert!(near.cost() <= far.cost());
    }
}
