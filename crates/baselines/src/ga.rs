//! Genetic-algorithm mapper — a GenMap-style representative of the
//! meta-heuristic class the paper surveys (§1 cites GA alongside SA as
//! the prevailing meta-heuristics; GenMap is reference [32]).
//!
//! Individuals are complete placements (one PE per node, slot-feasible
//! by construction); fitness is the negative routing cost of
//! [`crate::cost::evaluate`]. Selection is tournament-based, crossover
//! swaps the placement of a random node subset (repairing slot
//! conflicts), and mutation re-places a node on a random capable PE.

use crate::cost::{evaluate, random_assignment};
use mapzero_core::mapping::{MapError, MapReport, Mapper, Mapping};
use mapzero_core::problem::Problem;
use mapzero_arch::{Cgra, PeId};
use mapzero_dfg::Dfg;
use mapzero_nn::SeedRng;
use std::time::{Duration, Instant};

/// GA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Maximum generations per II.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-node mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// How many IIs above MII to try.
    pub max_extra_ii: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 48,
            generations: 120,
            tournament: 4,
            mutation_rate: 0.08,
            elitism: 4,
            max_extra_ii: 4,
            seed: 0,
        }
    }
}

/// The genetic-algorithm mapper.
#[derive(Debug, Clone, Default)]
pub struct GaMapper {
    config: GaConfig,
}

impl GaMapper {
    /// Create with the given configuration.
    #[must_use]
    pub fn new(config: GaConfig) -> Self {
        GaMapper { config }
    }

    /// One GA run on a fixed-II problem. Returns `(mapping, generations,
    /// evaluations, timed_out)`.
    fn evolve(
        problem: &Problem<'_>,
        config: &GaConfig,
        rng: &mut SeedRng,
        deadline: Instant,
    ) -> (Option<Mapping>, u64, u64, bool) {
        let mut evaluations = 0u64;
        let mut population: Vec<(Vec<PeId>, f64)> = (0..config.population)
            .map(|_| {
                let genes = random_assignment(problem, rng);
                let eval = evaluate(problem, &genes);
                evaluations += 1;
                (genes, eval.cost())
            })
            .collect();
        // Immediate lucky hit?
        if let Some((genes, _)) = population.iter().find(|(_, c)| *c < 1.0) {
            let eval = evaluate(problem, genes);
            if eval.is_valid() {
                return (eval.mapping, 0, evaluations, false);
            }
        }
        for generation in 0..config.generations {
            if Instant::now() > deadline {
                return (None, generation as u64, evaluations, true);
            }
            population.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
            if population[0].1 < 1.0 {
                let eval = evaluate(problem, &population[0].0);
                if eval.is_valid() {
                    return (eval.mapping, generation as u64, evaluations, false);
                }
            }
            let mut next: Vec<(Vec<PeId>, f64)> =
                population.iter().take(config.elitism).cloned().collect();
            while next.len() < config.population {
                let a = tournament(&population, config.tournament, rng);
                let b = tournament(&population, config.tournament, rng);
                let mut child = crossover(problem, &population[a].0, &population[b].0, rng);
                mutate(problem, &mut child, config.mutation_rate, rng);
                let cost = evaluate(problem, &child).cost();
                evaluations += 1;
                next.push((child, cost));
            }
            population = next;
        }
        // Final check of the best survivor.
        population.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        let eval = evaluate(problem, &population[0].0);
        if eval.is_valid() {
            return (eval.mapping, config.generations as u64, evaluations, false);
        }
        (None, config.generations as u64, evaluations, false)
    }
}

/// Tournament selection: index of the best of `k` random individuals.
fn tournament(
    population: &[(Vec<PeId>, f64)],
    k: usize,
    rng: &mut SeedRng,
) -> usize {
    let mut best = rng.below(population.len());
    for _ in 1..k {
        let cand = rng.below(population.len());
        if population[cand].1 < population[best].1 {
            best = cand;
        }
    }
    best
}

/// Uniform crossover with slot-conflict repair: each node takes its PE
/// from a random parent; duplicates within a modulo slot are re-placed
/// on a free capable PE.
fn crossover(
    problem: &Problem<'_>,
    a: &[PeId],
    b: &[PeId],
    rng: &mut SeedRng,
) -> Vec<PeId> {
    let dfg = problem.dfg();
    let schedule = problem.schedule();
    let mut child: Vec<PeId> = (0..a.len())
        .map(|i| if rng.unit() < 0.5 { a[i] } else { b[i] })
        .collect();
    // Repair: one node per (pe, slot).
    let cgra = problem.cgra();
    for slot_nodes in schedule.slots() {
        let mut used: Vec<PeId> = Vec::new();
        for u in slot_nodes {
            let pe = child[u.index()];
            if used.contains(&pe) {
                let op = dfg.node(u).opcode;
                let free: Vec<PeId> =
                    cgra.capable_pes(op).filter(|p| !used.contains(p)).collect();
                if !free.is_empty() {
                    child[u.index()] = free[rng.below(free.len())];
                }
            }
            used.push(child[u.index()]);
        }
    }
    child
}

/// Random re-placement mutation.
fn mutate(problem: &Problem<'_>, genes: &mut [PeId], rate: f64, rng: &mut SeedRng) {
    let dfg = problem.dfg();
    let cgra = problem.cgra();
    let schedule = problem.schedule();
    for u in dfg.node_ids() {
        if rng.unit() >= rate {
            continue;
        }
        let slot = schedule.modulo_slot(u);
        let used: Vec<PeId> = dfg
            .node_ids()
            .filter(|&v| v != u && schedule.modulo_slot(v) == slot)
            .map(|v| genes[v.index()])
            .collect();
        let op = dfg.node(u).opcode;
        let free: Vec<PeId> = cgra.capable_pes(op).filter(|p| !used.contains(p)).collect();
        if !free.is_empty() {
            genes[u.index()] = free[rng.below(free.len())];
        }
    }
}

impl Mapper for GaMapper {
    fn name(&self) -> &str {
        "GA"
    }

    fn map(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        let start = Instant::now();
        let deadline = start + time_limit;
        let mii = Problem::mii(dfg, cgra)?;
        let mut rng = SeedRng::new(self.config.seed ^ 0x6761);
        let mut generations = 0u64;
        let mut evaluations = 0u64;
        let mut timed_out = false;
        let mut mapping = None;
        for ii in mii..=mii + self.config.max_extra_ii {
            let problem = match Problem::new(dfg, cgra, ii) {
                Ok(p) => p,
                Err(MapError::NoSchedule(_)) => continue,
                Err(e) => return Err(e),
            };
            let (m, g, e, t) = Self::evolve(&problem, &self.config, &mut rng, deadline);
            generations += g;
            evaluations += e;
            timed_out |= t;
            if m.is_some() {
                mapping = m;
                break;
            }
            if timed_out {
                break;
            }
        }
        Ok(MapReport {
            mapper: self.name().to_owned(),
            engine: self.name().to_owned(),
            kernel: dfg.name().to_owned(),
            fabric: cgra.name().to_owned(),
            mii,
            mapping,
            elapsed: start.elapsed(),
            backtracks: generations,
            explored: evaluations,
            timed_out,
            telemetry: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn maps_tiny_kernel_on_hycube() {
        let cgra = presets::hycube();
        let dfg = suite::by_name("sum").unwrap();
        let mut mapper = GaMapper::default();
        let report = mapper.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        let mapping = report.mapping.expect("sum should map via GA");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn crossover_children_are_slot_feasible() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut rng = SeedRng::new(11);
        let a = random_assignment(&problem, &mut rng);
        let b = random_assignment(&problem, &mut rng);
        for _ in 0..20 {
            let child = crossover(&problem, &a, &b, &mut rng);
            // II = 1: all PEs must be distinct.
            let mut seen = std::collections::HashSet::new();
            for pe in &child {
                assert!(seen.insert(pe.0), "duplicate {pe} in child");
            }
        }
    }

    #[test]
    fn mutation_respects_capabilities() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::heterogeneous();
        let problem = Problem::new(&dfg, &cgra, 2).unwrap();
        let mut rng = SeedRng::new(3);
        let mut genes = random_assignment(&problem, &mut rng);
        for _ in 0..10 {
            mutate(&problem, &mut genes, 1.0, &mut rng);
            for u in dfg.node_ids() {
                assert!(cgra
                    .pe(genes[u.index()])
                    .capability
                    .supports(dfg.node(u).opcode));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cgra = presets::hrea();
        let dfg = suite::by_name("mac").unwrap();
        let mut a = GaMapper::new(GaConfig { seed: 5, ..Default::default() });
        let mut b = GaMapper::new(GaConfig { seed: 5, ..Default::default() });
        let ra = a.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        let rb = b.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        assert_eq!(ra.mapping, rb.mapping);
    }
}
