//! Baseline CGRA mappers used as comparison points in the paper's
//! evaluation (§4.1.3):
//!
//! * [`ExactMapper`] — stand-in for CGRA-ME (ILP): a systematic,
//!   complete branch-and-bound search over placement + routing. Like
//!   the ILP it is exact-or-timeout: given enough time it finds a valid
//!   mapping at the target II whenever one exists under the fixed
//!   modulo schedule, and it blows up on large DFGs.
//! * [`SaMapper`] — stand-in for CGRA-ME (SA): simulated annealing over
//!   placements with a routing-violation cost, 100 random perturbations
//!   per annealing step.
//! * [`LisaMapper`] — stand-in for LISA: SA guided by precomputed
//!   per-node labels emulating LISA's GNN labels. The labels assume
//!   single-cycle multi-hop interconnects, so they guide well on
//!   HyCube-class crossbar fabrics and mis-generalize on plain
//!   mesh-class topologies — reproducing the behaviour reported in
//!   §4.2.
//!
//! A [`GaMapper`] (GenMap-style genetic algorithm) rounds out the
//! meta-heuristic class the paper surveys in §1.
//!
//! All baselines implement the shared [`mapzero_core::Mapper`] trait and
//! the same outer II search loop as MapZero (start at MII, increase on
//! failure).

mod exact;
mod ga;
mod lisa;
mod sa;

pub mod cost;

pub use exact::{ExactConfig, ExactMapper};
pub use ga::{GaConfig, GaMapper};
pub use lisa::{LisaConfig, LisaMapper};
pub use sa::{SaConfig, SaMapper};
