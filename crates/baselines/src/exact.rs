//! Exact branch-and-bound mapper — the CGRA-ME (ILP) stand-in.
//!
//! A systematic depth-first search over placements in schedule order
//! with incremental routing: every partial placement whose newest node
//! cannot be routed is pruned immediately (the combinatorial
//! "systematic backtracking algorithm" of §1). Complete: within the
//! time limit it finds a valid mapping at the target II under the fixed
//! modulo schedule whenever one exists, or proves there is none. Like
//! the ILP it therefore delivers optimal IIs on small kernels and times
//! out on large ones.

use mapzero_core::env::MapEnv;
use mapzero_core::mapping::{MapError, MapReport, Mapper, Mapping};
use mapzero_core::problem::Problem;
use mapzero_arch::{Cgra, PeId};
use mapzero_dfg::Dfg;
use std::time::{Duration, Instant};

/// Configuration for the exact mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactConfig {
    /// How many IIs above MII to try.
    pub max_extra_ii: u32,
    /// Order candidate PEs by distance to placed parents (much faster;
    /// disable to measure raw search behaviour).
    pub order_by_distance: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig { max_extra_ii: 4, order_by_distance: true }
    }
}

/// The exact branch-and-bound mapper.
#[derive(Debug, Clone, Default)]
pub struct ExactMapper {
    config: ExactConfig,
}

impl ExactMapper {
    /// Create with the given configuration.
    #[must_use]
    pub fn new(config: ExactConfig) -> Self {
        ExactMapper { config }
    }

    /// Solve one fixed-II instance. Returns `(mapping, backtracks,
    /// explored, timed_out)`.
    fn solve(
        problem: &Problem<'_>,
        deadline: Instant,
        order_by_distance: bool,
    ) -> (Option<Mapping>, u64, u64, bool) {
        let mut env = MapEnv::new(problem);
        let cgra = problem.cgra();
        let dfg = problem.dfg();
        let mut backtracks = 0u64;
        let mut explored = 0u64;
        // DFS stack: per depth, remaining candidate actions.
        let mut stack: Vec<Vec<PeId>> = Vec::with_capacity(problem.node_count());
        stack.push(candidates(&env, cgra, dfg, order_by_distance));
        loop {
            if Instant::now() > deadline {
                return (None, backtracks, explored, true);
            }
            let Some(frame) = stack.last_mut() else {
                // Exhausted the whole tree: proven infeasible.
                return (None, backtracks, explored, false);
            };
            match frame.pop() {
                Some(action) => {
                    let outcome = env.step(action);
                    explored += 1;
                    if outcome.failed_routes > 0 {
                        env.undo();
                        backtracks += 1;
                        continue;
                    }
                    if env.done() {
                        if env.success() {
                            return (env.final_mapping(), backtracks, explored, false);
                        }
                        env.undo();
                        backtracks += 1;
                        continue;
                    }
                    stack.push(candidates(&env, cgra, dfg, order_by_distance));
                }
                None => {
                    stack.pop();
                    if env.undo().is_some() {
                        backtracks += 1;
                    }
                }
            }
        }
    }
}

/// Candidate PEs for the current node, worst-first (the DFS pops from
/// the back).
fn candidates(
    env: &MapEnv<'_>,
    cgra: &Cgra,
    dfg: &Dfg,
    order_by_distance: bool,
) -> Vec<PeId> {
    let mut legal = env.legal_actions();
    if !order_by_distance {
        legal.reverse();
        return legal;
    }
    let Some(u) = env.current_node() else {
        return legal;
    };
    let mut anchors: Vec<(usize, usize)> = Vec::new();
    for e in dfg.in_edges(u).chain(dfg.out_edges(u)) {
        let other = if e.src == u { e.dst } else { e.src };
        if let Some(p) = env.placement(other) {
            let pe = cgra.pe(p.pe);
            anchors.push((pe.row, pe.col));
        }
    }
    // Sort descending so the closest PE is tried first (popped last-in).
    legal.sort_by_key(|&pe| {
        let info = cgra.pe(pe);
        let d: usize = anchors
            .iter()
            .map(|&(r, c)| info.row.abs_diff(r) + info.col.abs_diff(c))
            .sum();
        std::cmp::Reverse(d)
    });
    legal
}

impl Mapper for ExactMapper {
    fn name(&self) -> &str {
        "ILP"
    }

    fn map(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        let start = Instant::now();
        let deadline = start + time_limit;
        let mii = Problem::mii(dfg, cgra)?;
        let mut backtracks = 0u64;
        let mut explored = 0u64;
        let mut mapping = None;
        let mut timed_out = false;
        for ii in mii..=mii + self.config.max_extra_ii {
            let problem = match Problem::new(dfg, cgra, ii) {
                Ok(p) => p,
                Err(MapError::NoSchedule(_)) => continue,
                Err(e) => return Err(e),
            };
            // Budget slice per II so an unroutable MII cannot starve
            // the larger IIs (mirrors the MapZero compiler loop).
            let remaining_iis = mii + self.config.max_extra_ii - ii + 1;
            let now = Instant::now();
            let slice_deadline = if now >= deadline {
                deadline
            } else {
                let remaining = deadline - now;
                now + remaining / remaining_iis
            };
            let (m, b, e, t) =
                Self::solve(&problem, slice_deadline, self.config.order_by_distance);
            backtracks += b;
            explored += e;
            timed_out |= t;
            if m.is_some() {
                mapping = m;
                timed_out = false;
                break;
            }
            if Instant::now() >= deadline {
                timed_out = true;
                break;
            }
        }
        Ok(MapReport {
            mapper: self.name().to_owned(),
            engine: self.name().to_owned(),
            kernel: dfg.name().to_owned(),
            fabric: cgra.name().to_owned(),
            mii,
            mapping,
            elapsed: start.elapsed(),
            backtracks,
            explored,
            timed_out,
            telemetry: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn maps_small_kernels_optimally() {
        let cgra = presets::hrea();
        let mut mapper = ExactMapper::default();
        for dfg in suite::small() {
            let report = mapper.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
            let mapping = report
                .mapping
                .as_ref()
                .unwrap_or_else(|| panic!("{} should map", dfg.name()));
            assert!(mapping.validate(&dfg, &cgra).is_empty(), "{}", dfg.name());
            assert_eq!(mapping.ii, report.mii, "{} must reach MII", dfg.name());
        }
    }

    #[test]
    fn maps_on_hycube() {
        let cgra = presets::hycube();
        let dfg = suite::by_name("mac").unwrap();
        let mut mapper = ExactMapper::default();
        let report = mapper.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        let mapping = report.mapping.expect("mac maps on HyCube");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
        assert_eq!(mapping.ii, report.mii);
    }

    #[test]
    fn proves_infeasibility_by_exhaustion() {
        // Node with 5 parents at the next cycle on a 4-neighbour 3x3
        // mesh at II large enough to schedule: unroutable at low IIs but
        // the search terminates and reports honestly.
        let mut b = mapzero_dfg::DfgBuilder::new("fanin5");
        let parents: Vec<_> = (0..5).map(|_| b.node(mapzero_dfg::Opcode::Const)).collect();
        let sink = b.node(mapzero_dfg::Opcode::Add);
        for p in parents {
            b.edge(p, sink).unwrap();
        }
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(3, 3);
        let mut mapper = ExactMapper::new(ExactConfig { max_extra_ii: 0, ..Default::default() });
        let report = mapper.map(&dfg, &cgra, Duration::from_secs(30)).unwrap();
        // At II=1 all six nodes share one slice; the sink needs five
        // simultaneously-adjacent live registers — a corner/edge PE
        // cannot host it, and with 4-neighbour links only 4 distinct
        // neighbour registers exist. Mapping must fail, without timeout.
        assert!(report.mapping.is_none());
        assert!(!report.timed_out);
        assert!(report.backtracks > 0);
    }

    #[test]
    fn times_out_on_large_kernel_with_tiny_budget() {
        let dfg = suite::by_name("arf").unwrap();
        let cgra = presets::hrea();
        let mut mapper = ExactMapper::default();
        let report = mapper.map(&dfg, &cgra, Duration::from_millis(50)).unwrap();
        assert!(report.timed_out || report.mapping.is_some());
    }
}
