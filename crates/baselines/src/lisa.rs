//! Label-guided simulated annealing — the LISA stand-in.
//!
//! LISA (Li et al., HPCA'22) trains a GNN to emit per-node labels —
//! expected spatial distances between communicating nodes and a
//! centrality score for high-fanout nodes — and biases SA's cost toward
//! placements agreeing with the labels. We compute the same *kinds* of
//! labels analytically from the DFG. Crucially, like LISA's training
//! set, the labels assume a **single-cycle multi-hop** (crossbar)
//! interconnect: the expected distance between producer and consumer is
//! the schedule-time difference, which physically matches HyCube but
//! systematically mis-estimates registered mesh fabrics. This
//! reproduces the §4.2 observation that "LISA is only applicable to
//! single-cycle multi-hop interconnect architectures like HyCube … and
//! fails on other topologies."

use crate::sa::{run_annealing_mapper, CostShaper, SaConfig};
use mapzero_core::mapping::{MapError, MapReport, Mapper};
use mapzero_core::problem::Problem;
use mapzero_arch::{Cgra, PeId};
use mapzero_dfg::Dfg;
use std::time::Duration;

/// LISA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LisaConfig {
    /// Underlying annealing parameters.
    pub sa: SaConfig,
    /// Weight of the label-agreement term relative to the routing cost.
    pub label_weight: f64,
}

impl Default for LisaConfig {
    fn default() -> Self {
        LisaConfig { sa: SaConfig::default(), label_weight: 12.0 }
    }
}

/// Per-edge and per-node labels emulating LISA's GNN output.
#[derive(Debug, Clone)]
pub struct Labels {
    /// Expected placement distance per DFG edge (crossbar assumption:
    /// one hop of distance per cycle of schedule slack, capped by the
    /// fabric diameter).
    pub edge_distance: Vec<f64>,
    /// Centrality score per node: high-fanout nodes want central PEs.
    pub centrality: Vec<f64>,
}

/// Compute the labels for a scheduled problem.
#[must_use]
pub fn compute_labels(problem: &Problem<'_>) -> Labels {
    let _span = mapzero_obs::span!("lisa.labels");
    let dfg = problem.dfg();
    let cgra = problem.cgra();
    let schedule = problem.schedule();
    let diameter = (cgra.rows() + cgra.cols()) as f64;
    let edge_distance = dfg
        .edges()
        .map(|e| {
            let slack = f64::from(
                (schedule.time(e.dst) + e.dist * problem.ii())
                    .saturating_sub(schedule.time(e.src)),
            );
            // Crossbar assumption: any distance is reachable within one
            // cycle, so the expected distance scales with slack but is
            // never forced to zero.
            (slack * 2.0).min(diameter).max(1.0)
        })
        .collect();
    let max_deg = dfg
        .node_ids()
        .map(|u| dfg.out_degree(u) + dfg.in_degree(u))
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let centrality = dfg
        .node_ids()
        .map(|u| (dfg.out_degree(u) + dfg.in_degree(u)) as f64 / max_deg)
        .collect();
    Labels { edge_distance, centrality }
}

struct LabelShaper {
    labels: Labels,
    weight: f64,
}

impl CostShaper for LabelShaper {
    fn extra_cost(&self, problem: &Problem<'_>, assignment: &[PeId]) -> f64 {
        let dfg = problem.dfg();
        let cgra = problem.cgra();
        let mut cost = 0.0;
        for (i, e) in dfg.edges().enumerate() {
            let a = cgra.pe(assignment[e.src.index()]);
            let b = cgra.pe(assignment[e.dst.index()]);
            let dist = (a.row.abs_diff(b.row) + a.col.abs_diff(b.col)) as f64;
            cost += (dist - self.labels.edge_distance[i]).abs();
        }
        let (cr, cc) = ((cgra.rows() - 1) as f64 / 2.0, (cgra.cols() - 1) as f64 / 2.0);
        for u in dfg.node_ids() {
            let p = cgra.pe(assignment[u.index()]);
            let off_center = (p.row as f64 - cr).abs() + (p.col as f64 - cc).abs();
            cost += self.labels.centrality[u.index()] * off_center;
        }
        self.weight * cost
    }
}

/// The LISA-style mapper.
#[derive(Debug, Clone, Default)]
pub struct LisaMapper {
    config: LisaConfig,
}

impl LisaMapper {
    /// Create with the given configuration.
    #[must_use]
    pub fn new(config: LisaConfig) -> Self {
        LisaMapper { config }
    }
}

impl Mapper for LisaMapper {
    fn name(&self) -> &str {
        "LISA"
    }

    fn map(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        let mii = Problem::mii(dfg, cgra)?;
        // Labels are computed once per instance at MII (as LISA infers
        // once per kernel); the shaper reuses them across IIs.
        let labels = match Problem::new(dfg, cgra, mii) {
            Ok(p) => compute_labels(&p),
            Err(_) => {
                // MII unschedulable: fall back to the first feasible II
                // purely for label computation.
                let mut found = None;
                for ii in mii..=mii + self.config.sa.max_extra_ii {
                    if let Ok(p) = Problem::new(dfg, cgra, ii) {
                        found = Some(compute_labels(&p));
                        break;
                    }
                }
                found.ok_or_else(|| {
                    MapError::NoSchedule(format!("no feasible II for {}", dfg.name()))
                })?
            }
        };
        let shaper = LabelShaper { labels, weight: self.config.label_weight };
        run_annealing_mapper("LISA", &self.config.sa, &shaper, dfg, cgra, time_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn labels_have_expected_shape() {
        let dfg = suite::by_name("mac").unwrap();
        let cgra = presets::hycube();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let labels = compute_labels(&problem);
        assert_eq!(labels.edge_distance.len(), dfg.edge_count());
        assert_eq!(labels.centrality.len(), dfg.node_count());
        assert!(labels.edge_distance.iter().all(|&d| d >= 1.0));
        assert!(labels.centrality.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn maps_on_hycube() {
        let cgra = presets::hycube();
        let dfg = suite::by_name("sum").unwrap();
        let mut mapper = LisaMapper::default();
        let report = mapper.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        let mapping = report.mapping.expect("sum should map via LISA on HyCube");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn label_guidance_changes_search() {
        // Same seed, same kernel: LISA and plain SA should explore
        // differently because their costs differ.
        let cgra = presets::hycube();
        let dfg = suite::by_name("mac").unwrap();
        let mut lisa = LisaMapper::default();
        let mut sa = crate::SaMapper::default();
        let rl = lisa.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        let rs = sa.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        assert!(rl.mapping.is_some());
        assert!(rs.mapping.is_some());
    }
}
