//! Simulated annealing mapper — the CGRA-ME (SA) stand-in.
//!
//! Placements are perturbed by moving a node to a free capable PE or
//! swapping two nodes of the same modulo slot; "100 random
//! perturbations are made before each annealing" (§4.3), with Metropolis
//! acceptance and geometric cooling. The annealing-step count is
//! reported as `backtracks` for Fig. 10.

use crate::cost::{evaluate, random_assignment};
use mapzero_core::mapping::{MapError, MapReport, Mapper, Mapping};
use mapzero_core::problem::Problem;
use mapzero_arch::{Cgra, PeId};
use mapzero_dfg::Dfg;
use mapzero_nn::SeedRng;
use std::time::{Duration, Instant};

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Initial temperature.
    pub t_start: f64,
    /// Stop temperature.
    pub t_min: f64,
    /// Geometric cooling factor per annealing step.
    pub alpha: f64,
    /// Perturbation proposals per annealing step (paper: 100).
    pub moves_per_step: usize,
    /// Restarts with fresh random placements before giving up on an II.
    pub restarts: usize,
    /// How many IIs above MII to try.
    pub max_extra_ii: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            t_start: 300.0,
            t_min: 0.2,
            alpha: 0.92,
            moves_per_step: 100,
            restarts: 2,
            max_extra_ii: 4,
            seed: 0,
        }
    }
}

/// The annealing mapper.
#[derive(Debug, Clone, Default)]
pub struct SaMapper {
    config: SaConfig,
}

/// Extra cost terms layered on top of the routing cost; the plain SA
/// uses none, LISA adds its label guidance.
pub(crate) trait CostShaper {
    fn extra_cost(&self, problem: &Problem<'_>, assignment: &[PeId]) -> f64;
}

pub(crate) struct NoShaping;

impl CostShaper for NoShaping {
    fn extra_cost(&self, _problem: &Problem<'_>, _assignment: &[PeId]) -> f64 {
        0.0
    }
}

impl SaMapper {
    /// Create with the given configuration.
    #[must_use]
    pub fn new(config: SaConfig) -> Self {
        SaMapper { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SaConfig {
        &self.config
    }
}

/// One annealing run on a fixed-II problem. Returns `(best evaluation,
/// annealing steps, proposals, timed_out)`.
pub(crate) fn anneal(
    problem: &Problem<'_>,
    config: &SaConfig,
    shaper: &dyn CostShaper,
    rng: &mut SeedRng,
    deadline: Instant,
) -> (Option<Mapping>, u64, u64, bool) {
    let _span = mapzero_obs::span!("sa.anneal");
    let mut annealings = 0u64;
    let mut proposals = 0u64;

    for _restart in 0..=config.restarts {
        let mut current = random_assignment(problem, rng);
        let mut current_eval = evaluate(problem, &current);
        let mut current_cost = current_eval.cost() + shaper.extra_cost(problem, &current);
        if current_eval.is_valid() {
            return (current_eval.mapping, annealings, proposals, false);
        }
        let mut temperature = config.t_start;
        while temperature > config.t_min {
            if Instant::now() > deadline {
                return (None, annealings, proposals, true);
            }
            annealings += 1;
            for _ in 0..config.moves_per_step {
                proposals += 1;
                let mut candidate = current.clone();
                perturb(problem, &mut candidate, rng);
                let eval = evaluate(problem, &candidate);
                let cost = eval.cost() + shaper.extra_cost(problem, &candidate);
                let accept = cost <= current_cost || {
                    let p = ((current_cost - cost) / temperature).exp();
                    rng.unit() < p
                };
                if accept {
                    current = candidate;
                    current_cost = cost;
                    current_eval = eval;
                    if current_eval.is_valid() {
                        return (current_eval.mapping.clone(), annealings, proposals, false);
                    }
                }
            }
            temperature *= config.alpha;
        }
    }
    (None, annealings, proposals, false)
}

/// Move a random node to a free capable PE of its slot, or swap two
/// nodes within a slot.
fn perturb(problem: &Problem<'_>, assignment: &mut [PeId], rng: &mut SeedRng) {
    let dfg = problem.dfg();
    let cgra = problem.cgra();
    let schedule = problem.schedule();
    let n = dfg.node_count();
    let u = mapzero_dfg::NodeId(rng.below(n) as u32);
    let slot = schedule.modulo_slot(u);
    let op = dfg.node(u).opcode;

    if rng.unit() < 0.5 {
        // Move to a random capable PE not used by another node of the
        // same slot.
        let used: Vec<PeId> = dfg
            .node_ids()
            .filter(|&v| v != u && schedule.modulo_slot(v) == slot)
            .map(|v| assignment[v.index()])
            .collect();
        let free: Vec<PeId> = cgra
            .capable_pes(op)
            .filter(|pe| !used.contains(pe))
            .collect();
        if !free.is_empty() {
            assignment[u.index()] = free[rng.below(free.len())];
        }
    } else {
        // Swap with another node of the same slot (capability permitting).
        let peers: Vec<mapzero_dfg::NodeId> = dfg
            .node_ids()
            .filter(|&v| v != u && schedule.modulo_slot(v) == slot)
            .collect();
        if peers.is_empty() {
            return;
        }
        let v = peers[rng.below(peers.len())];
        let (pu, pv) = (assignment[u.index()], assignment[v.index()]);
        let ou = dfg.node(u).opcode;
        let ov = dfg.node(v).opcode;
        if cgra.pe(pv).capability.supports(ou) && cgra.pe(pu).capability.supports(ov) {
            assignment[u.index()] = pv;
            assignment[v.index()] = pu;
        }
    }
}

/// Shared II-search driver for the annealing-family mappers.
pub(crate) fn run_annealing_mapper(
    name: &str,
    config: &SaConfig,
    shaper: &dyn CostShaper,
    dfg: &Dfg,
    cgra: &Cgra,
    time_limit: Duration,
) -> Result<MapReport, MapError> {
    let start = Instant::now();
    let capture = mapzero_obs::RunCapture::begin();
    let deadline = start + time_limit;
    let mii = Problem::mii(dfg, cgra)?;
    let mut rng = SeedRng::new(config.seed ^ dfg.name().len() as u64);
    let mut annealings = 0u64;
    let mut proposals = 0u64;
    let mut timed_out = false;
    let mut mapping = None;
    for ii in mii..=mii + config.max_extra_ii {
        let problem = match Problem::new(dfg, cgra, ii) {
            Ok(p) => p,
            Err(MapError::NoSchedule(_)) => continue,
            Err(e) => return Err(e),
        };
        let (m, a, p, t) = anneal(&problem, config, shaper, &mut rng, deadline);
        annealings += a;
        proposals += p;
        timed_out |= t;
        if m.is_some() {
            mapping = m;
            break;
        }
        if timed_out {
            break;
        }
    }
    mapzero_obs::counter!("sa.annealings", annealings);
    mapzero_obs::counter!("sa.proposals", proposals);
    Ok(MapReport {
        mapper: name.to_owned(),
        engine: name.to_owned(),
        kernel: dfg.name().to_owned(),
        fabric: cgra.name().to_owned(),
        mii,
        mapping,
        elapsed: start.elapsed(),
        backtracks: annealings,
        explored: proposals,
        timed_out,
        telemetry: capture.map(mapzero_obs::RunCapture::finish),
    })
}

impl Mapper for SaMapper {
    fn name(&self) -> &str {
        "SA"
    }

    fn map(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        time_limit: Duration,
    ) -> Result<MapReport, MapError> {
        run_annealing_mapper("SA", &self.config, &NoShaping, dfg, cgra, time_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    #[test]
    fn maps_tiny_kernel() {
        let cgra = presets::hrea();
        let dfg = suite::by_name("sum").unwrap();
        let mut mapper = SaMapper::default();
        let report = mapper.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        let mapping = report.mapping.expect("sum should map via SA");
        assert!(mapping.validate(&dfg, &cgra).is_empty());
    }

    #[test]
    fn annealing_steps_counted() {
        // A kernel small enough to solve but unlikely at the first
        // random shot on a crossbar.
        let cgra = presets::hycube();
        let dfg = suite::by_name("mac").unwrap();
        let mut mapper = SaMapper::default();
        let report = mapper.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        assert!(report.mapping.is_some());
        // Either an immediate lucky hit (0) or counted annealings.
        assert!(report.explored >= report.backtracks);
    }

    #[test]
    fn respects_time_limit() {
        let cgra = presets::hrea();
        let dfg = suite::by_name("arf").unwrap();
        let mut mapper = SaMapper::default();
        let start = Instant::now();
        let report = mapper.map(&dfg, &cgra, Duration::from_millis(100)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(20));
        assert!(report.timed_out || report.mapping.is_some());
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let cgra = presets::hrea();
        let dfg = suite::by_name("sum").unwrap();
        let mut a = SaMapper::new(SaConfig { seed: 9, ..Default::default() });
        let mut b = SaMapper::new(SaConfig { seed: 9, ..Default::default() });
        let ra = a.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        let rb = b.map(&dfg, &cgra, Duration::from_secs(60)).unwrap();
        assert_eq!(ra.mapping, rb.mapping);
        assert_eq!(ra.backtracks, rb.backtracks);
    }
}
