//! Dense row-major f32 matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics on empty input or ragged rows.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data }
    }

    /// A 1×1 matrix.
    #[must_use]
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// A 1×n row vector.
    #[must_use]
    pub fn row(values: &[f32]) -> Self {
        Matrix::from_rows(&[values])
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[inline]
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    #[must_use]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fill with a constant.
    #[inline]
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Reshape in place to `rows x cols`, zero-filling every element.
    /// Keeps the existing allocation when capacity suffices, which is
    /// what lets [`crate::infer::InferCtx`] reuse scratch matrices
    /// across forward passes without touching the allocator.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Become an element-wise copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self x rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.accumulate_matmul(rhs, &mut out);
        out
    }

    /// Matrix product `self x rhs` written into `out` (resized in
    /// place), so hot inference loops can avoid a fresh allocation per
    /// product. Bit-identical to [`Matrix::matmul`] — both run the same
    /// accumulation kernel.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        out.resize_to(self.rows, rhs.cols);
        self.accumulate_matmul(rhs, out);
    }

    /// The shared i-k-j accumulation kernel behind `matmul` /
    /// `matmul_into`. `out` must be zeroed and shaped `self.rows x
    /// rhs.cols`.
    ///
    /// Each output element accumulates its `k` contributions in
    /// ascending order with the same zero skip regardless of kernel
    /// kind. Under `Lanes8` the register-blocked columns fuse each
    /// product into its accumulation (`mul_add`, one rounding instead
    /// of two — see [`crate::simd::matmul_lanes8`]), so the two kinds
    /// can differ by that rounding; what the inference path pins on is
    /// that the tape and tape-free forwards share this one kernel, so
    /// they agree bitwise under whichever kind is active.
    fn accumulate_matmul(&self, rhs: &Matrix, out: &mut Matrix) {
        if rhs.cols == 1 {
            // Matvec (attention-score projections are the common case):
            // each output element is a single accumulation over one row
            // of `self` and the contiguous column vector — one fused
            // loop per row instead of one length-1 axpy call per
            // (row, k) pair. Accumulation order and the zero skip are
            // exactly those of the axpy loop below, so this stays
            // bit-identical under either kernel kind; the `Lanes8`
            // selection interleaves four rows' accumulator chains to
            // hide the add latency (see `simd::matvec_lanes8`).
            if matches!(crate::simd::kind(), crate::simd::SimdKind::Lanes8) {
                crate::simd::matvec_lanes8(&self.data, self.cols, &rhs.data, &mut out.data);
                return;
            }
            for i in 0..self.rows {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let mut acc = out.data[i];
                for (&a, &b) in a_row.iter().zip(&rhs.data) {
                    if a != 0.0 {
                        acc += a * b;
                    }
                }
                out.data[i] = acc;
            }
            return;
        }
        // Resolve the kernel kind once: the per-call atomic load and
        // match inside `simd::axpy` are measurable at head-dim-sized
        // rows (thousands of 16-element calls per forward), and hoisting
        // lets LLVM unswitch the nested loop into two specialized
        // bodies with the kernel inlined.
        let kind = crate::simd::kind();
        match kind {
            crate::simd::SimdKind::Scalar => {
                for i in 0..self.rows {
                    for k in 0..self.cols {
                        let a = self.data[i * self.cols + k];
                        if a == 0.0 {
                            continue;
                        }
                        let lhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                        let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                        crate::simd::axpy_scalar(out_row, a, lhs_row);
                    }
                }
            }
            crate::simd::SimdKind::Lanes8 => {
                // Register-blocked fused accumulation in `simd` (one
                // AVX2+FMA dispatch for the whole product — see
                // `simd::matmul_lanes8` for the rounding contract).
                crate::simd::matmul_lanes8(&self.data, self.cols, &rhs.data, rhs.cols, &mut out.data);
            }
        }
    }

    /// Matrix product `self x rhsᵀ` without materializing the
    /// transpose: both operands are walked row-by-row (each output cell
    /// is a dot product of two contiguous rows), so the backward pass
    /// of `MatMul` stops allocating and striding a transposed copy.
    ///
    /// Accumulation runs over `k` in ascending order with the same
    /// skip of zero left-hand elements as `self.matmul(&rhs.transpose())`,
    /// with separate multiply-then-add per step — bit-identical to the
    /// explicit-transpose product for output widths below 8; on wider
    /// outputs the `Lanes8` matmul fuses its leading column blocks
    /// (see [`crate::simd::matmul_lanes8`]), so the two agree only
    /// within one rounding per product there. Backward-pass use is
    /// tolerance-governed either way.
    ///
    /// # Panics
    /// Panics unless `self.cols == rhs.cols`.
    #[must_use]
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_transposed dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Fused-order variant of [`Matrix::matmul_transposed`]: each
    /// output cell is one [`crate::simd::dot`] over two contiguous
    /// rows, using 8 parallel accumulators instead of the sequential
    /// zero-skipping scan. Matches the order-preserving form only
    /// within the kernel tolerance contract (≤1e-5 relative, pinned by
    /// the kernel proptests), so it is reserved for tolerance-governed
    /// paths — the autodiff backward pass uses it; the forward paths
    /// pinned by bit-equality tests must keep `matmul_transposed`.
    ///
    /// # Panics
    /// Panics unless `self.cols == rhs.cols`.
    #[must_use]
    pub fn matmul_transposed_fast(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_transposed dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                *o = crate::simd::dot(a_row, b_row);
            }
        }
        out
    }

    /// Matrix product `selfᵀ x rhs` without materializing the
    /// transpose: the accumulation walks `self` and `rhs` row-by-row
    /// and scatters into `out` rows, keeping every access contiguous.
    ///
    /// For each output cell the contributions arrive in the same
    /// (ascending-`i`) order with the same zero skip as
    /// `self.transpose().matmul(rhs)`, through the order-preserving
    /// [`crate::simd::axpy`] kernel (separate multiply-then-add) —
    /// bit-identical to the explicit-transpose product for output
    /// widths below 8; on wider outputs the `Lanes8` matmul fuses its
    /// leading column blocks (see [`crate::simd::matmul_lanes8`]), so
    /// the two agree only within one rounding per product there.
    ///
    /// # Panics
    /// Panics unless `self.rows == rhs.rows`.
    #[must_use]
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "transpose_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let b_row = &rhs.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (c, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[c * rhs.cols..(c + 1) * rhs.cols];
                crate::simd::axpy(out_row, a, b_row);
            }
        }
        out
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise addition in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Scale every element in place.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Map every element.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Map every element in place — the allocation-free counterpart of
    /// [`Matrix::map`] for paths that own the matrix anyway.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>().sqrt() as f32
    }

    /// Maximum absolute difference to another matrix (∞-norm of the
    /// difference); used by tests.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        a.scale_assign(0.5);
        assert_eq!(a, Matrix::filled(2, 2, 1.5));
    }

    #[test]
    fn norm_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[3.0, -4.0, 5.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.0, -1.0], &[2.0, 3.0, 4.0]]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_transposed_fast_matches_reference_within_tolerance() {
        let a = Matrix::from_vec(5, 19, (0..95).map(|i| ((i as f32) * 0.31).sin()).collect());
        let b = Matrix::from_vec(7, 19, (0..133).map(|i| ((i as f32) * 0.17).cos()).collect());
        let fast = a.matmul_transposed_fast(&b);
        let reference = a.matmul_transposed(&b);
        assert!(fast.max_abs_diff(&reference) <= 1e-5, "fused dot drifted past the contract");
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, -4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 3.0], &[0.0, 4.0]]);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_into_matches_matmul_and_reuses_storage() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::filled(4, 4, 9.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn resize_to_zeroes_stale_data() {
        let mut m = Matrix::filled(3, 3, 7.0);
        m.resize_to(2, 2);
        assert_eq!(m, Matrix::zeros(2, 2));
    }

    #[test]
    fn map_assign_matches_map() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        let mut b = a.clone();
        b.map_assign(|v| v.max(0.0));
        assert_eq!(b, a.map(|v| v.max(0.0)));
    }

    #[test]
    fn max_abs_diff_finds_largest() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, 1.0]]);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-6);
    }
}
