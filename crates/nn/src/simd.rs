//! Explicit-SIMD f32 kernels with a scalar fallback, selected once at
//! runtime.
//!
//! `std::simd` is still nightly-only, so these kernels are written as
//! manually 8-lane-unrolled loops over fixed-size `[f32; 8]` blocks —
//! the shape LLVM reliably turns into vector instructions on every
//! target the workspace builds for — plus a scalar remainder for ragged
//! tails. `MAPZERO_SIMD=scalar` (or `off`/`0`) forces the scalar
//! fallback, which is useful for bisecting numeric differences and for
//! benchmarking the kernels against their reference forms.
//!
//! # Determinism contract
//!
//! The kernels come in two flavours with different guarantees:
//!
//! - **Order-preserving** ([`axpy`], [`max_masked`]): every output
//!   element sees exactly the operations, in exactly the order, of the
//!   scalar reference loop (`axpy` touches each lane independently;
//!   `max` is associative and commutative over non-NaN floats). These
//!   are **bit-exact** under either [`SimdKind`] and are safe inside
//!   paths pinned by bit-equality tests, e.g. the forward pass that
//!   must match `predict_reference`. One carve-out: the `Lanes8`
//!   matmul's register-blocked columns fuse each product into its
//!   accumulation (`mul_add`, one rounding instead of two), so for the
//!   general matmul shape the two kinds differ by that rounding — but
//!   the order, the zero skip, and the per-element operation sequence
//!   are still fixed by shape alone, and every forward path (tape,
//!   tape-free, batched) runs the same kernel, so all paths remain
//!   mutually bit-identical under whichever kind is active.
//! - **Fused-order** ([`dot`], [`sum_exp_masked`]): the reduction runs
//!   in 8 parallel accumulators folded with a fixed tree, which
//!   reassociates the floating-point sum. Results match the sequential
//!   reference only within a small tolerance (the kernel proptests pin
//!   1e-5 relative), so these are reserved for paths with an explicit
//!   tolerance contract: the autodiff backward pass and the K>1
//!   batched-inference softmax.
//! - **Elementwise-approximate** ([`tanh1`], [`tanh_map`]): under
//!   `Lanes8` a vectorizable polynomial replaces the libm call, within
//!   1e-5 absolute of it. The output depends only on the input bits and
//!   the active kind — never on position or batch composition — so all
//!   forward paths (tape, tape-free, batched) remain mutually
//!   bit-identical under whichever kind is active; only cross-kind runs
//!   differ.
//!
//! On x86-64 the `Lanes8` kernels additionally dispatch (cached runtime
//! detection of AVX2 + FMA) to `#[target_feature(enable = "avx2,fma")]`
//! twins of the same bodies. Bodies written as `a*b + c` stay separate
//! multiply-then-add — Rust never contracts them — so their twins
//! change throughput, never bits. Bodies written with `mul_add` (the
//! matmul column blocks) mean fused single-rounding semantics on every
//! path: hardware FMA inside the twins, libm `fmaf` in the non-AVX2
//! fallback — same bits either way, the fallback is just slower (it
//! only runs on pre-2013 x86-64 or non-x86 hosts).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel family [`kind`] selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdKind {
    /// Plain sequential loops (reference semantics).
    Scalar,
    /// 8-lane unrolled kernels.
    Lanes8,
}

const KIND_UNSET: u8 = 0;
const KIND_SCALAR: u8 = 1;
const KIND_LANES8: u8 = 2;

static KIND: AtomicU8 = AtomicU8::new(KIND_UNSET);

/// Runtime kernel selection, decided once per process from the
/// environment: 8-lane unrolled kernels unless `MAPZERO_SIMD` is set to
/// `scalar`, `off`, or `0`. [`force_kind`] can override the selection
/// afterwards (benchmark support).
#[must_use]
pub fn kind() -> SimdKind {
    match KIND.load(Ordering::Relaxed) {
        KIND_SCALAR => SimdKind::Scalar,
        KIND_LANES8 => SimdKind::Lanes8,
        _ => {
            let selected = match std::env::var("MAPZERO_SIMD").as_deref() {
                Ok("scalar" | "off" | "0") => SimdKind::Scalar,
                _ => SimdKind::Lanes8,
            };
            force_kind(selected);
            selected
        }
    }
}

/// Override the kernel selection for the rest of the process (or until
/// the next call). Benchmark support: the hotpath bench measures the
/// scalar-kernel baseline and the SIMD arm inside one process. Normal
/// operation never switches kinds mid-run — predictions are
/// deterministic per kind, not across kinds.
pub fn force_kind(k: SimdKind) {
    let code = match k {
        SimdKind::Scalar => KIND_SCALAR,
        SimdKind::Lanes8 => KIND_LANES8,
    };
    KIND.store(code, Ordering::Relaxed);
}

const LANES: usize = 8;

/// `out[j] += a * x[j]` — the axpy update behind every matmul in the
/// workspace. Each lane is read-modify-written independently, so the
/// unrolled form is bit-exact to the scalar loop and safe in
/// bit-equality-pinned paths.
///
/// # Panics
/// Panics unless `out.len() == x.len()`.
#[inline]
pub fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(out.len(), x.len(), "axpy length mismatch");
    match kind() {
        SimdKind::Scalar => axpy_scalar(out, a, x),
        SimdKind::Lanes8 => axpy_lanes8(out, a, x),
    }
}

#[inline]
pub(crate) fn axpy_scalar(out: &mut [f32], a: f32, x: &[f32]) {
    for (o, &b) in out.iter_mut().zip(x) {
        *o += a * b;
    }
}

/// Cached AVX2+FMA runtime detection for the `Lanes8` kernels. The
/// twins run the *same* Rust bodies compiled for 256-bit registers:
/// `a*b + c` bodies keep separate multiply-then-add (Rust never
/// contracts them) and `mul_add` bodies are fused on either path
/// (hardware FMA in the twin, libm `fmaf` in the fallback), so the
/// detection outcome changes throughput, never bits.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2() -> bool {
    static AVX2: AtomicU8 = AtomicU8::new(0);
    match AVX2.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let detected = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            AVX2.store(if detected { 1 } else { 2 }, Ordering::Relaxed);
            detected
        }
    }
}

#[inline(always)]
fn axpy_lanes8_body(out: &mut [f32], a: f32, x: &[f32]) {
    let mut oc = out.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (o, b) in oc.by_ref().zip(xc.by_ref()) {
        // Fixed-size block: lane j only ever combines with lane j, so
        // vectorizing cannot reassociate anything.
        for j in 0..LANES {
            o[j] += a * b[j];
        }
    }
    axpy_scalar(oc.into_remainder(), a, xc.remainder());
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn axpy_lanes8_avx2(out: &mut [f32], a: f32, x: &[f32]) {
    axpy_lanes8_body(out, a, x);
}

#[inline]
pub(crate) fn axpy_lanes8(out: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: `avx2()` confirmed the CPU supports AVX2.
        return unsafe { axpy_lanes8_avx2(out, a, x) };
    }
    axpy_lanes8_body(out, a, x)
}

/// The `Lanes8` matmul accumulation loop behind
/// [`crate::Matrix::matmul`]: `out` (`rows x n`, row-major) accumulates
/// `lhs` (`rows x cols`) times `rhs` (`cols x n`). Register-blocked:
/// output rows are processed four at a time in fixed-width column
/// chunks (16/8 columns, then a ragged axpy tail) whose accumulators
/// live in registers across the whole ascending-`k` loop and are stored
/// once — instead of the output row being loaded and stored again per
/// `k` step. The column blocks accumulate with `mul_add` (fused, one
/// rounding per product), so this kernel differs from the scalar one by
/// at most that rounding; the order and the zero skip are exactly the
/// scalar kernel's, and which columns fuse is fixed by the shape alone
/// (`n - n % 8` leading columns), never by row, batch composition, or
/// CPU. The ragged tail keeps separate multiply-then-add.
///
/// Lives here (not in `matrix.rs`) so the whole loop gets one AVX2
/// dispatch per matmul with the block kernels inlined into the twin.
///
/// # Panics
/// Panics if the slice lengths are inconsistent with `cols`/`n`.
pub(crate) fn matmul_lanes8(lhs: &[f32], cols: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
    if cols == 0 {
        return;
    }
    assert_eq!(rhs.len(), cols * n, "rhs shape mismatch");
    assert_eq!(lhs.len() * n, out.len() * cols, "lhs/out shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: `avx2()` confirmed the CPU supports AVX2.
        return unsafe { matmul_lanes8_avx2(lhs, cols, rhs, n, out) };
    }
    matmul_lanes8_kernel(lhs, cols, rhs, n, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn matmul_lanes8_avx2(lhs: &[f32], cols: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
    matmul_lanes8_kernel(lhs, cols, rhs, n, out);
}

/// One register-blocked output chunk: `out_chunk` (width `W`) is held
/// in a fixed-size accumulator array — registers, once vectorized —
/// across the whole ascending-`k` loop and stored once, instead of
/// being loaded and stored again per `k` step. Per lane the fused
/// accumulations run in exactly the scalar kernel's order with the
/// same zero skip (see [`matmul_lanes8`] for the rounding contract).
#[inline(always)]
fn matmul_row_block<const W: usize>(a_row: &[f32], rhs: &[f32], n: usize, c: usize, out_chunk: &mut [f32]) {
    let mut acc = [0.0f32; W];
    acc.copy_from_slice(&out_chunk[..W]);
    for (k, &a) in a_row.iter().enumerate() {
        if a != 0.0 {
            let r = &rhs[k * n + c..k * n + c + W];
            for j in 0..W {
                acc[j] = a.mul_add(r[j], acc[j]);
            }
        }
    }
    out_chunk[..W].copy_from_slice(&acc);
}

/// Four-row register tile: like [`matmul_row_block`], but four output
/// rows' chunks are accumulated together so the tile holds `4 x W/8`
/// independent vector accumulator chains (at `W = 16` that is eight —
/// enough to hide the FMA latency that a single row's two chains
/// cannot) and each `rhs` row is loaded once for all four lhs rows.
/// Each output element still accumulates its `k` contributions in
/// ascending order with the per-`(row, k)` zero skip; row position
/// never changes an element's numerics, so quad-tiled and remainder
/// rows agree bitwise.
#[inline(always)]
fn matmul_rows4_block<const W: usize>(
    a: [&[f32]; 4],
    rhs: &[f32],
    n: usize,
    c: usize,
    o: [&mut [f32]; 4],
) {
    // Four named accumulator arrays (not an indexed array-of-arrays)
    // so each lowers to live vector registers rather than stack slots.
    let [a0, a1, a2, a3] = a;
    let [o0, o1, o2, o3] = o;
    let mut acc0 = [0.0f32; W];
    let mut acc1 = [0.0f32; W];
    let mut acc2 = [0.0f32; W];
    let mut acc3 = [0.0f32; W];
    acc0.copy_from_slice(&o0[..W]);
    acc1.copy_from_slice(&o1[..W]);
    acc2.copy_from_slice(&o2[..W]);
    acc3.copy_from_slice(&o3[..W]);
    for k in 0..a0.len() {
        let rr = &rhs[k * n + c..k * n + c + W];
        let v0 = a0[k];
        if v0 != 0.0 {
            for j in 0..W {
                acc0[j] = v0.mul_add(rr[j], acc0[j]);
            }
        }
        let v1 = a1[k];
        if v1 != 0.0 {
            for j in 0..W {
                acc1[j] = v1.mul_add(rr[j], acc1[j]);
            }
        }
        let v2 = a2[k];
        if v2 != 0.0 {
            for j in 0..W {
                acc2[j] = v2.mul_add(rr[j], acc2[j]);
            }
        }
        let v3 = a3[k];
        if v3 != 0.0 {
            for j in 0..W {
                acc3[j] = v3.mul_add(rr[j], acc3[j]);
            }
        }
    }
    o0[..W].copy_from_slice(&acc0);
    o1[..W].copy_from_slice(&acc1);
    o2[..W].copy_from_slice(&acc2);
    o3[..W].copy_from_slice(&acc3);
}

/// Single-row fallback for row counts not divisible by four and for
/// ragged column tails; see [`matmul_row_block`].
#[inline(always)]
fn matmul_one_row(a_row: &[f32], rhs: &[f32], n: usize, out_row: &mut [f32], mut c: usize) {
    while n - c >= 32 {
        matmul_row_block::<32>(a_row, rhs, n, c, &mut out_row[c..c + 32]);
        c += 32;
    }
    if n - c >= 16 {
        matmul_row_block::<16>(a_row, rhs, n, c, &mut out_row[c..c + 16]);
        c += 16;
    }
    if n - c >= 8 {
        matmul_row_block::<8>(a_row, rhs, n, c, &mut out_row[c..c + 8]);
        c += 8;
    }
    if c < n {
        // Ragged tail (< 8 columns): ascending-`k` axpy updates on
        // the remaining slice, same order and zero skip as above.
        for (k, &a) in a_row.iter().enumerate() {
            if a != 0.0 {
                axpy_lanes8_body(&mut out_row[c..], a, &rhs[k * n + c..(k + 1) * n]);
            }
        }
    }
}

#[inline(always)]
fn matmul_lanes8_kernel(lhs: &[f32], cols: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
    let mut lhs_quads = lhs.chunks_exact(4 * cols);
    let mut out_quads = out.chunks_exact_mut(4 * n);
    for (lq, oq) in lhs_quads.by_ref().zip(out_quads.by_ref()) {
        let (a0, rest) = lq.split_at(cols);
        let (a1, rest) = rest.split_at(cols);
        let (a2, a3) = rest.split_at(cols);
        let (o0, rest) = oq.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let mut c = 0;
        while n - c >= 16 {
            matmul_rows4_block::<16>(
                [a0, a1, a2, a3],
                rhs,
                n,
                c,
                [
                    &mut o0[c..c + 16],
                    &mut o1[c..c + 16],
                    &mut o2[c..c + 16],
                    &mut o3[c..c + 16],
                ],
            );
            c += 16;
        }
        if n - c >= 8 {
            matmul_rows4_block::<8>(
                [a0, a1, a2, a3],
                rhs,
                n,
                c,
                [
                    &mut o0[c..c + 8],
                    &mut o1[c..c + 8],
                    &mut o2[c..c + 8],
                    &mut o3[c..c + 8],
                ],
            );
            c += 8;
        }
        if c < n {
            for (a_row, out_row) in [(a0, &mut *o0), (a1, o1), (a2, o2), (a3, o3)] {
                for (k, &a) in a_row.iter().enumerate() {
                    if a != 0.0 {
                        axpy_lanes8_body(&mut out_row[c..], a, &rhs[k * n + c..(k + 1) * n]);
                    }
                }
            }
        }
    }
    for (a_row, out_row) in lhs_quads
        .remainder()
        .chunks_exact(cols)
        .zip(out_quads.into_remainder().chunks_exact_mut(n))
    {
        matmul_one_row(a_row, rhs, n, out_row, 0);
    }
}

/// The `Lanes8` matvec loop behind [`crate::Matrix::matmul`] when the
/// right-hand side is a single column (the attention-score projections
/// `hw · a`): four output rows are accumulated as interleaved
/// independent chains, so one row's serial float-add latency overlaps
/// the other three. Each row still accumulates its products in
/// ascending `k` order with the same zero skip as the scalar matvec
/// loop, so the result is bit-identical to it.
///
/// # Panics
/// Panics if the slice lengths are inconsistent with `cols`.
pub(crate) fn matvec_lanes8(lhs: &[f32], cols: usize, rhs: &[f32], out: &mut [f32]) {
    if cols == 0 {
        return;
    }
    assert_eq!(rhs.len(), cols, "rhs must be one column of length cols");
    assert_eq!(lhs.len(), out.len() * cols, "lhs/out shape mismatch");
    let mut rows = lhs.chunks_exact(4 * cols);
    let mut outs = out.chunks_exact_mut(4);
    for (quad, oc) in rows.by_ref().zip(outs.by_ref()) {
        let (r0, rest) = quad.split_at(cols);
        let (r1, rest) = rest.split_at(cols);
        let (r2, r3) = rest.split_at(cols);
        let (mut a0, mut a1, mut a2, mut a3) = (oc[0], oc[1], oc[2], oc[3]);
        for (k, &b) in rhs.iter().enumerate() {
            if r0[k] != 0.0 {
                a0 += r0[k] * b;
            }
            if r1[k] != 0.0 {
                a1 += r1[k] * b;
            }
            if r2[k] != 0.0 {
                a2 += r2[k] * b;
            }
            if r3[k] != 0.0 {
                a3 += r3[k] * b;
            }
        }
        oc[0] = a0;
        oc[1] = a1;
        oc[2] = a2;
        oc[3] = a3;
    }
    for (row, o) in rows.remainder().chunks_exact(cols).zip(outs.into_remainder()) {
        let mut acc = *o;
        for (&a, &b) in row.iter().zip(rhs) {
            if a != 0.0 {
                acc += a * b;
            }
        }
        *o = acc;
    }
}

/// The `Lanes8` fused attention-aggregation loop behind
/// [`crate::InferCtx::scatter_weighted_rows`]: for each edge `e` in
/// ascending order, `out[dst[e]] += weights[e] · a[src[e]]` (rows of
/// width `cols`). Each edge is exactly one axpy row update, so the
/// result is bit-identical to the scalar kernel's loop; hoisting the
/// whole loop here gives it one AVX2 dispatch per call instead of one
/// per edge.
///
/// # Panics
/// Panics if an index is out of range or the lengths are inconsistent.
pub(crate) fn scatter_axpy_lanes8(
    out: &mut [f32],
    cols: usize,
    a: &[f32],
    weights: &[f32],
    src: &[usize],
    dst: &[usize],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: `avx2()` confirmed the CPU supports AVX2.
        return unsafe { scatter_axpy_lanes8_avx2(out, cols, a, weights, src, dst) };
    }
    scatter_axpy_kernel(out, cols, a, weights, src, dst)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn scatter_axpy_lanes8_avx2(
    out: &mut [f32],
    cols: usize,
    a: &[f32],
    weights: &[f32],
    src: &[usize],
    dst: &[usize],
) {
    scatter_axpy_kernel(out, cols, a, weights, src, dst);
}

#[inline(always)]
fn scatter_axpy_kernel(
    out: &mut [f32],
    cols: usize,
    a: &[f32],
    weights: &[f32],
    src: &[usize],
    dst: &[usize],
) {
    for ((&w, &s), &d) in weights.iter().zip(src).zip(dst) {
        let row = &a[s * cols..(s + 1) * cols];
        let o = &mut out[d * cols..(d + 1) * cols];
        axpy_lanes8_body(o, w, row);
    }
}

/// Fused-order dot product: 8 parallel accumulators plus a scalar tail,
/// folded pairwise. Reassociates the sum relative to the sequential
/// reference (tolerance contract, see the module docs). Unlike
/// [`crate::Matrix::matmul_transposed`] there is no zero-skip, so a
/// non-finite element always propagates.
///
/// # Panics
/// Panics unless `a.len() == b.len()`.
#[inline]
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match kind() {
        SimdKind::Scalar => dot_scalar(a, b),
        SimdKind::Lanes8 => dot_lanes8(a, b),
    }
}

#[inline]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

#[inline]
fn dot_lanes8(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (x, y) in ac.by_ref().zip(bc.by_ref()) {
        for j in 0..LANES {
            lanes[j] += x[j] * y[j];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    // Fixed pairwise fold so the result is deterministic per build.
    let l0 = (lanes[0] + lanes[4]) + (lanes[2] + lanes[6]);
    let l1 = (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]);
    (l0 + l1) + tail
}

/// Maximum of the unmasked lanes (masked lanes contribute
/// `f32::NEG_INFINITY`). `max` over non-NaN floats is associative and
/// commutative, so the lane-parallel reduction is bit-exact to the
/// sequential masked scan.
///
/// # Panics
/// Panics unless `xs.len() == mask.len()`.
#[inline]
#[must_use]
pub fn max_masked(xs: &[f32], mask: &[bool]) -> f32 {
    assert_eq!(xs.len(), mask.len(), "max_masked length mismatch");
    match kind() {
        SimdKind::Scalar => {
            let mut m = f32::NEG_INFINITY;
            for (&v, &keep) in xs.iter().zip(mask) {
                if keep {
                    m = m.max(v);
                }
            }
            m
        }
        SimdKind::Lanes8 => {
            let mut lanes = [f32::NEG_INFINITY; LANES];
            let mut xc = xs.chunks_exact(LANES);
            let mut mc = mask.chunks_exact(LANES);
            for (x, keep) in xc.by_ref().zip(mc.by_ref()) {
                for j in 0..LANES {
                    lanes[j] = lanes[j].max(if keep[j] { x[j] } else { f32::NEG_INFINITY });
                }
            }
            let mut m = lanes.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            for (&v, &keep) in xc.remainder().iter().zip(mc.remainder()) {
                if keep {
                    m = m.max(v);
                }
            }
            m
        }
    }
}

/// Fused-order `Σ exp(x − shift)` over the unmasked lanes: 8 parallel
/// accumulators folded pairwise (tolerance contract — the softmax
/// normalizer of the K>1 batched forward runs through this).
///
/// # Panics
/// Panics unless `xs.len() == mask.len()`.
#[inline]
#[must_use]
pub fn sum_exp_masked(xs: &[f32], mask: &[bool], shift: f32) -> f32 {
    assert_eq!(xs.len(), mask.len(), "sum_exp_masked length mismatch");
    match kind() {
        SimdKind::Scalar => {
            let mut sum = 0.0f32;
            for (&v, &keep) in xs.iter().zip(mask) {
                if keep {
                    sum += (v - shift).exp();
                }
            }
            sum
        }
        SimdKind::Lanes8 => {
            let mut lanes = [0.0f32; LANES];
            let mut xc = xs.chunks_exact(LANES);
            let mut mc = mask.chunks_exact(LANES);
            for (x, keep) in xc.by_ref().zip(mc.by_ref()) {
                for j in 0..LANES {
                    lanes[j] += if keep[j] { (x[j] - shift).exp() } else { 0.0 };
                }
            }
            let mut tail = 0.0f32;
            for (&v, &keep) in xc.remainder().iter().zip(mc.remainder()) {
                if keep {
                    tail += (v - shift).exp();
                }
            }
            let l0 = (lanes[0] + lanes[4]) + (lanes[2] + lanes[6]);
            let l1 = (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]);
            (l0 + l1) + tail
        }
    }
}

/// Hyperbolic tangent of one value under the selected kernel kind.
///
/// Under [`SimdKind::Scalar`] this is exactly [`f32::tanh`] (libm).
/// Under [`SimdKind::Lanes8`] it is a polynomial approximation (see
/// [`tanh_map`]) within `1e-5` absolute of libm — in practice ~1e-6.
/// Either way the function is **elementwise-deterministic**: the output
/// depends only on the input bits and the active kind, never on
/// position, slice length, or batch composition, so every forward path
/// (tape, tape-free, batched) that routes through it stays mutually
/// bit-identical.
#[inline]
#[must_use]
pub fn tanh1(x: f32) -> f32 {
    match kind() {
        SimdKind::Scalar => x.tanh(),
        SimdKind::Lanes8 => tanh_fast(x),
    }
}

/// In-place elementwise tanh over a slice.
///
/// The libm `tanhf` call is the single most expensive instruction
/// stream in the inference hot path (~11 ns/element, ~2.8k elements per
/// forward on conv3/HReA — more than the matmuls). The `Lanes8` kernel
/// replaces it with a branch-free `exp2`-based polynomial that LLVM
/// auto-vectorizes: `tanh(|x|) = 1 − 2/(e^{2|x|} + 1)` with
/// `e^{2|x|} = 2^k · p(f)`, `p` a degree-6 Taylor/Horner evaluation of
/// `2^f` on `|f| ≤ 0.5`. Absolute error vs libm is ≤ 1e-5 (contract;
/// measured ~1e-6); NaN propagates; ±0 and saturation signs match libm.
#[inline]
pub fn tanh_map(xs: &mut [f32]) {
    match kind() {
        SimdKind::Scalar => {
            for v in xs {
                *v = v.tanh();
            }
        }
        SimdKind::Lanes8 => {
            #[cfg(target_arch = "x86_64")]
            if avx2() {
                // SAFETY: `avx2()` confirmed the CPU supports AVX2.
                return unsafe { tanh_fast_map_avx2(xs) };
            }
            tanh_fast_map_body(xs)
        }
    }
}

#[inline(always)]
fn tanh_fast_map_body(xs: &mut [f32]) {
    for v in xs {
        *v = tanh_fast(*v);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn tanh_fast_map_avx2(xs: &mut [f32]) {
    tanh_fast_map_body(xs);
}

/// Branch-free polynomial tanh (the `Lanes8` kernel of [`tanh_map`]).
#[inline]
fn tanh_fast(x: f32) -> f32 {
    // t = 2|x|·log2(e), so e^{2|x|} = 2^t. Saturation: tanh rounds to
    // ±1.0 in f32 for |x| ≥ ~9, i.e. t ≥ ~26; capping k keeps the
    // exponent construction in range for any finite input while inf
    // and NaN still propagate through `f`.
    const TWO_LOG2_E: f32 = 2.0 * std::f32::consts::LOG2_E;
    let t = x.abs() * TWO_LOG2_E;
    // Nearest integer via add-and-truncate (t ≥ 0 here, and `min`
    // clamps NaN/huge inputs to 64 — NaN still propagates through `f`
    // below). `round()` would be a libm call at the SSE2 baseline and
    // block vectorization of this loop.
    let k = (t.min(64.0) + 0.5) as i32;
    let f = t - k as f32;
    // 2^f ≈ Σ ln2^i f^i / i! for |f| ≤ 0.5 (Horner, degree 6).
    const C1: f32 = std::f32::consts::LN_2;
    const C2: f32 = 0.240_226_5;
    const C3: f32 = 0.055_504_11;
    const C4: f32 = 0.009_618_13;
    const C5: f32 = 0.001_333_55;
    const C6: f32 = 0.000_154_04;
    let p = 1.0 + f * (C1 + f * (C2 + f * (C3 + f * (C4 + f * (C5 + f * C6)))));
    // 2^k by exponent-bit construction; k ∈ [0, 64] here.
    let scale = f32::from_bits(((127 + k) as u32) << 23);
    let e = p * scale; // e^{2|x|}
    let y = 1.0 - 2.0 / (e + 1.0);
    y.copysign(x)
}

/// In-place elementwise `e^x` over max-shifted softmax inputs
/// (`x ≤ 0`; every segment's maximum maps to exactly `0.0`).
///
/// Elementwise-approximate (module docs): under [`SimdKind::Scalar`]
/// this is the libm `expf` loop, bit-identical to the historical
/// segment-softmax numerator. Under [`SimdKind::Lanes8`] it is the same
/// branch-free `2^k · p(f)` construction as [`tanh_map`], within `1e-5`
/// relative of libm (measured ~1e-7), and LLVM vectorizes the loop —
/// libm `expf` is the dominant cost of `segment_softmax`, the second
/// hottest call in the batched forward after the matmuls.
///
/// Both kernels depend only on the element bits, so the tape and
/// tape-free softmax stay mutually bit-identical per kind. Inputs below
/// `-126·ln 2` (where `e^x` is subnormal) flush toward zero under
/// `Lanes8`; softmax ratios are unaffected because every segment sum
/// includes the shifted maximum's `e^0 = 1`.
///
/// # Panics
/// Debug-panics if an element is positive (callers shift by the
/// segment max first).
#[inline]
pub fn exp_neg_map(xs: &mut [f32]) {
    match kind() {
        SimdKind::Scalar => {
            for v in xs {
                *v = v.exp();
            }
        }
        SimdKind::Lanes8 => {
            #[cfg(target_arch = "x86_64")]
            if avx2() {
                // SAFETY: `avx2()` confirmed the CPU supports AVX2.
                return unsafe { exp_neg_map_avx2(xs) };
            }
            exp_neg_map_body(xs)
        }
    }
}

#[inline(always)]
fn exp_neg_map_body(xs: &mut [f32]) {
    for v in xs {
        debug_assert!(*v <= 0.0 || v.is_nan(), "exp_neg_map input must be max-shifted (≤ 0)");
        *v = exp_fast_neg(*v);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn exp_neg_map_avx2(xs: &mut [f32]) {
    exp_neg_map_body(xs);
}

/// Branch-free polynomial `e^x` for `x ≤ 0` (the `Lanes8` kernel of
/// [`exp_neg_map`]).
#[inline]
fn exp_fast_neg(x: f32) -> f32 {
    // e^x = 2^t with t = x·log2(e) ≤ 0. The clamp keeps the exponent
    // construction in normal range (t < -126 would need a subnormal);
    // true e^x is < 1.2e-38 there, so the clamped value is still zero
    // for every softmax purpose.
    let t = (x * std::f32::consts::LOG2_E).max(-126.0);
    // Nearest integer via subtract-and-truncate: t ≤ 0, so truncation
    // toward zero of `t - 0.5` rounds t to the nearest integer (ties
    // away). `round()` is a libm call at the SSE2 baseline and would
    // block vectorization.
    let k = (t - 0.5) as i32;
    let f = t - k as f32;
    // 2^f ≈ Σ ln2^i f^i / i! for |f| ≤ 0.5 (Horner, degree 6) — same
    // coefficients as `tanh_fast`.
    const C1: f32 = std::f32::consts::LN_2;
    const C2: f32 = 0.240_226_5;
    const C3: f32 = 0.055_504_11;
    const C4: f32 = 0.009_618_13;
    const C5: f32 = 0.001_333_55;
    const C6: f32 = 0.000_154_04;
    let p = 1.0 + f * (C1 + f * (C2 + f * (C3 + f * (C4 + f * (C5 + f * C6)))));
    // 2^k by exponent-bit construction; k ∈ [-126, 0] here.
    let scale = f32::from_bits(((127 + k) as u32) << 23);
    p * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, phase: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32 + phase) * 0.37).sin() * 1.7).collect()
    }

    #[test]
    fn axpy_lanes_is_bit_exact_to_scalar() {
        for n in [0usize, 1, 7, 8, 9, 16, 31, 64] {
            let x = series(n, 0.3);
            let mut a = series(n, 1.1);
            let mut b = a.clone();
            axpy_scalar(&mut a, 0.73, &x);
            axpy_lanes8(&mut b, 0.73, &x);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn matmul_lanes8_is_bit_exact_to_sequential_reference() {
        // Widths crossing the block sizes and the ragged tail, row
        // counts crossing the 4-row tile and its remainder, and zero
        // coefficients sprinkled in to exercise the skip. The reference
        // models the documented rounding contract exactly: ascending-k
        // fused accumulation (`mul_add`) on the leading `n - n % 8`
        // columns, separate multiply-then-add on the ragged tail.
        for (rows, cols, n) in
            [(3usize, 9usize, 16usize), (2, 16, 40), (5, 7, 5), (4, 12, 33), (9, 6, 24)]
        {
            let mut lhs = series(rows * cols, 0.4);
            for v in lhs.iter_mut().step_by(5) {
                *v = 0.0;
            }
            let rhs = series(cols * n, 1.3);
            let fused_cols = n - n % 8;
            let mut seq = vec![0.0f32; rows * n];
            for i in 0..rows {
                for k in 0..cols {
                    let a = lhs[i * cols + k];
                    if a != 0.0 {
                        for j in 0..n {
                            let o = &mut seq[i * n + j];
                            if j < fused_cols {
                                *o = a.mul_add(rhs[k * n + j], *o);
                            } else {
                                *o += a * rhs[k * n + j];
                            }
                        }
                    }
                }
            }
            let mut blocked = vec![0.0f32; rows * n];
            matmul_lanes8(&lhs, cols, &rhs, n, &mut blocked);
            assert_eq!(seq, blocked, "{rows}x{cols}x{n}");
        }
    }

    #[test]
    fn matvec_lanes8_is_bit_exact_to_scalar_loop() {
        // Row counts crossing the 4-row interleave and its remainder,
        // with zero coefficients sprinkled in to exercise the skip.
        for (rows, cols) in [(9usize, 16usize), (4, 7), (3, 12), (8, 1), (2, 0)] {
            let mut lhs = series(rows * cols, 0.7);
            for v in lhs.iter_mut().step_by(5) {
                *v = 0.0;
            }
            let rhs = series(cols, 1.9);
            let mut seq = vec![0.0f32; rows];
            for i in 0..rows {
                let mut acc = 0.0f32;
                for (&a, &b) in lhs[i * cols..(i + 1) * cols].iter().zip(&rhs) {
                    if a != 0.0 {
                        acc += a * b;
                    }
                }
                seq[i] = acc;
            }
            let mut quad = vec![0.0f32; rows];
            matvec_lanes8(&lhs, cols, &rhs, &mut quad);
            if cols == 0 {
                continue; // early return leaves `out` untouched
            }
            assert_eq!(seq, quad, "{rows}x{cols}");
        }
    }

    #[test]
    fn fast_exp_stays_within_contract_of_libm() {
        // Sweep the normal range of the softmax-shifted domain; below
        // -126·ln 2 the kernel flushes toward zero (checked separately
        // in `fast_exp_edge_cases`).
        let mut worst = 0.0f32;
        let mut i = 0i32;
        while i <= 870_000 {
            let x = -(i as f32) * 1e-4; // [-87, 0]
            let e = exp_fast_neg(x);
            let r = x.exp();
            let err = (e - r).abs() / r;
            worst = worst.max(err);
            i += 1;
        }
        assert!(worst <= 1e-5, "max relative |exp_fast_neg - exp| = {worst}");
    }

    #[test]
    fn fast_exp_edge_cases() {
        assert_eq!(exp_fast_neg(0.0), 1.0);
        assert_eq!(exp_fast_neg(-0.0), 1.0);
        assert!(exp_fast_neg(-1000.0) <= f32::MIN_POSITIVE, "deep underflow flushes to ~0");
        assert!(exp_fast_neg(f32::NEG_INFINITY) <= f32::MIN_POSITIVE);
    }

    #[test]
    fn exp_neg_map_is_elementwise() {
        let xs: Vec<f32> = (0..37).map(|i| -((i as f32) * 0.41).fract() * 20.0).collect();
        let mut mapped = xs.clone();
        exp_neg_map(&mut mapped);
        for (m, x) in mapped.iter().zip(&xs) {
            let one = match kind() {
                SimdKind::Scalar => x.exp(),
                SimdKind::Lanes8 => exp_fast_neg(*x),
            };
            assert_eq!(m.to_bits(), one.to_bits());
        }
    }

    #[test]
    fn dot_lanes_matches_scalar_within_tolerance() {
        for n in [0usize, 1, 7, 8, 9, 40, 129] {
            let a = series(n, 0.0);
            let b = series(n, 2.0);
            let fused = dot_lanes8(&a, &b);
            let seq = dot_scalar(&a, &b);
            assert!((fused - seq).abs() <= 1e-5 * (1.0 + seq.abs()), "n={n}: {fused} vs {seq}");
        }
    }

    #[test]
    fn masked_reductions_respect_the_mask() {
        let xs = series(21, 0.5);
        let mask: Vec<bool> = (0..21).map(|i| i % 3 != 0).collect();
        let max = max_masked(&xs, &mask);
        let expect = xs
            .iter()
            .zip(&mask)
            .filter(|&(_, &m)| m)
            .map(|(&v, _)| v)
            .fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(max, expect);
        let sum = sum_exp_masked(&xs, &mask, max);
        let seq: f32 = xs
            .iter()
            .zip(&mask)
            .filter(|&(_, &m)| m)
            .map(|(&v, _)| (v - max).exp())
            .sum();
        assert!((sum - seq).abs() <= 1e-5 * (1.0 + seq.abs()));
    }

    #[test]
    fn kind_is_stable_within_a_process() {
        assert_eq!(kind(), kind());
    }

    #[test]
    fn fast_tanh_stays_within_contract_of_libm() {
        // Dense sweep over the active range plus the saturation zone.
        let mut worst = 0.0f32;
        let mut i = -120_000i32;
        while i <= 120_000 {
            let x = i as f32 * 1e-4; // [-12, 12]
            let err = (tanh_fast(x) - x.tanh()).abs();
            worst = worst.max(err);
            i += 1;
        }
        assert!(worst <= 1e-5, "max |tanh_fast - tanh| = {worst}");
    }

    #[test]
    fn fast_tanh_edge_cases_match_libm() {
        assert_eq!(tanh_fast(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(tanh_fast(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(tanh_fast(f32::INFINITY), 1.0);
        assert_eq!(tanh_fast(f32::NEG_INFINITY), -1.0);
        assert_eq!(tanh_fast(40.0), 1.0);
        assert_eq!(tanh_fast(-40.0), -1.0);
        assert_eq!(tanh_fast(1.0e30), 1.0);
        assert!(tanh_fast(f32::NAN).is_nan(), "NaN must propagate");
    }

    #[test]
    fn tanh_map_is_elementwise_tanh1() {
        let xs = series(37, 0.9);
        let mut mapped = xs.clone();
        tanh_map(&mut mapped);
        for (&m, &x) in mapped.iter().zip(&xs) {
            assert_eq!(m.to_bits(), tanh1(x).to_bits());
        }
    }
}
