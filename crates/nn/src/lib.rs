//! A minimal, dependency-free neural-network library with reverse-mode
//! automatic differentiation, built for the MapZero compiler.
//!
//! The paper implements its model in PyTorch; the Rust ecosystem offers
//! no comparable GNN stack offline, so this crate provides exactly the
//! pieces MapZero's network (Fig. 5) needs:
//!
//! * dense row-major [`Matrix`] values,
//! * a tape-based autograd [`Graph`] with the graph-neural-network
//!   primitives (gather / scatter-add / per-segment softmax) required by
//!   graph attention layers,
//! * layers: [`Linear`], [`Mlp`] and the multi-head [`GatLayer`] of
//!   Eqs. 5–8,
//! * optimizers: SGD with momentum and Adam, both with gradient
//!   clipping, plus step-decay learning-rate schedules,
//! * deterministic Xavier initialization and a self-describing binary
//!   weight format.
//!
//! All gradients are verified against finite differences in the test
//! suite.
//!
//! # Example
//!
//! ```
//! use mapzero_nn::{Graph, Linear, Matrix, Params, SeedRng};
//!
//! let mut params = Params::new();
//! let mut rng = SeedRng::new(7);
//! let layer = Linear::new(&mut params, 4, 2, &mut rng);
//! let mut g = Graph::new();
//! let x = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
//! let y = layer.forward(&mut g, &params, x);
//! let loss = g.sum_all(y);
//! g.backward(loss, &mut params);
//! assert_eq!(params.grad(layer.weight).rows(), 4);
//! ```

mod graph;
mod init;
mod layers;
mod matrix;
mod optim;
mod serialize;

pub use graph::{Graph, VarId};
pub use init::{RngState, SeedRng};
pub use layers::{GatLayer, GcnLayer, Linear, Mlp};
pub use matrix::Matrix;
pub use optim::{clip_gradients, Adam, AdamState, LrSchedule, Optimizer, Sgd};
pub use serialize::{decode_params, encode_params, load_params, save_params, WeightFormatError};

/// Parameter storage shared across forward passes.
///
/// Parameters live outside the tape; every forward pass copies the
/// current values into graph leaves and `backward` accumulates gradients
/// back here. Call [`Params::zero_grads`] after each optimizer step.
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

/// Handle to one parameter matrix inside [`Params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl Params {
    /// Empty parameter store.
    #[must_use]
    pub fn new() -> Self {
        Params::default()
    }

    /// Register a parameter with an initial value.
    pub fn register(&mut self, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        id
    }

    /// Number of registered parameters (matrices, not scalars).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of a parameter.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers and loaders).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    #[must_use]
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable gradient (used by `Graph::backward` and clipping).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Reset all gradients to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Total number of scalar parameters.
    #[must_use]
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Global L2 norm of all gradients.
    #[must_use]
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>())
            .sum::<f64>()
            .sqrt() as f32
    }
}
