//! A minimal, dependency-free neural-network library with reverse-mode
//! automatic differentiation, built for the MapZero compiler.
//!
//! The paper implements its model in PyTorch; the Rust ecosystem offers
//! no comparable GNN stack offline, so this crate provides exactly the
//! pieces MapZero's network (Fig. 5) needs:
//!
//! * dense row-major [`Matrix`] values,
//! * a tape-based autograd [`Graph`] with the graph-neural-network
//!   primitives (gather / scatter-add / per-segment softmax) required by
//!   graph attention layers,
//! * layers: [`Linear`], [`Mlp`] and the multi-head [`GatLayer`] of
//!   Eqs. 5–8,
//! * optimizers: SGD with momentum and Adam, both with gradient
//!   clipping, plus step-decay learning-rate schedules,
//! * deterministic Xavier initialization and a self-describing binary
//!   weight format.
//!
//! All gradients are verified against finite differences in the test
//! suite.
//!
//! # Example
//!
//! ```
//! use mapzero_nn::{Graph, Linear, Matrix, Params, SeedRng};
//!
//! let mut params = Params::new();
//! let mut rng = SeedRng::new(7);
//! let layer = Linear::new(&mut params, 4, 2, &mut rng);
//! let mut g = Graph::new();
//! let x = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
//! let y = layer.forward(&mut g, &params, x);
//! let loss = g.sum_all(y);
//! g.backward(loss, &mut params);
//! assert_eq!(params.grad(layer.weight).rows(), 4);
//! ```

mod graph;
pub mod infer;
mod init;
mod layers;
mod matrix;
mod optim;
mod serialize;
pub mod simd;

pub use graph::{Graph, VarId};
pub use infer::{BufId, InferCtx, MessageIndex};
pub use init::{RngState, SeedRng};
pub use layers::{GatLayer, GcnLayer, Linear, Mlp};
pub use matrix::Matrix;
pub use optim::{clip_gradients, Adam, AdamState, LrSchedule, Optimizer, Sgd};
pub use serialize::{decode_params, encode_params, load_params, save_params, WeightFormatError};

/// The value masked-out logits are pinned to (also used by the
/// inference path's masked log-softmax, which must stay bit-identical
/// to the tape op).
pub(crate) const NEG_INF: f32 = -1.0e9;

/// Monotone global counter behind [`Params::fingerprint`]. Every
/// registration or mutable-value access draws a fresh tick, so two
/// parameter stores only ever share a fingerprint when one is an
/// unmodified clone of the other (in which case their values are
/// equal by construction).
static PARAMS_VERSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn next_params_version() -> u64 {
    PARAMS_VERSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
}

/// Parameter storage shared across forward passes.
///
/// Parameters live outside the tape; every forward pass copies the
/// current values into graph leaves and `backward` accumulates gradients
/// back here. Call [`Params::zero_grads`] after each optimizer step.
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
    version: u64,
}

/// Handle to one parameter matrix inside [`Params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl Params {
    /// Empty parameter store.
    #[must_use]
    pub fn new() -> Self {
        Params::default()
    }

    /// Register a parameter with an initial value.
    pub fn register(&mut self, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.version = next_params_version();
        id
    }

    /// Number of registered parameters (matrices, not scalars).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of a parameter.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers and loaders).
    ///
    /// Conservatively advances the fingerprint: every handout of a
    /// mutable value counts as a mutation even if the caller ends up
    /// writing the same bytes back.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.version = next_params_version();
        &mut self.values[id.0]
    }

    /// A cheap identity fingerprint of the current parameter values.
    ///
    /// Two equal fingerprints guarantee equal values: the fingerprint
    /// is a globally unique version drawn from a process-wide monotone
    /// counter on every registration or [`Params::value_mut`] call, so
    /// the only way to observe the same fingerprint twice is an
    /// untouched snapshot (`clone`) of the same store. Prediction
    /// caches key on this to detect weight updates and training
    /// rollbacks without hashing the full parameter tensor.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.version
    }

    /// Accumulated gradient of a parameter.
    #[must_use]
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable gradient (used by `Graph::backward` and clipping).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Reset all gradients to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Total number of scalar parameters.
    #[must_use]
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Global L2 norm of all gradients.
    #[must_use]
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>())
            .sum::<f64>()
            .sqrt() as f32
    }
}

#[cfg(test)]
mod fingerprint_tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_value_mutations_not_grads() {
        let mut params = Params::new();
        let id = params.register(Matrix::zeros(2, 2));
        let registered = params.fingerprint();
        assert_ne!(registered, 0, "registration draws a version");

        let snapshot = params.clone();
        assert_eq!(snapshot.fingerprint(), registered, "clones share identity");

        params.grad_mut(id).fill(1.0);
        params.zero_grads();
        assert_eq!(params.fingerprint(), registered, "gradients are not identity");

        params.value_mut(id).fill(3.0);
        assert_ne!(params.fingerprint(), registered, "value writes advance it");
        assert_ne!(params.fingerprint(), snapshot.fingerprint());
    }

    #[test]
    fn distinct_stores_never_share_fingerprints() {
        let mut a = Params::new();
        let mut b = Params::new();
        a.register(Matrix::zeros(1, 1));
        b.register(Matrix::zeros(1, 1));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
