//! A small self-describing binary format for parameter checkpoints.
//!
//! Layout (little-endian): magic `MZW1`, u32 matrix count, then per
//! matrix u32 rows, u32 cols, and `rows*cols` f32 values.

use crate::Params;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MZW1";

/// Errors from checkpoint loading.
#[derive(Debug)]
pub enum WeightFormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Truncated or oversized payload.
    Truncated,
    /// Checkpoint shape does not match the parameter store.
    ShapeMismatch { index: usize },
}

impl fmt::Display for WeightFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightFormatError::Io(e) => write!(f, "i/o error: {e}"),
            WeightFormatError::BadMagic => write!(f, "not a MapZero weight file"),
            WeightFormatError::Truncated => write!(f, "weight file truncated"),
            WeightFormatError::ShapeMismatch { index } => {
                write!(f, "parameter {index} has mismatched shape")
            }
        }
    }
}

impl std::error::Error for WeightFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WeightFormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WeightFormatError {
    fn from(e: io::Error) -> Self {
        WeightFormatError::Io(e)
    }
}

/// Serialize all parameters into bytes.
#[must_use]
pub fn encode_params(params: &Params) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for id in params.ids() {
        let m = params.value(id);
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        for &v in m.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restore parameter values from bytes; the store must already contain
/// parameters of exactly the recorded shapes (create the network first,
/// then load).
///
/// # Errors
/// Returns a [`WeightFormatError`] on malformed input or shape mismatch.
pub fn decode_params(params: &mut Params, mut bytes: Bytes) -> Result<(), WeightFormatError> {
    if bytes.remaining() < 8 {
        return Err(WeightFormatError::Truncated);
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WeightFormatError::BadMagic);
    }
    let count = bytes.get_u32_le() as usize;
    if count != params.len() {
        return Err(WeightFormatError::ShapeMismatch { index: 0 });
    }
    for (index, id) in params.ids().collect::<Vec<_>>().into_iter().enumerate() {
        if bytes.remaining() < 8 {
            return Err(WeightFormatError::Truncated);
        }
        let rows = bytes.get_u32_le() as usize;
        let cols = bytes.get_u32_le() as usize;
        {
            let m = params.value(id);
            if (m.rows(), m.cols()) != (rows, cols) {
                return Err(WeightFormatError::ShapeMismatch { index });
            }
        }
        if bytes.remaining() < rows * cols * 4 {
            return Err(WeightFormatError::Truncated);
        }
        let target = params.value_mut(id);
        for v in target.data_mut() {
            *v = bytes.get_f32_le();
        }
    }
    Ok(())
}

/// Save parameters to a file.
///
/// # Errors
/// Returns any I/O error from writing.
pub fn save_params(params: &Params, path: impl AsRef<Path>) -> Result<(), WeightFormatError> {
    fs::write(path, encode_params(params))?;
    Ok(())
}

/// Load parameters from a file into an existing store.
///
/// # Errors
/// Returns [`WeightFormatError`] on I/O failure or format mismatch.
pub fn load_params(params: &mut Params, path: impl AsRef<Path>) -> Result<(), WeightFormatError> {
    let data = fs::read(path)?;
    decode_params(params, Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, SeedRng};

    fn sample_params() -> Params {
        let mut p = Params::new();
        let mut rng = SeedRng::new(17);
        p.register(rng.xavier(3, 4));
        p.register(rng.uniform(1, 4, 0.5));
        p
    }

    #[test]
    fn round_trip_in_memory() {
        let src = sample_params();
        let bytes = encode_params(&src);
        let mut dst = sample_params();
        // Perturb dst so the copy is observable.
        dst.value_mut(dst.ids().next().unwrap()).fill(9.0);
        decode_params(&mut dst, bytes).unwrap();
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn round_trip_on_disk() {
        let src = sample_params();
        let dir = std::env::temp_dir().join("mapzero_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.mzw");
        save_params(&src, &path).unwrap();
        let mut dst = sample_params();
        load_params(&mut dst, &path).unwrap();
        assert_eq!(src.value(src.ids().next().unwrap()), dst.value(dst.ids().next().unwrap()));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut dst = sample_params();
        let err = decode_params(&mut dst, Bytes::from_static(b"NOPE\0\0\0\0")).unwrap_err();
        assert!(matches!(err, WeightFormatError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let src = sample_params();
        let bytes = encode_params(&src);
        let cut = bytes.slice(0..bytes.len() - 5);
        let mut dst = sample_params();
        assert!(matches!(
            decode_params(&mut dst, cut),
            Err(WeightFormatError::Truncated)
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let src = sample_params();
        let bytes = encode_params(&src);
        let mut dst = Params::new();
        dst.register(Matrix::zeros(2, 2));
        assert!(matches!(
            decode_params(&mut dst, bytes),
            Err(WeightFormatError::ShapeMismatch { .. })
        ));
    }
}
