//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation of a forward pass; calling
//! [`Graph::backward`] walks the tape in reverse, accumulating gradients
//! into the tape and finally into the [`Params`] store for parameter
//! leaves. Build a fresh graph per forward pass.

use crate::{Matrix, ParamId, Params};

/// Handle to one value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

enum Op {
    /// Constant input; no gradient flows out.
    Input,
    /// Leaf bound to a parameter; gradients accumulate into `Params`.
    Param(ParamId),
    MatMul(VarId, VarId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    /// Broadcast a 1×c bias over every row of x.
    AddBias(VarId, VarId),
    /// Broadcast an r×1 column over every column of x (elementwise).
    ColMul(VarId, VarId),
    Scale(VarId, f32),
    LeakyRelu(VarId, f32),
    Relu(VarId),
    Tanh(VarId),
    ConcatCols(VarId, VarId),
    /// out[i] = a[idx[i]].
    GatherRows(VarId, Vec<usize>),
    /// out[r] = Σ_{i: idx[i]==r} a[i]; `rows` rows in the output.
    ScatterAddRows(VarId, Vec<usize>),
    /// Softmax over rows of an E×1 column grouped by segment id.
    SegmentSoftmax(VarId, Vec<usize>),
    MeanRows(VarId),
    SumAll(VarId),
    /// Log-softmax over a single row with a boolean mask; masked
    /// entries output a large negative constant and receive no gradient.
    LogSoftmaxMasked(VarId, Vec<bool>),
}

struct TapeNode {
    op: Op,
    value: Matrix,
    grad: Matrix,
}

/// The autograd tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<TapeNode>,
}

/// Large negative stand-in for −∞ inside masked softmax.
use crate::NEG_INF;

impl Graph {
    /// Empty tape.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    fn push(&mut self, op: Op, value: Matrix) -> VarId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.nodes.push(TapeNode { op, value, grad });
        VarId(self.nodes.len() - 1)
    }

    /// Value of a variable.
    #[must_use]
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Gradient of a variable (valid after [`Graph::backward`]).
    #[must_use]
    pub fn grad(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].grad
    }

    /// Number of tape entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a constant input.
    pub fn input(&mut self, value: Matrix) -> VarId {
        self.push(Op::Input, value)
    }

    /// Add a leaf bound to a parameter (copies the current value).
    pub fn param(&mut self, params: &Params, id: ParamId) -> VarId {
        self.push(Op::Param(id), params.value(id).clone())
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Element-wise sum (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.value(a).clone();
        v.add_assign(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// Element-wise difference (same shape).
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let va = self.value(a);
        let vb = self.value(b);
        assert_eq!((va.rows(), va.cols()), (vb.rows(), vb.cols()), "shape mismatch");
        let data: Vec<f32> = va.data().iter().zip(vb.data()).map(|(x, y)| x - y).collect();
        let v = Matrix::from_vec(va.rows(), va.cols(), data);
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise product (same shape). `mul(x, x)` squares with the
    /// correct doubled gradient.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let va = self.value(a);
        let vb = self.value(b);
        assert_eq!((va.rows(), va.cols()), (vb.rows(), vb.cols()), "shape mismatch");
        let data: Vec<f32> = va.data().iter().zip(vb.data()).map(|(x, y)| x * y).collect();
        let v = Matrix::from_vec(va.rows(), va.cols(), data);
        self.push(Op::Mul(a, b), v)
    }

    /// Broadcast-add a 1×c bias to every row of an r×c matrix.
    pub fn add_bias(&mut self, x: VarId, bias: VarId) -> VarId {
        let vx = self.value(x);
        let vb = self.value(bias);
        assert_eq!(vb.rows(), 1, "bias must be a row vector");
        assert_eq!(vb.cols(), vx.cols(), "bias width mismatch");
        let mut v = vx.clone();
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                v[(r, c)] += vb[(0, c)];
            }
        }
        self.push(Op::AddBias(x, bias), v)
    }

    /// Multiply every row of `x` (r×c) by the matching entry of the
    /// column vector `col` (r×1).
    pub fn col_mul(&mut self, col: VarId, x: VarId) -> VarId {
        let vc = self.value(col);
        let vx = self.value(x);
        assert_eq!(vc.cols(), 1, "col must be a column vector");
        assert_eq!(vc.rows(), vx.rows(), "column length mismatch");
        let mut v = vx.clone();
        for r in 0..v.rows() {
            let k = vc[(r, 0)];
            for c in 0..v.cols() {
                v[(r, c)] *= k;
            }
        }
        self.push(Op::ColMul(col, x), v)
    }

    /// Scale by a constant.
    pub fn scale(&mut self, a: VarId, k: f32) -> VarId {
        let v = self.value(a).map(|x| x * k);
        self.push(Op::Scale(a, k), v)
    }

    /// Leaky ReLU with the given negative slope (Eq. 7).
    pub fn leaky_relu(&mut self, a: VarId, slope: f32) -> VarId {
        let v = self.value(a).map(|x| if x >= 0.0 { x } else { slope * x });
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// ReLU.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Hyperbolic tangent (kernel-dispatched so the tape and tape-free
    /// forwards stay bit-identical under either SIMD kind).
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let mut v = self.value(a).clone();
        crate::simd::tanh_map(v.data_mut());
        self.push(Op::Tanh(a), v)
    }

    /// Concatenate along columns (same row count).
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let va = self.value(a);
        let vb = self.value(b);
        assert_eq!(va.rows(), vb.rows(), "row count mismatch");
        let rows = va.rows();
        let cols = va.cols() + vb.cols();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            data.extend_from_slice(va.row_slice(r));
            data.extend_from_slice(vb.row_slice(r));
        }
        let v = Matrix::from_vec(rows, cols, data);
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Gather rows: `out[i] = a[idx[i]]`.
    ///
    /// # Panics
    /// Panics if any index is out of range or `idx` is empty.
    pub fn gather_rows(&mut self, a: VarId, idx: &[usize]) -> VarId {
        let va = self.value(a);
        assert!(!idx.is_empty(), "gather needs at least one index");
        let cols = va.cols();
        let mut data = Vec::with_capacity(idx.len() * cols);
        for &i in idx {
            assert!(i < va.rows(), "gather index {i} out of range");
            data.extend_from_slice(va.row_slice(i));
        }
        let v = Matrix::from_vec(idx.len(), cols, data);
        self.push(Op::GatherRows(a, idx.to_vec()), v)
    }

    /// Scatter-add rows: `out[r] = Σ_{i: idx[i]==r} a[i]` with `rows`
    /// output rows.
    ///
    /// # Panics
    /// Panics if `idx.len() != a.rows()` or any index ≥ `rows`.
    pub fn scatter_add_rows(&mut self, a: VarId, idx: &[usize], rows: usize) -> VarId {
        let va = self.value(a);
        assert_eq!(idx.len(), va.rows(), "one target per input row");
        let mut v = Matrix::zeros(rows, va.cols());
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < rows, "scatter index {r} out of range");
            for c in 0..va.cols() {
                v[(r, c)] += va[(i, c)];
            }
        }
        self.push(Op::ScatterAddRows(a, idx.to_vec()), v)
    }

    /// Per-segment softmax over an E×1 column (Eq. 6): rows sharing a
    /// segment id are normalized together.
    ///
    /// # Panics
    /// Panics if `a` is not a column or `seg.len() != a.rows()`.
    pub fn segment_softmax(&mut self, a: VarId, seg: &[usize]) -> VarId {
        let va = self.value(a);
        assert_eq!(va.cols(), 1, "segment softmax expects a column");
        assert_eq!(seg.len(), va.rows(), "one segment id per row");
        let nseg = seg.iter().copied().max().map_or(0, |m| m + 1);
        let mut max = vec![f32::NEG_INFINITY; nseg];
        for (i, &s) in seg.iter().enumerate() {
            max[s] = max[s].max(va[(i, 0)]);
        }
        let mut sum = vec![0.0f32; nseg];
        let mut exps: Vec<f32> =
            seg.iter().enumerate().map(|(i, &s)| va[(i, 0)] - max[s]).collect();
        // Same dispatched exp kernel as `InferCtx::segment_softmax`, so
        // tape and tape-free softmax stay bit-identical per kind.
        crate::simd::exp_neg_map(&mut exps);
        for (&e, &s) in exps.iter().zip(seg) {
            sum[s] += e;
        }
        let data: Vec<f32> =
            exps.iter().zip(seg).map(|(&e, &s)| e / sum[s].max(f32::MIN_POSITIVE)).collect();
        let v = Matrix::from_vec(seg.len(), 1, data);
        self.push(Op::SegmentSoftmax(a, seg.to_vec()), v)
    }

    /// Mean over rows: (r×c) → (1×c).
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let va = self.value(a);
        let n = va.rows() as f32;
        let mut v = Matrix::zeros(1, va.cols());
        for r in 0..va.rows() {
            for c in 0..va.cols() {
                v[(0, c)] += va[(r, c)] / n;
            }
        }
        self.push(Op::MeanRows(a), v)
    }

    /// Sum of all entries → 1×1.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let s: f32 = self.value(a).data().iter().sum();
        self.push(Op::SumAll(a), Matrix::scalar(s))
    }

    /// Log-softmax over a single row with masking: entries where
    /// `mask[i]` is false are excluded from the normalization and output
    /// a large negative value.
    ///
    /// # Panics
    /// Panics unless `a` is a row vector of the mask's length with at
    /// least one unmasked entry.
    pub fn log_softmax_masked(&mut self, a: VarId, mask: &[bool]) -> VarId {
        let va = self.value(a);
        assert_eq!(va.rows(), 1, "expects a row vector");
        assert_eq!(mask.len(), va.cols(), "one mask bit per logit");
        assert!(mask.iter().any(|&m| m), "at least one action must be legal");
        let mut max = f32::NEG_INFINITY;
        for (i, &m) in mask.iter().enumerate() {
            if m {
                max = max.max(va[(0, i)]);
            }
        }
        let mut sum = 0.0f32;
        for (i, &m) in mask.iter().enumerate() {
            if m {
                sum += (va[(0, i)] - max).exp();
            }
        }
        let lse = max + sum.ln();
        let data: Vec<f32> = (0..mask.len())
            .map(|i| if mask[i] { va[(0, i)] - lse } else { NEG_INF })
            .collect();
        let v = Matrix::from_vec(1, mask.len(), data);
        self.push(Op::LogSoftmaxMasked(a, mask.to_vec()), v)
    }

    /// Run the backward pass from a scalar loss, accumulating parameter
    /// gradients into `params`.
    ///
    /// # Panics
    /// Panics if `loss` is not 1×1.
    pub fn backward(&mut self, loss: VarId, params: &mut Params) {
        {
            let node = &mut self.nodes[loss.0];
            assert_eq!(
                (node.value.rows(), node.value.cols()),
                (1, 1),
                "loss must be a scalar"
            );
            node.grad.fill(1.0);
        }
        for i in (0..=loss.0).rev() {
            // Take the gradient out to satisfy the borrow checker.
            let grad = std::mem::replace(
                &mut self.nodes[i].grad,
                Matrix::zeros(1, 1),
            );
            self.backprop_node(i, &grad, params);
            self.nodes[i].grad = grad;
        }
    }

    fn add_grad(&mut self, id: VarId, delta: &Matrix) {
        self.nodes[id.0].grad.add_assign(delta);
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&mut self, i: usize, g: &Matrix, params: &mut Params) {
        // Input deltas are computed against shared borrows of the tape
        // values and applied afterwards via `Todo`, so no forward value
        // is ever cloned here.
        enum Todo {
            None,
            One(VarId, Matrix),
            Two(VarId, Matrix, VarId, Matrix),
        }
        let todo = match &self.nodes[i].op {
            Op::Input => Todo::None,
            Op::Param(pid) => {
                params.grad_mut(*pid).add_assign(g);
                Todo::None
            }
            Op::MatMul(a, b) => {
                // Transpose-aware products: no materialized transpose
                // and no defensive clones of the forward values. The
                // backward pass is tolerance-governed (gradients are
                // checked against finite differences, not bitwise), so
                // the fused-order row-dot kernel is safe here.
                let va = &self.nodes[a.0].value;
                let vb = &self.nodes[b.0].value;
                let da = g.matmul_transposed_fast(vb);
                let db = va.transpose_matmul(g);
                Todo::Two(*a, da, *b, db)
            }
            Op::Add(a, b) => Todo::Two(*a, g.clone(), *b, g.clone()),
            Op::Sub(a, b) => {
                let mut neg = g.clone();
                neg.scale_assign(-1.0);
                Todo::Two(*a, g.clone(), *b, neg)
            }
            Op::Mul(a, b) => {
                let va = &self.nodes[a.0].value;
                let vb = &self.nodes[b.0].value;
                let da = Matrix::from_vec(
                    g.rows(),
                    g.cols(),
                    g.data().iter().zip(vb.data()).map(|(x, y)| x * y).collect(),
                );
                let db = Matrix::from_vec(
                    g.rows(),
                    g.cols(),
                    g.data().iter().zip(va.data()).map(|(x, y)| x * y).collect(),
                );
                Todo::Two(*a, da, *b, db)
            }
            Op::AddBias(x, bias) => {
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        db[(0, c)] += g[(r, c)];
                    }
                }
                Todo::Two(*x, g.clone(), *bias, db)
            }
            Op::ColMul(col, x) => {
                let vc = &self.nodes[col.0].value;
                let vx = &self.nodes[x.0].value;
                let mut dcol = Matrix::zeros(vc.rows(), 1);
                let mut dx = Matrix::zeros(vx.rows(), vx.cols());
                for r in 0..vx.rows() {
                    let k = vc[(r, 0)];
                    for c in 0..vx.cols() {
                        dcol[(r, 0)] += vx[(r, c)] * g[(r, c)];
                        dx[(r, c)] = k * g[(r, c)];
                    }
                }
                Todo::Two(*col, dcol, *x, dx)
            }
            Op::Scale(a, k) => {
                let mut da = g.clone();
                da.scale_assign(*k);
                Todo::One(*a, da)
            }
            Op::LeakyRelu(a, slope) => {
                let va = &self.nodes[a.0].value;
                let data: Vec<f32> = va
                    .data()
                    .iter()
                    .zip(g.data())
                    .map(|(&x, &gd)| if x >= 0.0 { gd } else { slope * gd })
                    .collect();
                Todo::One(*a, Matrix::from_vec(g.rows(), g.cols(), data))
            }
            Op::Relu(a) => {
                let va = &self.nodes[a.0].value;
                let data: Vec<f32> = va
                    .data()
                    .iter()
                    .zip(g.data())
                    .map(|(&x, &gd)| if x > 0.0 { gd } else { 0.0 })
                    .collect();
                Todo::One(*a, Matrix::from_vec(g.rows(), g.cols(), data))
            }
            Op::Tanh(a) => {
                let vy = &self.nodes[i].value;
                let data: Vec<f32> = vy
                    .data()
                    .iter()
                    .zip(g.data())
                    .map(|(&y, &gd)| (1.0 - y * y) * gd)
                    .collect();
                Todo::One(*a, Matrix::from_vec(g.rows(), g.cols(), data))
            }
            Op::ConcatCols(a, b) => {
                let ca = self.nodes[a.0].value.cols();
                let cb = self.nodes[b.0].value.cols();
                let rows = g.rows();
                let mut da = Matrix::zeros(rows, ca);
                let mut db = Matrix::zeros(rows, cb);
                for r in 0..rows {
                    for c in 0..ca {
                        da[(r, c)] = g[(r, c)];
                    }
                    for c in 0..cb {
                        db[(r, c)] = g[(r, ca + c)];
                    }
                }
                Todo::Two(*a, da, *b, db)
            }
            Op::GatherRows(a, idx) => {
                let va_rows = self.nodes[a.0].value.rows();
                let mut da = Matrix::zeros(va_rows, g.cols());
                for (r, &src) in idx.iter().enumerate() {
                    for c in 0..g.cols() {
                        da[(src, c)] += g[(r, c)];
                    }
                }
                Todo::One(*a, da)
            }
            Op::ScatterAddRows(a, idx) => {
                let va = &self.nodes[a.0].value;
                let mut da = Matrix::zeros(va.rows(), va.cols());
                for (r, &dst) in idx.iter().enumerate() {
                    for c in 0..va.cols() {
                        da[(r, c)] = g[(dst, c)];
                    }
                }
                Todo::One(*a, da)
            }
            Op::SegmentSoftmax(a, seg) => {
                let vy = &self.nodes[i].value;
                let nseg = seg.iter().copied().max().map_or(0, |m| m + 1);
                let mut dot = vec![0.0f32; nseg];
                for (r, &s) in seg.iter().enumerate() {
                    dot[s] += g[(r, 0)] * vy[(r, 0)];
                }
                let mut da = Matrix::zeros(vy.rows(), 1);
                for (r, &s) in seg.iter().enumerate() {
                    da[(r, 0)] = vy[(r, 0)] * (g[(r, 0)] - dot[s]);
                }
                Todo::One(*a, da)
            }
            Op::MeanRows(a) => {
                let va = &self.nodes[a.0].value;
                let n = va.rows() as f32;
                let mut da = Matrix::zeros(va.rows(), va.cols());
                for r in 0..va.rows() {
                    for c in 0..va.cols() {
                        da[(r, c)] = g[(0, c)] / n;
                    }
                }
                Todo::One(*a, da)
            }
            Op::SumAll(a) => {
                let va = &self.nodes[a.0].value;
                let da = Matrix::filled(va.rows(), va.cols(), g[(0, 0)]);
                Todo::One(*a, da)
            }
            Op::LogSoftmaxMasked(a, mask) => {
                let vy = &self.nodes[i].value;
                let mut gsum = 0.0f32;
                for (c, &m) in mask.iter().enumerate() {
                    if m {
                        gsum += g[(0, c)];
                    }
                }
                let mut da = Matrix::zeros(1, mask.len());
                for (c, &m) in mask.iter().enumerate() {
                    if m {
                        da[(0, c)] = g[(0, c)] - vy[(0, c)].exp() * gsum;
                    }
                }
                Todo::One(*a, da)
            }
        };
        match todo {
            Todo::None => {}
            Todo::One(a, da) => self.add_grad(a, &da),
            Todo::Two(a, da, b, db) => {
                self.add_grad(a, &da);
                self.add_grad(b, &db);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check helper: perturbs each entry of a
    /// parameter and compares the numeric derivative of `f` with the
    /// autograd gradient.
    fn grad_check<F>(init: Matrix, f: F)
    where
        F: Fn(&mut Graph, VarId) -> VarId,
    {
        let mut params = Params::new();
        let pid = params.register(init);
        // Analytic gradient.
        let mut g = Graph::new();
        let x = g.param(&params, pid);
        let loss = f(&mut g, x);
        g.backward(loss, &mut params);
        let analytic = params.grad(pid).clone();
        // Numeric gradient.
        let eps = 1e-3f32;
        let (rows, cols) = (analytic.rows(), analytic.cols());
        let mut numeric = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let eval = |params: &Params| -> f32 {
                    let mut g = Graph::new();
                    let x = g.param(params, pid);
                    let loss = f(&mut g, x);
                    g.value(loss)[(0, 0)]
                };
                let orig = params.value(pid)[(r, c)];
                params.value_mut(pid)[(r, c)] = orig + eps;
                let hi = eval(&params);
                params.value_mut(pid)[(r, c)] = orig - eps;
                let lo = eval(&params);
                params.value_mut(pid)[(r, c)] = orig;
                numeric[(r, c)] = (hi - lo) / (2.0 * eps);
            }
        }
        let diff = analytic.max_abs_diff(&numeric);
        assert!(diff < 2e-2, "gradient mismatch: {diff}\n{analytic:?}\n{numeric:?}");
    }

    fn test_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        let data: Vec<f32> =
            (0..rows * cols).map(|i| ((i as f32 * 0.7).sin()) * scale).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn grad_matmul() {
        grad_check(test_matrix(3, 4, 1.0), |g, x| {
            let w = g.input(test_matrix(4, 2, 0.5));
            let y = g.matmul(x, w);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_matmul_rhs() {
        grad_check(test_matrix(4, 2, 1.0), |g, w| {
            let x = g.input(test_matrix(3, 4, 0.5));
            let y = g.matmul(x, w);
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        });
    }

    #[test]
    fn grad_add_sub_mul() {
        grad_check(test_matrix(2, 3, 1.0), |g, x| {
            let c = g.input(test_matrix(2, 3, 0.3));
            let a = g.add(x, c);
            let s = g.sub(a, x);
            let m = g.mul(a, s);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_square_via_mul_self() {
        grad_check(test_matrix(2, 2, 1.0), |g, x| {
            let y = g.mul(x, x);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_bias_and_colmul() {
        grad_check(test_matrix(1, 3, 1.0), |g, bias| {
            let x = g.input(test_matrix(4, 3, 0.8));
            let y = g.add_bias(x, bias);
            let col = g.input(test_matrix(4, 1, 0.6));
            let z = g.col_mul(col, y);
            g.sum_all(z)
        });
    }

    #[test]
    fn grad_colmul_column() {
        grad_check(test_matrix(4, 1, 1.0), |g, col| {
            let x = g.input(test_matrix(4, 3, 0.8));
            let z = g.col_mul(col, x);
            let z2 = g.mul(z, z);
            g.sum_all(z2)
        });
    }

    #[test]
    fn grad_activations() {
        // Offset away from zero: ReLU/LeakyReLU kinks break the
        // finite-difference comparison exactly at x = 0.
        let mut init = test_matrix(3, 3, 2.0);
        for v in init.data_mut() {
            *v += if *v >= 0.0 { 0.25 } else { -0.25 };
        }
        grad_check(init, |g, x| {
            let a = g.leaky_relu(x, 0.2);
            let b = g.tanh(a);
            let c = g.relu(b);
            g.sum_all(c)
        });
    }

    #[test]
    fn grad_concat_and_scale() {
        grad_check(test_matrix(2, 2, 1.0), |g, x| {
            let y = g.input(test_matrix(2, 3, 0.4));
            let c = g.concat_cols(x, y);
            let s = g.scale(c, 1.7);
            let s2 = g.mul(s, s);
            g.sum_all(s2)
        });
    }

    #[test]
    fn grad_gather_scatter() {
        grad_check(test_matrix(4, 3, 1.0), |g, x| {
            let gth = g.gather_rows(x, &[0, 2, 2, 3, 1]);
            let sc = g.scatter_add_rows(gth, &[1, 0, 1, 2, 2], 3);
            let sq = g.mul(sc, sc);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_segment_softmax() {
        grad_check(test_matrix(6, 1, 1.5), |g, x| {
            let sm = g.segment_softmax(x, &[0, 0, 1, 1, 1, 2]);
            let w = g.input(test_matrix(6, 1, 0.9));
            let y = g.mul(sm, w);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_mean_rows() {
        grad_check(test_matrix(5, 2, 1.0), |g, x| {
            let m = g.mean_rows(x);
            let sq = g.mul(m, m);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_log_softmax_masked() {
        grad_check(test_matrix(1, 5, 1.0), |g, x| {
            let mask = [true, false, true, true, false];
            let lp = g.log_softmax_masked(x, &mask);
            // Weighted NLL over the legal entries.
            let w = g.input(Matrix::row(&[0.5, 0.0, 0.3, 0.2, 0.0]));
            let y = g.mul(lp, w);
            let s = g.sum_all(y);
            g.scale(s, -1.0)
        });
    }

    #[test]
    fn segment_softmax_sums_to_one_per_group() {
        let mut g = Graph::new();
        let x = g.input(test_matrix(5, 1, 2.0));
        let sm = g.segment_softmax(x, &[0, 0, 0, 1, 1]);
        let v = g.value(sm);
        let s0: f32 = (0..3).map(|i| v[(i, 0)]).sum();
        let s1: f32 = (3..5).map(|i| v[(i, 0)]).sum();
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn masked_softmax_is_distribution_over_legal_actions() {
        let mut g = Graph::new();
        let x = g.input(Matrix::row(&[1.0, 5.0, 2.0, 3.0]));
        let mask = [true, false, true, true];
        let lp = g.log_softmax_masked(x, &mask);
        let v = g.value(lp);
        let total: f32 = (0..4).filter(|&i| mask[i]).map(|i| v[(0, i)].exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
        // Masked entry is effectively -inf.
        assert!(v[(0, 1)] < -1e8);
    }

    #[test]
    fn backward_through_shared_subexpression_accumulates() {
        // loss = sum(x + x) => dx = 2.
        let mut params = Params::new();
        let pid = params.register(Matrix::filled(2, 2, 3.0));
        let mut g = Graph::new();
        let x = g.param(&params, pid);
        let y = g.add(x, x);
        let loss = g.sum_all(y);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(pid), &Matrix::filled(2, 2, 2.0));
    }

    #[test]
    #[should_panic(expected = "loss must be a scalar")]
    fn backward_rejects_non_scalar() {
        let mut params = Params::new();
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 2));
        g.backward(x, &mut params);
    }

    #[test]
    #[should_panic(expected = "at least one action must be legal")]
    fn fully_masked_softmax_panics() {
        let mut g = Graph::new();
        let x = g.input(Matrix::row(&[1.0, 2.0]));
        let _ = g.log_softmax_masked(x, &[false, false]);
    }
}
