//! Deterministic weight initialization.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The resumable position of a [`SeedRng`] stream: the seed plus the
/// number of raw draws consumed. Restoring replays the stream to the
/// same position, so a checkpointed training run continues bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RngState {
    /// The seed the stream started from.
    pub seed: u64,
    /// Raw 64-bit draws consumed so far.
    pub draws: u64,
}

/// A seeded RNG wrapper used for all weight initialization, keeping
/// every training run reproducible. Tracks its position in the stream
/// ([`SeedRng::state`]) so checkpoint/resume can replay to the exact
/// same point.
#[derive(Debug, Clone)]
pub struct SeedRng {
    inner: StdRng,
    seed: u64,
    draws: u64,
}

impl SeedRng {
    /// Create from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeedRng { inner: StdRng::seed_from_u64(seed), seed, draws: 0 }
    }

    /// The current stream position, for checkpointing.
    #[must_use]
    pub fn state(&self) -> RngState {
        RngState { seed: self.seed, draws: self.draws }
    }

    /// Rebuild a generator at a previously captured position by
    /// replaying the stream (each sample this wrapper hands out costs
    /// exactly one raw draw, so the replay is a tight `next_u64` loop —
    /// microseconds even for millions of draws).
    #[must_use]
    pub fn from_state(state: RngState) -> Self {
        let mut rng = SeedRng::new(state.seed);
        for _ in 0..state.draws {
            let _ = rng.inner.next_u64();
        }
        rng.draws = state.draws;
        rng
    }

    /// Xavier/Glorot-uniform initialized matrix for a layer with
    /// `fan_in` inputs and `fan_out` outputs.
    #[must_use]
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.draws += (fan_in * fan_out) as u64;
        let data: Vec<f32> =
            (0..fan_in * fan_out).map(|_| self.inner.gen_range(-bound..bound)).collect();
        Matrix::from_vec(fan_in, fan_out, data)
    }

    /// Uniform matrix in `[-bound, bound]`.
    #[must_use]
    pub fn uniform(&mut self, rows: usize, cols: usize, bound: f32) -> Matrix {
        self.draws += (rows * cols) as u64;
        let data: Vec<f32> =
            (0..rows * cols).map(|_| self.inner.gen_range(-bound..bound)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// A uniform f64 in `[0, 1)` (used by stochastic components that
    /// want to share the seed).
    pub fn unit(&mut self) -> f64 {
        self.draws += 1;
        self.inner.gen_range(0.0..1.0)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.draws += 1;
        self.inner.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SeedRng::new(5);
        let mut b = SeedRng::new(5);
        assert_eq!(a.xavier(4, 4), b.xavier(4, 4));
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = SeedRng::new(1);
        let m = rng.xavier(10, 10);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        assert_ne!(a.uniform(3, 3, 1.0), b.uniform(3, 3, 1.0));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SeedRng::new(11);
        let _ = a.xavier(3, 5); // 15 draws
        let _ = a.unit();
        let _ = a.below(100);
        let state = a.state();
        assert_eq!(state, RngState { seed: 11, draws: 17 });

        let mut b = SeedRng::from_state(state);
        assert_eq!(b.state(), state);
        for _ in 0..20 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
            assert_eq!(a.below(7), b.below(7));
        }
        assert_eq!(a.uniform(2, 2, 1.0), b.uniform(2, 2, 1.0));
    }

    #[test]
    fn fresh_state_matches_fresh_rng() {
        let mut a = SeedRng::new(3);
        let mut b = SeedRng::from_state(RngState { seed: 3, draws: 0 });
        assert_eq!(a.unit().to_bits(), b.unit().to_bits());
    }
}
