//! Deterministic weight initialization.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG wrapper used for all weight initialization, keeping
/// every training run reproducible.
#[derive(Debug, Clone)]
pub struct SeedRng {
    inner: StdRng,
}

impl SeedRng {
    /// Create from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeedRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Xavier/Glorot-uniform initialized matrix for a layer with
    /// `fan_in` inputs and `fan_out` outputs.
    #[must_use]
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data: Vec<f32> =
            (0..fan_in * fan_out).map(|_| self.inner.gen_range(-bound..bound)).collect();
        Matrix::from_vec(fan_in, fan_out, data)
    }

    /// Uniform matrix in `[-bound, bound]`.
    #[must_use]
    pub fn uniform(&mut self, rows: usize, cols: usize, bound: f32) -> Matrix {
        let data: Vec<f32> =
            (0..rows * cols).map(|_| self.inner.gen_range(-bound..bound)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// A uniform f64 in `[0, 1)` (used by stochastic components that
    /// want to share the seed).
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SeedRng::new(5);
        let mut b = SeedRng::new(5);
        assert_eq!(a.xavier(4, 4), b.xavier(4, 4));
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = SeedRng::new(1);
        let m = rng.xavier(10, 10);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        assert_ne!(a.uniform(3, 3, 1.0), b.uniform(3, 3, 1.0));
    }
}
