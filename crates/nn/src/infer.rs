//! Tape-free inference: a reusable scratch workspace for forward-only
//! evaluation.
//!
//! [`crate::Graph`] records every op so it can differentiate; at search
//! time MapZero only needs values, yet each `predict` used to pay for a
//! fresh tape (one value *and* one zeroed gradient matrix per op, plus
//! cloned parameter leaves). [`InferCtx`] replaces the tape with a bump
//! arena of [`Matrix`] slots that are reshaped in place and reused
//! across forward passes, so a warmed-up context runs the whole network
//! without touching the allocator.
//!
//! Every op here is **bit-identical** to its tape counterpart: the same
//! accumulation order, the same zero-skips, the same clamping. The
//! proptests in `tests/proptest_hotpath.rs` and the layer equivalence
//! tests below hold the two paths equal, so the Graph forward remains
//! the single source of truth for numerics.
//!
//! Slot handles ([`BufId`]) are only valid until the next
//! [`InferCtx::begin`]; ops that produce a new value always allocate a
//! slot *after* their inputs, which is what lets the arena hand out
//! disjoint borrows without interior mutability.

use crate::{Matrix, NEG_INF};

/// Handle to one scratch matrix inside an [`InferCtx`]. Invalidated by
/// [`InferCtx::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(usize);

/// Bump-arena workspace for tape-free forward passes.
#[derive(Default)]
pub struct InferCtx {
    slots: Vec<Matrix>,
    used: usize,
    seg_max: Vec<f32>,
    seg_sum: Vec<f32>,
    seg_exp: Vec<f32>,
}

impl InferCtx {
    /// Empty workspace.
    #[must_use]
    pub fn new() -> Self {
        InferCtx::default()
    }

    /// Start a new forward pass: previously handed-out [`BufId`]s are
    /// invalidated, slot storage is retained for reuse.
    pub fn begin(&mut self) {
        self.used = 0;
    }

    /// Allocate a zeroed `rows x cols` slot, reusing storage when the
    /// arena already holds a matrix at this position.
    fn alloc(&mut self, rows: usize, cols: usize) -> BufId {
        if self.used == self.slots.len() {
            self.slots.push(Matrix::zeros(rows, cols));
        } else {
            self.slots[self.used].resize_to(rows, cols);
        }
        let id = BufId(self.used);
        self.used += 1;
        id
    }

    /// Copy an external matrix into a fresh slot.
    pub fn load(&mut self, m: &Matrix) -> BufId {
        let id = self.alloc(m.rows(), m.cols());
        self.slots[id.0].copy_from(m);
        id
    }

    /// Read a slot's current value.
    ///
    /// # Panics
    /// Panics on a stale handle (from before the last [`InferCtx::begin`]).
    #[must_use]
    pub fn value(&self, id: BufId) -> &Matrix {
        assert!(id.0 < self.used, "stale BufId");
        &self.slots[id.0]
    }

    /// Disjoint (&mut write, &read) access to two distinct slots.
    fn pair_mut(&mut self, write: BufId, read: BufId) -> (&mut Matrix, &Matrix) {
        assert_ne!(write.0, read.0, "aliasing slot access");
        if write.0 < read.0 {
            let (lo, hi) = self.slots.split_at_mut(read.0);
            (&mut lo[write.0], &hi[0])
        } else {
            let (lo, hi) = self.slots.split_at_mut(write.0);
            (&mut hi[0], &lo[read.0])
        }
    }

    /// `x @ w` into a fresh slot (`w` is an external matrix, typically
    /// a parameter value).
    pub fn matmul(&mut self, x: BufId, w: &Matrix) -> BufId {
        let out = self.alloc(1, 1);
        let (o, xv) = self.pair_mut(out, x);
        xv.matmul_into(w, o);
        out
    }

    /// `a += b` element-wise, in place.
    pub fn add_assign(&mut self, a: BufId, b: BufId) {
        let (av, bv) = self.pair_mut(a, b);
        av.add_assign(bv);
    }

    /// Broadcast-add a `1 x c` bias onto every row of `x`, in place.
    ///
    /// # Panics
    /// Panics unless `bias` is a row vector of `x`'s width.
    pub fn add_bias(&mut self, x: BufId, bias: &Matrix) {
        let xv = &mut self.slots[x.0];
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), xv.cols(), "bias width mismatch");
        let brow = bias.row_slice(0);
        for r in 0..xv.rows() {
            for (v, &b) in xv.row_slice_mut(r).iter_mut().zip(brow) {
                *v += b;
            }
        }
    }

    /// ReLU in place.
    pub fn relu(&mut self, x: BufId) {
        self.slots[x.0].map_assign(|v| v.max(0.0));
    }

    /// tanh in place.
    pub fn tanh(&mut self, x: BufId) {
        self.slots[x.0].map_assign(f32::tanh);
    }

    /// Leaky ReLU in place.
    pub fn leaky_relu(&mut self, x: BufId, slope: f32) {
        self.slots[x.0].map_assign(|v| if v >= 0.0 { v } else { slope * v });
    }

    /// `out[i] = a[idx[i]]` into a fresh slot.
    ///
    /// # Panics
    /// Panics if any index is out of range or `idx` is empty.
    pub fn gather_rows(&mut self, a: BufId, idx: &[usize]) -> BufId {
        assert!(!idx.is_empty(), "gather needs at least one index");
        let cols = self.slots[a.0].cols();
        let out = self.alloc(idx.len(), cols);
        let (o, av) = self.pair_mut(out, a);
        for (r, &i) in idx.iter().enumerate() {
            assert!(i < av.rows(), "gather index {i} out of range");
            o.row_slice_mut(r).copy_from_slice(av.row_slice(i));
        }
        out
    }

    /// `out[r] = Σ_{i: idx[i]==r} a[i]` into a fresh `rows x c` slot.
    ///
    /// # Panics
    /// Panics if `idx.len() != a.rows()` or any index ≥ `rows`.
    pub fn scatter_add_rows(&mut self, a: BufId, idx: &[usize], rows: usize) -> BufId {
        assert_eq!(idx.len(), self.slots[a.0].rows(), "one target per input row");
        let cols = self.slots[a.0].cols();
        let out = self.alloc(rows, cols);
        let (o, av) = self.pair_mut(out, a);
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < rows, "scatter index {r} out of range");
            for (v, &x) in o.row_slice_mut(r).iter_mut().zip(av.row_slice(i)) {
                *v += x;
            }
        }
        out
    }

    /// Per-segment softmax over an `E x 1` column, in place; same
    /// numerics as [`crate::Graph::segment_softmax`].
    ///
    /// # Panics
    /// Panics if `a` is not a column or `seg.len() != a.rows()`.
    pub fn segment_softmax(&mut self, a: BufId, seg: &[usize]) {
        let va = &self.slots[a.0];
        assert_eq!(va.cols(), 1, "segment softmax expects a column");
        assert_eq!(seg.len(), va.rows(), "one segment id per row");
        let nseg = seg.iter().copied().max().map_or(0, |m| m + 1);
        self.seg_max.clear();
        self.seg_max.resize(nseg, f32::NEG_INFINITY);
        for (i, &s) in seg.iter().enumerate() {
            self.seg_max[s] = self.seg_max[s].max(va[(i, 0)]);
        }
        self.seg_sum.clear();
        self.seg_sum.resize(nseg, 0.0);
        self.seg_exp.clear();
        for (i, &s) in seg.iter().enumerate() {
            let e = (va[(i, 0)] - self.seg_max[s]).exp();
            self.seg_exp.push(e);
            self.seg_sum[s] += e;
        }
        let va = &mut self.slots[a.0];
        for (i, &s) in seg.iter().enumerate() {
            va[(i, 0)] = self.seg_exp[i] / self.seg_sum[s].max(f32::MIN_POSITIVE);
        }
    }

    /// Multiply every row of `x` by the matching entry of the `r x 1`
    /// column slot, in place on `x`.
    ///
    /// # Panics
    /// Panics unless `col` is a column of `x`'s height.
    pub fn col_mul(&mut self, col: BufId, x: BufId) {
        let (xv, cv) = self.pair_mut(x, col);
        assert_eq!(cv.cols(), 1, "col must be a column vector");
        assert_eq!(cv.rows(), xv.rows(), "column length mismatch");
        for r in 0..xv.rows() {
            let k = cv[(r, 0)];
            for v in xv.row_slice_mut(r) {
                *v *= k;
            }
        }
    }

    /// Multiply every row of `x` by the matching external scale, in
    /// place (used for GCN degree normalization).
    ///
    /// # Panics
    /// Panics unless `scales.len() == x.rows()`.
    pub fn col_mul_slice(&mut self, x: BufId, scales: &[f32]) {
        let xv = &mut self.slots[x.0];
        assert_eq!(scales.len(), xv.rows(), "column length mismatch");
        for (r, &k) in scales.iter().enumerate() {
            for v in xv.row_slice_mut(r) {
                *v *= k;
            }
        }
    }

    /// Mean over rows into a fresh `1 x c` slot; same accumulation
    /// order as [`crate::Graph::mean_rows`].
    pub fn mean_rows(&mut self, a: BufId) -> BufId {
        let cols = self.slots[a.0].cols();
        let out = self.alloc(1, cols);
        let (o, av) = self.pair_mut(out, a);
        let n = av.rows() as f32;
        for r in 0..av.rows() {
            for (v, &x) in o.row_slice_mut(0).iter_mut().zip(av.row_slice(r)) {
                *v += x / n;
            }
        }
        out
    }

    /// Concatenate two slots along columns into a fresh slot.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn concat_cols(&mut self, a: BufId, b: BufId) -> BufId {
        let (ra, ca) = (self.slots[a.0].rows(), self.slots[a.0].cols());
        let (rb, cb) = (self.slots[b.0].rows(), self.slots[b.0].cols());
        assert_eq!(ra, rb, "row count mismatch");
        let out = self.alloc(ra, ca + cb);
        let (o, av) = self.pair_mut(out, a);
        for r in 0..ra {
            o.row_slice_mut(r)[..ca].copy_from_slice(av.row_slice(r));
        }
        let (o, bv) = self.pair_mut(out, b);
        for r in 0..ra {
            o.row_slice_mut(r)[ca..].copy_from_slice(bv.row_slice(r));
        }
        out
    }
}

/// Masked log-softmax over one row of logits, written into a
/// caller-provided buffer; same numerics (and the same `NEG_INF`
/// stand-in for masked entries) as [`crate::Graph::log_softmax_masked`].
///
/// # Panics
/// Panics unless `logits.len() == mask.len()` with at least one
/// unmasked entry.
pub fn log_softmax_masked_into(logits: &[f32], mask: &[bool], out: &mut Vec<f32>) {
    assert_eq!(mask.len(), logits.len(), "one mask bit per logit");
    assert!(mask.iter().any(|&m| m), "at least one action must be legal");
    let mut max = f32::NEG_INFINITY;
    for (&v, &m) in logits.iter().zip(mask) {
        if m {
            max = max.max(v);
        }
    }
    let mut sum = 0.0f32;
    for (&v, &m) in logits.iter().zip(mask) {
        if m {
            sum += (v - max).exp();
        }
    }
    let lse = max + sum.ln();
    out.clear();
    out.extend(
        logits.iter().zip(mask).map(|(&v, &m)| if m { v - lse } else { NEG_INF }),
    );
}

/// Precomputed message routing for one graph: the `(src, dst)` index
/// columns with self-loops appended — exactly what
/// [`crate::GatLayer::forward`] rebuilds on every tape pass — plus the
/// inverse in-degrees [`crate::GcnLayer`] normalizes by. Rebuilt in
/// place so the per-problem index vectors are allocated once.
#[derive(Debug, Default, Clone)]
pub struct MessageIndex {
    src: Vec<usize>,
    dst: Vec<usize>,
    inv_deg: Vec<f32>,
    n: usize,
}

impl MessageIndex {
    /// Empty index; call [`MessageIndex::rebuild`] before use.
    #[must_use]
    pub fn new() -> Self {
        MessageIndex::default()
    }

    /// Populate for `n` nodes and the given `(src, dst)` edge list,
    /// reusing existing storage.
    pub fn rebuild(&mut self, edges: &[(usize, usize)], n: usize) {
        self.n = n;
        self.src.clear();
        self.dst.clear();
        for &(s, d) in edges {
            self.src.push(s);
            self.dst.push(d);
        }
        for u in 0..n {
            self.src.push(u);
            self.dst.push(u);
        }
        self.inv_deg.clear();
        self.inv_deg.resize(n, 0.0);
        for &d in &self.dst {
            self.inv_deg[d] += 1.0;
        }
        for v in &mut self.inv_deg {
            *v = 1.0 / v.max(1.0);
        }
    }

    /// Message sources (edges then self-loops).
    #[must_use]
    pub fn src(&self) -> &[usize] {
        &self.src
    }

    /// Message destinations (edges then self-loops).
    #[must_use]
    pub fn dst(&self) -> &[usize] {
        &self.dst
    }

    /// Inverse in-degree (self-loop included) per node.
    #[must_use]
    pub fn inv_deg(&self) -> &[f32] {
        &self.inv_deg
    }

    /// Node count this index was built for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn test_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        let data: Vec<f32> =
            (0..rows * cols).map(|i| ((i as f32 * 0.7).sin()) * scale).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn ops_match_graph_ops_bitwise() {
        let x = test_matrix(5, 4, 1.3);
        let w = test_matrix(4, 3, 0.7);
        let bias = test_matrix(1, 3, 0.2);
        let idx = [0usize, 2, 2, 4, 1];
        let seg = [0usize, 0, 1, 1, 1];

        let mut g = Graph::new();
        let gx = g.input(x.clone());
        let gw = g.input(w.clone());
        let gb = g.input(bias.clone());
        let gmm = g.matmul(gx, gw);
        let gbias = g.add_bias(gmm, gb);
        let gth = g.gather_rows(gbias, &idx);
        let gsc = g.scatter_add_rows(gth, &seg, 2);
        let gtanh = g.tanh(gsc);
        let gmean = g.mean_rows(gtanh);

        let mut ctx = InferCtx::new();
        ctx.begin();
        let cx = ctx.load(&x);
        let cmm = ctx.matmul(cx, &w);
        ctx.add_bias(cmm, &bias);
        let cth = ctx.gather_rows(cmm, &idx);
        let csc = ctx.scatter_add_rows(cth, &seg, 2);
        ctx.tanh(csc);
        let cmean = ctx.mean_rows(csc);

        assert_eq!(ctx.value(csc), g.value(gtanh));
        assert_eq!(ctx.value(cmean), g.value(gmean));
    }

    #[test]
    fn segment_softmax_matches_graph() {
        let col = test_matrix(6, 1, 2.1);
        let seg = [0usize, 0, 1, 1, 1, 2];
        let mut g = Graph::new();
        let gc = g.input(col.clone());
        let gsm = g.segment_softmax(gc, &seg);
        let mut ctx = InferCtx::new();
        ctx.begin();
        let cc = ctx.load(&col);
        ctx.segment_softmax(cc, &seg);
        assert_eq!(ctx.value(cc), g.value(gsm));
    }

    #[test]
    fn log_softmax_masked_matches_graph() {
        let logits = test_matrix(1, 6, 1.7);
        let mask = [true, false, true, true, false, true];
        let mut g = Graph::new();
        let gl = g.input(logits.clone());
        let glp = g.log_softmax_masked(gl, &mask);
        let mut out = Vec::new();
        log_softmax_masked_into(logits.row_slice(0), &mask, &mut out);
        assert_eq!(out.as_slice(), g.value(glp).row_slice(0));
    }

    #[test]
    fn slots_are_reused_across_begins() {
        let x = test_matrix(3, 3, 1.0);
        let mut ctx = InferCtx::new();
        ctx.begin();
        let a = ctx.load(&x);
        let _ = ctx.matmul(a, &x);
        let high_water = ctx.slots.len();
        for _ in 0..10 {
            ctx.begin();
            let a = ctx.load(&x);
            let _ = ctx.matmul(a, &x);
        }
        assert_eq!(ctx.slots.len(), high_water, "no new slots after warm-up");
    }

    #[test]
    fn message_index_rebuild_appends_self_loops() {
        let mut idx = MessageIndex::new();
        idx.rebuild(&[(0, 1), (1, 2)], 3);
        assert_eq!(idx.src(), &[0, 1, 0, 1, 2]);
        assert_eq!(idx.dst(), &[1, 2, 0, 1, 2]);
        // deg: node0 = 1 (self), node1 = 2, node2 = 2.
        assert_eq!(idx.inv_deg(), &[1.0, 0.5, 0.5]);
        idx.rebuild(&[], 2);
        assert_eq!(idx.src(), &[0, 1]);
        assert_eq!(idx.n(), 2);
    }

    #[test]
    #[should_panic(expected = "stale BufId")]
    fn stale_handles_panic() {
        let mut ctx = InferCtx::new();
        ctx.begin();
        let a = ctx.load(&Matrix::zeros(1, 1));
        ctx.begin();
        let _ = ctx.value(a);
    }
}
