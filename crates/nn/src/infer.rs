//! Tape-free inference: a reusable scratch workspace for forward-only
//! evaluation.
//!
//! [`crate::Graph`] records every op so it can differentiate; at search
//! time MapZero only needs values, yet each `predict` used to pay for a
//! fresh tape (one value *and* one zeroed gradient matrix per op, plus
//! cloned parameter leaves). [`InferCtx`] replaces the tape with a bump
//! arena of [`Matrix`] slots that are reshaped in place and reused
//! across forward passes, so a warmed-up context runs the whole network
//! without touching the allocator.
//!
//! Every op here is **bit-identical** to its tape counterpart: the same
//! accumulation order, the same zero-skips, the same clamping. The
//! proptests in `tests/proptest_hotpath.rs` and the layer equivalence
//! tests below hold the two paths equal, so the Graph forward remains
//! the single source of truth for numerics.
//!
//! Slot handles ([`BufId`]) are only valid until the next
//! [`InferCtx::begin`]; ops that produce a new value always allocate a
//! slot *after* their inputs, which is what lets the arena hand out
//! disjoint borrows without interior mutability.

use crate::{Matrix, NEG_INF};

/// Handle to one scratch matrix inside an [`InferCtx`]. Invalidated by
/// [`InferCtx::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(usize);

/// Bump-arena workspace for tape-free forward passes.
#[derive(Default)]
pub struct InferCtx {
    slots: Vec<Matrix>,
    used: usize,
    seg_max: Vec<f32>,
    seg_sum: Vec<f32>,
    seg_exp: Vec<f32>,
    edge_scratch: Vec<f32>,
}

impl InferCtx {
    /// Empty workspace.
    #[must_use]
    pub fn new() -> Self {
        InferCtx::default()
    }

    /// Start a new forward pass: previously handed-out [`BufId`]s are
    /// invalidated, slot storage is retained for reuse.
    pub fn begin(&mut self) {
        self.used = 0;
    }

    /// Allocate a zeroed `rows x cols` slot, reusing storage when the
    /// arena already holds a matrix at this position.
    fn alloc(&mut self, rows: usize, cols: usize) -> BufId {
        if self.used == self.slots.len() {
            self.slots.push(Matrix::zeros(rows, cols));
        } else {
            self.slots[self.used].resize_to(rows, cols);
        }
        let id = BufId(self.used);
        self.used += 1;
        id
    }

    /// Copy an external matrix into a fresh slot.
    pub fn load(&mut self, m: &Matrix) -> BufId {
        let id = self.alloc(m.rows(), m.cols());
        self.slots[id.0].copy_from(m);
        id
    }

    /// Stack several equal-width matrices row-wise into one fresh slot
    /// — the disjoint-union load of the batched forward pass: K graph
    /// observations become one `(Σ rows) x cols` node-feature matrix.
    ///
    /// # Panics
    /// Panics on an empty input or a width mismatch.
    pub fn load_stacked(&mut self, mats: &[&Matrix]) -> BufId {
        assert!(!mats.is_empty(), "load_stacked needs at least one matrix");
        let cols = mats[0].cols();
        let rows = mats.iter().map(|m| m.rows()).sum();
        let id = self.alloc(rows, cols);
        let out = &mut self.slots[id.0];
        let mut r = 0;
        for m in mats {
            assert_eq!(m.cols(), cols, "load_stacked width mismatch");
            for i in 0..m.rows() {
                out.row_slice_mut(r + i).copy_from_slice(m.row_slice(i));
            }
            r += m.rows();
        }
        id
    }

    /// Read a slot's current value.
    ///
    /// # Panics
    /// Panics on a stale handle (from before the last [`InferCtx::begin`]).
    #[must_use]
    pub fn value(&self, id: BufId) -> &Matrix {
        assert!(id.0 < self.used, "stale BufId");
        &self.slots[id.0]
    }

    /// Disjoint (&mut write, &read) access to two distinct slots.
    fn pair_mut(&mut self, write: BufId, read: BufId) -> (&mut Matrix, &Matrix) {
        assert_ne!(write.0, read.0, "aliasing slot access");
        if write.0 < read.0 {
            let (lo, hi) = self.slots.split_at_mut(read.0);
            (&mut lo[write.0], &hi[0])
        } else {
            let (lo, hi) = self.slots.split_at_mut(write.0);
            (&mut hi[0], &lo[read.0])
        }
    }

    /// `x @ w` into a fresh slot (`w` is an external matrix, typically
    /// a parameter value).
    pub fn matmul(&mut self, x: BufId, w: &Matrix) -> BufId {
        let out = self.alloc(1, 1);
        let (o, xv) = self.pair_mut(out, x);
        xv.matmul_into(w, o);
        out
    }

    /// `a += b` element-wise, in place.
    pub fn add_assign(&mut self, a: BufId, b: BufId) {
        let (av, bv) = self.pair_mut(a, b);
        av.add_assign(bv);
    }

    /// Broadcast-add a `1 x c` bias onto every row of `x`, in place.
    ///
    /// # Panics
    /// Panics unless `bias` is a row vector of `x`'s width.
    pub fn add_bias(&mut self, x: BufId, bias: &Matrix) {
        let xv = &mut self.slots[x.0];
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), xv.cols(), "bias width mismatch");
        let brow = bias.row_slice(0);
        for r in 0..xv.rows() {
            for (v, &b) in xv.row_slice_mut(r).iter_mut().zip(brow) {
                *v += b;
            }
        }
    }

    /// ReLU in place.
    pub fn relu(&mut self, x: BufId) {
        self.slots[x.0].map_assign(|v| v.max(0.0));
    }

    /// tanh in place (kernel-dispatched, see [`crate::simd::tanh_map`]).
    pub fn tanh(&mut self, x: BufId) {
        crate::simd::tanh_map(self.slots[x.0].data_mut());
    }

    /// Leaky ReLU in place.
    pub fn leaky_relu(&mut self, x: BufId, slope: f32) {
        self.slots[x.0].map_assign(|v| if v >= 0.0 { v } else { slope * v });
    }

    /// `out[i] = a[idx[i]]` into a fresh slot.
    ///
    /// # Panics
    /// Panics if any index is out of range or `idx` is empty.
    pub fn gather_rows(&mut self, a: BufId, idx: &[usize]) -> BufId {
        assert!(!idx.is_empty(), "gather needs at least one index");
        let cols = self.slots[a.0].cols();
        let out = self.alloc(idx.len(), cols);
        let (o, av) = self.pair_mut(out, a);
        if cols == 1 {
            // Column gather (the attention-score broadcast): plain
            // indexed loads instead of one `memcpy` call per element.
            let src = av.data();
            for (v, &i) in o.data_mut().iter_mut().zip(idx) {
                *v = src[i];
            }
            return out;
        }
        for (r, &i) in idx.iter().enumerate() {
            assert!(i < av.rows(), "gather index {i} out of range");
            o.row_slice_mut(r).copy_from_slice(av.row_slice(i));
        }
        out
    }

    /// `out[r] = Σ_{i: idx[i]==r} a[i]` into a fresh `rows x c` slot.
    ///
    /// # Panics
    /// Panics if `idx.len() != a.rows()` or any index ≥ `rows`.
    pub fn scatter_add_rows(&mut self, a: BufId, idx: &[usize], rows: usize) -> BufId {
        assert_eq!(idx.len(), self.slots[a.0].rows(), "one target per input row");
        let cols = self.slots[a.0].cols();
        let out = self.alloc(rows, cols);
        let (o, av) = self.pair_mut(out, a);
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < rows, "scatter index {r} out of range");
            for (v, &x) in o.row_slice_mut(r).iter_mut().zip(av.row_slice(i)) {
                *v += x;
            }
        }
        out
    }

    /// Fused attention aggregation into a fresh `rows x c` slot:
    /// `out[dst[e]] += alpha[e] * a[src[e]]` for each edge `e` in
    /// ascending order.
    ///
    /// Bit-identical to the composed `gather_rows(a, src)` →
    /// `col_mul(alpha, msgs)` → `scatter_add_rows(msgs, dst, rows)` —
    /// the same per-element product, the same destination accumulation
    /// order — without materializing the `E x c` message matrix. The
    /// composed form costs two extra full passes of `E x c` memory
    /// traffic plus a `memcpy` per edge, which profiling puts among the
    /// top costs of the batched forward.
    ///
    /// # Panics
    /// Panics unless `alpha` is an `E x 1` column with one weight per
    /// `src`/`dst` pair and every index is in range.
    pub fn scatter_weighted_rows(
        &mut self,
        alpha: BufId,
        a: BufId,
        src: &[usize],
        dst: &[usize],
        rows: usize,
    ) -> BufId {
        assert_eq!(src.len(), dst.len(), "one (src, dst) pair per edge");
        {
            let av = &self.slots[alpha.0];
            assert_eq!(av.cols(), 1, "alpha must be a column");
            assert_eq!(av.rows(), src.len(), "one weight per edge");
        }
        // Stash the weights so `out` and `a` can be split-borrowed.
        let mut weights = std::mem::take(&mut self.edge_scratch);
        weights.clear();
        weights.extend_from_slice(self.slots[alpha.0].data());
        let cols = self.slots[a.0].cols();
        let in_rows = self.slots[a.0].rows();
        let out = self.alloc(rows, cols);
        let (o, av) = self.pair_mut(out, a);
        // Each edge is one axpy row update (`out_row += w · src_row`) —
        // the same product-then-add per element as the composed ops.
        match crate::simd::kind() {
            crate::simd::SimdKind::Scalar => {
                for (e, (&s, &d)) in src.iter().zip(dst).enumerate() {
                    assert!(s < in_rows, "gather index {s} out of range");
                    assert!(d < rows, "scatter index {d} out of range");
                    crate::simd::axpy_scalar(o.row_slice_mut(d), weights[e], av.row_slice(s));
                }
            }
            crate::simd::SimdKind::Lanes8 => {
                // Whole loop in `simd` so it gets one AVX2 dispatch per
                // call; out-of-range indices panic on the slice bounds.
                crate::simd::scatter_axpy_lanes8(o.data_mut(), cols, av.data(), &weights, src, dst);
            }
        }
        self.edge_scratch = weights;
        out
    }

    /// Per-segment softmax over an `E x 1` column, in place; same
    /// numerics as [`crate::Graph::segment_softmax`].
    ///
    /// # Panics
    /// Panics if `a` is not a column or `seg.len() != a.rows()`.
    pub fn segment_softmax(&mut self, a: BufId, seg: &[usize]) {
        let va = &self.slots[a.0];
        assert_eq!(va.cols(), 1, "segment softmax expects a column");
        assert_eq!(seg.len(), va.rows(), "one segment id per row");
        let nseg = seg.iter().copied().max().map_or(0, |m| m + 1);
        self.seg_max.clear();
        self.seg_max.resize(nseg, f32::NEG_INFINITY);
        for (i, &s) in seg.iter().enumerate() {
            self.seg_max[s] = self.seg_max[s].max(va[(i, 0)]);
        }
        self.seg_sum.clear();
        self.seg_sum.resize(nseg, 0.0);
        self.seg_exp.clear();
        self.seg_exp.extend(seg.iter().enumerate().map(|(i, &s)| va[(i, 0)] - self.seg_max[s]));
        // Shifted numerators through the dispatched exp kernel (the
        // tape path routes through the same one, keeping the softmaxes
        // bit-identical per kind); per-segment sums stay sequential.
        crate::simd::exp_neg_map(&mut self.seg_exp);
        for (&e, &s) in self.seg_exp.iter().zip(seg) {
            self.seg_sum[s] += e;
        }
        let va = &mut self.slots[a.0];
        for (i, &s) in seg.iter().enumerate() {
            va[(i, 0)] = self.seg_exp[i] / self.seg_sum[s].max(f32::MIN_POSITIVE);
        }
    }

    /// Multiply every row of `x` by the matching entry of the `r x 1`
    /// column slot, in place on `x`.
    ///
    /// # Panics
    /// Panics unless `col` is a column of `x`'s height.
    pub fn col_mul(&mut self, col: BufId, x: BufId) {
        let (xv, cv) = self.pair_mut(x, col);
        assert_eq!(cv.cols(), 1, "col must be a column vector");
        assert_eq!(cv.rows(), xv.rows(), "column length mismatch");
        for r in 0..xv.rows() {
            let k = cv[(r, 0)];
            for v in xv.row_slice_mut(r) {
                *v *= k;
            }
        }
    }

    /// Multiply every row of `x` by the matching external scale, in
    /// place (used for GCN degree normalization).
    ///
    /// # Panics
    /// Panics unless `scales.len() == x.rows()`.
    pub fn col_mul_slice(&mut self, x: BufId, scales: &[f32]) {
        let xv = &mut self.slots[x.0];
        assert_eq!(scales.len(), xv.rows(), "column length mismatch");
        for (r, &k) in scales.iter().enumerate() {
            for v in xv.row_slice_mut(r) {
                *v *= k;
            }
        }
    }

    /// Mean over rows into a fresh `1 x c` slot; same accumulation
    /// order as [`crate::Graph::mean_rows`].
    pub fn mean_rows(&mut self, a: BufId) -> BufId {
        let cols = self.slots[a.0].cols();
        let out = self.alloc(1, cols);
        let (o, av) = self.pair_mut(out, a);
        let n = av.rows() as f32;
        for r in 0..av.rows() {
            for (v, &x) in o.row_slice_mut(0).iter_mut().zip(av.row_slice(r)) {
                *v += x / n;
            }
        }
        out
    }

    /// Per-group mean over rows into a fresh `groups x c` slot: row `g`
    /// is the mean of the `rows/groups` consecutive input rows of group
    /// `g`. With `groups == 1` this is bit-identical to
    /// [`InferCtx::mean_rows`] (same ascending-row `x / n`
    /// accumulation), which keeps the batched forward's per-graph
    /// pooling bit-identical to the single-graph pooling.
    ///
    /// # Panics
    /// Panics unless `groups` divides the row count.
    pub fn mean_rows_grouped(&mut self, a: BufId, groups: usize) -> BufId {
        let (rows, cols) = (self.slots[a.0].rows(), self.slots[a.0].cols());
        assert!(groups > 0 && rows % groups == 0, "groups must divide {rows} rows");
        let per = rows / groups;
        let out = self.alloc(groups, cols);
        let (o, av) = self.pair_mut(out, a);
        let n = per as f32;
        for g in 0..groups {
            for r in 0..per {
                for (v, &x) in o.row_slice_mut(g).iter_mut().zip(av.row_slice(g * per + r)) {
                    *v += x / n;
                }
            }
        }
        out
    }

    /// Concatenate two slots along columns into a fresh slot.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn concat_cols(&mut self, a: BufId, b: BufId) -> BufId {
        let (ra, ca) = (self.slots[a.0].rows(), self.slots[a.0].cols());
        let (rb, cb) = (self.slots[b.0].rows(), self.slots[b.0].cols());
        assert_eq!(ra, rb, "row count mismatch");
        let out = self.alloc(ra, ca + cb);
        let (o, av) = self.pair_mut(out, a);
        for r in 0..ra {
            o.row_slice_mut(r)[..ca].copy_from_slice(av.row_slice(r));
        }
        let (o, bv) = self.pair_mut(out, b);
        for r in 0..ra {
            o.row_slice_mut(r)[ca..].copy_from_slice(bv.row_slice(r));
        }
        out
    }
}

/// Masked log-softmax over one row of logits, written into a
/// caller-provided buffer; same numerics (and the same `NEG_INF`
/// stand-in for masked entries) as [`crate::Graph::log_softmax_masked`].
///
/// # Panics
/// Panics unless `logits.len() == mask.len()` with at least one
/// unmasked entry.
pub fn log_softmax_masked_into(logits: &[f32], mask: &[bool], out: &mut Vec<f32>) {
    assert_eq!(mask.len(), logits.len(), "one mask bit per logit");
    assert!(mask.iter().any(|&m| m), "at least one action must be legal");
    let mut max = f32::NEG_INFINITY;
    for (&v, &m) in logits.iter().zip(mask) {
        if m {
            max = max.max(v);
        }
    }
    let mut sum = 0.0f32;
    for (&v, &m) in logits.iter().zip(mask) {
        if m {
            sum += (v - max).exp();
        }
    }
    let lse = max + sum.ln();
    out.clear();
    out.extend(
        logits.iter().zip(mask).map(|(&v, &m)| if m { v - lse } else { NEG_INF }),
    );
}

/// SIMD variant of [`log_softmax_masked_into`]: the masked max runs
/// through the order-insensitive [`crate::simd::max_masked`] reduction
/// (bit-exact) and the normalizer through the fused-order
/// [`crate::simd::sum_exp_masked`] reduction, which reassociates the
/// sum. Results therefore match the scalar form only within the kernel
/// tolerance contract (≤1e-5); masked entries are still exactly
/// `NEG_INF`. Used by the K>1 batched forward, whose contract is
/// tolerance- rather than bit-governed; honors `MAPZERO_SIMD=scalar`,
/// under which it degrades to the scalar form exactly.
///
/// # Panics
/// Same contract as [`log_softmax_masked_into`].
pub fn log_softmax_masked_fused_into(logits: &[f32], mask: &[bool], out: &mut Vec<f32>) {
    assert_eq!(mask.len(), logits.len(), "one mask bit per logit");
    assert!(mask.iter().any(|&m| m), "at least one action must be legal");
    let max = crate::simd::max_masked(logits, mask);
    let sum = crate::simd::sum_exp_masked(logits, mask, max);
    let lse = max + sum.ln();
    out.clear();
    out.extend(
        logits.iter().zip(mask).map(|(&v, &m)| if m { v - lse } else { NEG_INF }),
    );
}

/// Precomputed message routing for one graph: the `(src, dst)` index
/// columns with self-loops appended — exactly what
/// [`crate::GatLayer::forward`] rebuilds on every tape pass — plus the
/// inverse in-degrees [`crate::GcnLayer`] normalizes by. Rebuilt in
/// place so the per-problem index vectors are allocated once.
#[derive(Debug, Default, Clone)]
pub struct MessageIndex {
    src: Vec<usize>,
    dst: Vec<usize>,
    inv_deg: Vec<f32>,
    n: usize,
}

impl MessageIndex {
    /// Empty index; call [`MessageIndex::rebuild`] before use.
    #[must_use]
    pub fn new() -> Self {
        MessageIndex::default()
    }

    /// Populate for `n` nodes and the given `(src, dst)` edge list,
    /// reusing existing storage.
    pub fn rebuild(&mut self, edges: &[(usize, usize)], n: usize) {
        self.n = n;
        self.src.clear();
        self.dst.clear();
        for &(s, d) in edges {
            self.src.push(s);
            self.dst.push(d);
        }
        for u in 0..n {
            self.src.push(u);
            self.dst.push(u);
        }
        self.inv_deg.clear();
        self.inv_deg.resize(n, 0.0);
        for &d in &self.dst {
            self.inv_deg[d] += 1.0;
        }
        for v in &mut self.inv_deg {
            *v = 1.0 / v.max(1.0);
        }
    }

    /// Populate for `copies` disjoint copies of the same `n`-node
    /// graph, stacked row-wise — the routing table of the batched
    /// forward pass: copy `k`'s nodes live at rows `k*n..(k+1)*n` and
    /// its edges are offset to match.
    ///
    /// Ordering matters for bit-equivalence: all tiled edges come
    /// first, then all self-loops, so within any one copy each
    /// destination sees its messages (edges, then its self-loop) in
    /// exactly the order [`MessageIndex::rebuild`] produces for the
    /// single graph. Scatter-adds and segment softmaxes over this index
    /// are therefore bit-identical per copy to the unbatched pass.
    /// `rebuild_tiled(edges, n, 1)` is exactly `rebuild(edges, n)`.
    ///
    /// # Panics
    /// Panics if `copies == 0`.
    pub fn rebuild_tiled(&mut self, edges: &[(usize, usize)], n: usize, copies: usize) {
        assert!(copies > 0, "need at least one copy");
        self.n = n * copies;
        self.src.clear();
        self.dst.clear();
        for k in 0..copies {
            let off = k * n;
            for &(s, d) in edges {
                self.src.push(s + off);
                self.dst.push(d + off);
            }
        }
        for u in 0..self.n {
            self.src.push(u);
            self.dst.push(u);
        }
        self.inv_deg.clear();
        self.inv_deg.resize(self.n, 0.0);
        for &d in &self.dst {
            self.inv_deg[d] += 1.0;
        }
        for v in &mut self.inv_deg {
            *v = 1.0 / v.max(1.0);
        }
    }

    /// Message sources (edges then self-loops).
    #[must_use]
    pub fn src(&self) -> &[usize] {
        &self.src
    }

    /// Message destinations (edges then self-loops).
    #[must_use]
    pub fn dst(&self) -> &[usize] {
        &self.dst
    }

    /// Inverse in-degree (self-loop included) per node.
    #[must_use]
    pub fn inv_deg(&self) -> &[f32] {
        &self.inv_deg
    }

    /// Node count this index was built for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn test_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        let data: Vec<f32> =
            (0..rows * cols).map(|i| ((i as f32 * 0.7).sin()) * scale).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn ops_match_graph_ops_bitwise() {
        let x = test_matrix(5, 4, 1.3);
        let w = test_matrix(4, 3, 0.7);
        let bias = test_matrix(1, 3, 0.2);
        let idx = [0usize, 2, 2, 4, 1];
        let seg = [0usize, 0, 1, 1, 1];

        let mut g = Graph::new();
        let gx = g.input(x.clone());
        let gw = g.input(w.clone());
        let gb = g.input(bias.clone());
        let gmm = g.matmul(gx, gw);
        let gbias = g.add_bias(gmm, gb);
        let gth = g.gather_rows(gbias, &idx);
        let gsc = g.scatter_add_rows(gth, &seg, 2);
        let gtanh = g.tanh(gsc);
        let gmean = g.mean_rows(gtanh);

        let mut ctx = InferCtx::new();
        ctx.begin();
        let cx = ctx.load(&x);
        let cmm = ctx.matmul(cx, &w);
        ctx.add_bias(cmm, &bias);
        let cth = ctx.gather_rows(cmm, &idx);
        let csc = ctx.scatter_add_rows(cth, &seg, 2);
        ctx.tanh(csc);
        let cmean = ctx.mean_rows(csc);

        assert_eq!(ctx.value(csc), g.value(gtanh));
        assert_eq!(ctx.value(cmean), g.value(gmean));
    }

    #[test]
    fn segment_softmax_matches_graph() {
        let col = test_matrix(6, 1, 2.1);
        let seg = [0usize, 0, 1, 1, 1, 2];
        let mut g = Graph::new();
        let gc = g.input(col.clone());
        let gsm = g.segment_softmax(gc, &seg);
        let mut ctx = InferCtx::new();
        ctx.begin();
        let cc = ctx.load(&col);
        ctx.segment_softmax(cc, &seg);
        assert_eq!(ctx.value(cc), g.value(gsm));
    }

    #[test]
    fn log_softmax_masked_matches_graph() {
        let logits = test_matrix(1, 6, 1.7);
        let mask = [true, false, true, true, false, true];
        let mut g = Graph::new();
        let gl = g.input(logits.clone());
        let glp = g.log_softmax_masked(gl, &mask);
        let mut out = Vec::new();
        log_softmax_masked_into(logits.row_slice(0), &mask, &mut out);
        assert_eq!(out.as_slice(), g.value(glp).row_slice(0));
    }

    #[test]
    fn slots_are_reused_across_begins() {
        let x = test_matrix(3, 3, 1.0);
        let mut ctx = InferCtx::new();
        ctx.begin();
        let a = ctx.load(&x);
        let _ = ctx.matmul(a, &x);
        let high_water = ctx.slots.len();
        for _ in 0..10 {
            ctx.begin();
            let a = ctx.load(&x);
            let _ = ctx.matmul(a, &x);
        }
        assert_eq!(ctx.slots.len(), high_water, "no new slots after warm-up");
    }

    #[test]
    fn message_index_rebuild_appends_self_loops() {
        let mut idx = MessageIndex::new();
        idx.rebuild(&[(0, 1), (1, 2)], 3);
        assert_eq!(idx.src(), &[0, 1, 0, 1, 2]);
        assert_eq!(idx.dst(), &[1, 2, 0, 1, 2]);
        // deg: node0 = 1 (self), node1 = 2, node2 = 2.
        assert_eq!(idx.inv_deg(), &[1.0, 0.5, 0.5]);
        idx.rebuild(&[], 2);
        assert_eq!(idx.src(), &[0, 1]);
        assert_eq!(idx.n(), 2);
    }

    #[test]
    fn load_stacked_and_grouped_mean_match_per_graph_ops() {
        let a = test_matrix(4, 3, 1.1);
        let b = test_matrix(4, 3, 0.6);
        let mut ctx = InferCtx::new();
        ctx.begin();
        let stacked = ctx.load_stacked(&[&a, &b]);
        assert_eq!(ctx.value(stacked).rows(), 8);
        assert_eq!(ctx.value(stacked).row_slice(5), b.row_slice(1));
        let means = ctx.mean_rows_grouped(stacked, 2);
        let mean_a = {
            let ia = ctx.load(&a);
            ctx.mean_rows(ia)
        };
        assert_eq!(ctx.value(means).row_slice(0), ctx.value(mean_a).row_slice(0));
        let mean_b = {
            let ib = ctx.load(&b);
            ctx.mean_rows(ib)
        };
        assert_eq!(ctx.value(means).row_slice(1), ctx.value(mean_b).row_slice(0));
    }

    #[test]
    fn rebuild_tiled_offsets_each_copy() {
        let edges = [(0usize, 1usize), (1, 2)];
        let mut tiled = MessageIndex::new();
        tiled.rebuild_tiled(&edges, 3, 2);
        assert_eq!(tiled.n(), 6);
        assert_eq!(tiled.src(), &[0, 1, 3, 4, 0, 1, 2, 3, 4, 5]);
        assert_eq!(tiled.dst(), &[1, 2, 4, 5, 0, 1, 2, 3, 4, 5]);
        // Per-copy degrees must match the single-graph index.
        let mut single = MessageIndex::new();
        single.rebuild(&edges, 3);
        assert_eq!(&tiled.inv_deg()[..3], single.inv_deg());
        assert_eq!(&tiled.inv_deg()[3..], single.inv_deg());
        // One copy degenerates to the plain rebuild.
        let mut one = MessageIndex::new();
        one.rebuild_tiled(&edges, 3, 1);
        assert_eq!(one.src(), single.src());
        assert_eq!(one.dst(), single.dst());
        assert_eq!(one.inv_deg(), single.inv_deg());
    }

    #[test]
    fn fused_log_softmax_stays_within_tolerance_of_scalar() {
        let logits = test_matrix(1, 21, 2.3);
        let mask: Vec<bool> = (0..21).map(|i| i % 4 != 1).collect();
        let mut scalar = Vec::new();
        log_softmax_masked_into(logits.row_slice(0), &mask, &mut scalar);
        let mut fused = Vec::new();
        log_softmax_masked_fused_into(logits.row_slice(0), &mask, &mut fused);
        for ((s, f), &m) in scalar.iter().zip(&fused).zip(&mask) {
            if m {
                assert!((s - f).abs() <= 1e-5, "unmasked entry drifted: {s} vs {f}");
            } else {
                assert_eq!(*f, NEG_INF, "masked entries must stay pinned");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale BufId")]
    fn stale_handles_panic() {
        let mut ctx = InferCtx::new();
        ctx.begin();
        let a = ctx.load(&Matrix::zeros(1, 1));
        ctx.begin();
        let _ = ctx.value(a);
    }
}
