//! Network layers: fully-connected, MLP, and multi-head graph attention.

use crate::infer::{BufId, InferCtx, MessageIndex};
use crate::{Graph, Matrix, ParamId, Params, SeedRng, VarId};

/// A fully-connected layer `y = x W + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    /// Weight parameter (`in_dim x out_dim`).
    pub weight: ParamId,
    /// Bias parameter (`1 x out_dim`).
    pub bias: ParamId,
}

impl Linear {
    /// Create a layer with Xavier-initialized weights and zero bias.
    #[must_use]
    pub fn new(params: &mut Params, in_dim: usize, out_dim: usize, rng: &mut SeedRng) -> Self {
        Linear {
            weight: params.register(rng.xavier(in_dim, out_dim)),
            bias: params.register(Matrix::zeros(1, out_dim)),
        }
    }

    /// Forward pass for a batch `x` of shape `(n x in_dim)`.
    pub fn forward(&self, g: &mut Graph, params: &Params, x: VarId) -> VarId {
        let w = g.param(params, self.weight);
        let b = g.param(params, self.bias);
        let xw = g.matmul(x, w);
        g.add_bias(xw, b)
    }

    /// Tape-free forward pass; bit-identical to [`Linear::forward`].
    pub fn infer(&self, ctx: &mut InferCtx, params: &Params, x: BufId) -> BufId {
        let y = ctx.matmul(x, params.value(self.weight));
        ctx.add_bias(y, params.value(self.bias));
        y
    }
}

/// A multilayer perceptron with ReLU between layers (linear output).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Create an MLP with the given layer widths, e.g. `[64, 32, 1]`
    /// builds `in -> 64 -> 32 -> 1`.
    ///
    /// # Panics
    /// Panics if `widths` is empty.
    #[must_use]
    pub fn new(params: &mut Params, in_dim: usize, widths: &[usize], rng: &mut SeedRng) -> Self {
        assert!(!widths.is_empty(), "MLP needs at least one layer");
        let mut layers = Vec::with_capacity(widths.len());
        let mut prev = in_dim;
        for &w in widths {
            layers.push(Linear::new(params, prev, w, rng));
            prev = w;
        }
        Mlp { layers }
    }

    /// Forward pass; ReLU after every layer except the last.
    pub fn forward(&self, g: &mut Graph, params: &Params, mut x: VarId) -> VarId {
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, params, x);
            if i + 1 < self.layers.len() {
                x = g.relu(x);
            }
        }
        x
    }

    /// Tape-free forward pass; bit-identical to [`Mlp::forward`].
    pub fn infer(&self, ctx: &mut InferCtx, params: &Params, mut x: BufId) -> BufId {
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.infer(ctx, params, x);
            if i + 1 < self.layers.len() {
                ctx.relu(x);
            }
        }
        x
    }

    /// Number of layers.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// One multi-head graph attention layer (Eqs. 5–8 of the paper).
///
/// Per head `k`: scores `e_uv = LeakyReLU(a_dstᵀ W h_u + a_srcᵀ W h_v)`
/// are normalized with a per-destination softmax (Eq. 6) and aggregated
/// as `h'_u = σ(Σ_v α_uv W h_v)`; heads are concatenated (Eq. 8).
/// Self-loops are appended so every node attends to itself.
#[derive(Debug, Clone)]
pub struct GatLayer {
    heads: Vec<GatHead>,
    negative_slope: f32,
}

#[derive(Debug, Clone)]
struct GatHead {
    weight: ParamId,
    att_dst: ParamId,
    att_src: ParamId,
}

impl GatLayer {
    /// Create a layer with `heads` attention heads, each producing
    /// `head_dim` features (output width = `heads * head_dim`).
    ///
    /// # Panics
    /// Panics if `heads == 0`.
    #[must_use]
    pub fn new(
        params: &mut Params,
        in_dim: usize,
        head_dim: usize,
        heads: usize,
        rng: &mut SeedRng,
    ) -> Self {
        assert!(heads > 0, "need at least one attention head");
        let heads = (0..heads)
            .map(|_| GatHead {
                weight: params.register(rng.xavier(in_dim, head_dim)),
                att_dst: params.register(rng.uniform(head_dim, 1, 0.3)),
                att_src: params.register(rng.uniform(head_dim, 1, 0.3)),
            })
            .collect();
        GatLayer { heads, negative_slope: 0.2 }
    }

    /// Number of heads.
    #[must_use]
    pub fn head_count(&self) -> usize {
        self.heads.len()
    }

    /// Forward pass.
    ///
    /// `x` is the `(n x in_dim)` node-feature matrix; `edges` lists
    /// `(src, dst)` pairs meaning *messages flow src → dst*. Self-loops
    /// `(u, u)` are appended automatically. Output is
    /// `(n x heads*head_dim)` after an ELU-like nonlinearity (tanh is
    /// used as σ for bounded embeddings).
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &Params,
        x: VarId,
        edges: &[(usize, usize)],
    ) -> VarId {
        let n = g.value(x).rows();
        let mut src_idx: Vec<usize> = edges.iter().map(|&(s, _)| s).collect();
        let mut dst_idx: Vec<usize> = edges.iter().map(|&(_, d)| d).collect();
        for u in 0..n {
            src_idx.push(u);
            dst_idx.push(u);
        }
        let mut head_outputs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let w = g.param(params, head.weight);
            let hw = g.matmul(x, w); // (n x d)
            let a_dst = g.param(params, head.att_dst); // (d x 1)
            let a_src = g.param(params, head.att_src);
            let score_dst = g.matmul(hw, a_dst); // (n x 1)
            let score_src = g.matmul(hw, a_src);
            let e_dst = g.gather_rows(score_dst, &dst_idx); // (E x 1)
            let e_src = g.gather_rows(score_src, &src_idx);
            let e_sum = g.add(e_dst, e_src);
            let e = g.leaky_relu(e_sum, self.negative_slope);
            let alpha = g.segment_softmax(e, &dst_idx); // per-dst softmax
            let msg_in = g.gather_rows(hw, &src_idx); // (E x d)
            let msg = g.col_mul(alpha, msg_in);
            let agg = g.scatter_add_rows(msg, &dst_idx, n); // (n x d)
            head_outputs.push(g.tanh(agg));
        }
        let mut out = head_outputs[0];
        for &h in &head_outputs[1..] {
            out = g.concat_cols(out, h);
        }
        out
    }

    /// Tape-free forward pass; bit-identical to [`GatLayer::forward`].
    ///
    /// `index` must have been rebuilt for the same edge list and node
    /// count (it carries the src/dst columns with self-loops appended,
    /// so the per-pass index allocation of the tape path disappears).
    pub fn infer(
        &self,
        ctx: &mut InferCtx,
        params: &Params,
        x: BufId,
        index: &MessageIndex,
    ) -> BufId {
        let n = ctx.value(x).rows();
        debug_assert_eq!(n, index.n(), "index built for a different graph");
        let mut out: Option<BufId> = None;
        for head in &self.heads {
            let hw = ctx.matmul(x, params.value(head.weight)); // (n x d)
            let score_dst = ctx.matmul(hw, params.value(head.att_dst)); // (n x 1)
            let score_src = ctx.matmul(hw, params.value(head.att_src));
            let e = ctx.gather_rows(score_dst, index.dst()); // (E x 1)
            let e_src = ctx.gather_rows(score_src, index.src());
            ctx.add_assign(e, e_src);
            ctx.leaky_relu(e, self.negative_slope);
            ctx.segment_softmax(e, index.dst()); // per-dst softmax
            // Fused gather → col_mul → scatter_add (bit-identical to
            // the composed tape ops, minus the E x d message matrix).
            let agg = ctx.scatter_weighted_rows(e, hw, index.src(), index.dst(), n); // (n x d)
            ctx.tanh(agg);
            out = Some(match out {
                None => agg,
                Some(prev) => ctx.concat_cols(prev, agg),
            });
        }
        out.expect("at least one attention head")
    }
}


/// A graph convolution layer with mean aggregation (Kipf-Welling style,
/// degree-normalized): `h'_u = tanh(mean_{v in N(u) ∪ {u}} W h_v)`.
///
/// Kept as the ablation counterpart to [`GatLayer`]: identical
/// interface, no attention. The paper argues for GAT ("varied attention
/// factors are promising for learning heterogeneous hardware
/// structures", §2.2); `ablation_design` measures the difference.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    weight: ParamId,
    bias: ParamId,
}

impl GcnLayer {
    /// Create with Xavier-initialized weights.
    #[must_use]
    pub fn new(params: &mut Params, in_dim: usize, out_dim: usize, rng: &mut SeedRng) -> Self {
        GcnLayer {
            weight: params.register(rng.xavier(in_dim, out_dim)),
            bias: params.register(Matrix::zeros(1, out_dim)),
        }
    }

    /// Forward pass with the same conventions as [`GatLayer::forward`]
    /// (messages flow src → dst; self-loops appended).
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &Params,
        x: VarId,
        edges: &[(usize, usize)],
    ) -> VarId {
        let n = g.value(x).rows();
        let mut src_idx: Vec<usize> = edges.iter().map(|&(s, _)| s).collect();
        let mut dst_idx: Vec<usize> = edges.iter().map(|&(_, d)| d).collect();
        for u in 0..n {
            src_idx.push(u);
            dst_idx.push(u);
        }
        // In-degree (incl. self loop) per destination for normalization.
        let mut deg = vec![0.0f32; n];
        for &d in &dst_idx {
            deg[d] += 1.0;
        }
        let w = g.param(params, self.weight);
        let b = g.param(params, self.bias);
        let hw0 = g.matmul(x, w);
        let hw = g.add_bias(hw0, b);
        let msg = g.gather_rows(hw, &src_idx);
        let agg = g.scatter_add_rows(msg, &dst_idx, n);
        let inv_deg = Matrix::from_vec(n, 1, deg.iter().map(|d| 1.0 / d.max(1.0)).collect());
        let inv = g.input(inv_deg);
        let mean = g.col_mul(inv, agg);
        g.tanh(mean)
    }

    /// Tape-free forward pass; bit-identical to [`GcnLayer::forward`]
    /// (the inverse degrees come precomputed from the index).
    pub fn infer(
        &self,
        ctx: &mut InferCtx,
        params: &Params,
        x: BufId,
        index: &MessageIndex,
    ) -> BufId {
        let n = ctx.value(x).rows();
        debug_assert_eq!(n, index.n(), "index built for a different graph");
        let hw = ctx.matmul(x, params.value(self.weight));
        ctx.add_bias(hw, params.value(self.bias));
        let msg = ctx.gather_rows(hw, index.src());
        let agg = ctx.scatter_add_rows(msg, index.dst(), n);
        ctx.col_mul_slice(agg, index.inv_deg());
        ctx.tanh(agg);
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes() {
        let mut params = Params::new();
        let mut rng = SeedRng::new(0);
        let l = Linear::new(&mut params, 5, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(7, 5));
        let y = l.forward(&mut g, &params, x);
        assert_eq!((g.value(y).rows(), g.value(y).cols()), (7, 3));
    }

    #[test]
    fn mlp_depth_and_shapes() {
        let mut params = Params::new();
        let mut rng = SeedRng::new(0);
        let mlp = Mlp::new(&mut params, 8, &[16, 4, 1], &mut rng);
        assert_eq!(mlp.depth(), 3);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 8));
        let y = mlp.forward(&mut g, &params, x);
        assert_eq!((g.value(y).rows(), g.value(y).cols()), (2, 1));
    }

    #[test]
    fn gat_output_shape_is_heads_times_dim() {
        let mut params = Params::new();
        let mut rng = SeedRng::new(3);
        let gat = GatLayer::new(&mut params, 6, 4, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::filled(5, 6, 0.1));
        let y = gat.forward(&mut g, &params, x, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!((g.value(y).rows(), g.value(y).cols()), (5, 8));
    }

    #[test]
    fn gat_isolated_node_attends_to_itself() {
        // Node 2 has no edges; self-loop keeps its output finite.
        let mut params = Params::new();
        let mut rng = SeedRng::new(3);
        let gat = GatLayer::new(&mut params, 4, 4, 1, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::filled(3, 4, 0.5));
        let y = gat.forward(&mut g, &params, x, &[(0, 1)]);
        assert!(g.value(y).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gat_gradients_flow_to_all_parameters() {
        let mut params = Params::new();
        let mut rng = SeedRng::new(9);
        let gat = GatLayer::new(&mut params, 4, 3, 2, &mut rng);
        let mut g = Graph::new();
        let data: Vec<f32> = (0..20).map(|i| (i as f32 * 0.37).sin()).collect();
        let x = g.input(Matrix::from_vec(5, 4, data));
        let y = gat.forward(&mut g, &params, x, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut params);
        for id in params.ids() {
            assert!(params.grad(id).norm() > 0.0, "no gradient reached {id:?}");
        }
    }

    #[test]
    fn gcn_shapes_and_gradients() {
        let mut params = Params::new();
        let mut rng = SeedRng::new(5);
        let gcn = GcnLayer::new(&mut params, 4, 3, &mut rng);
        let mut g = Graph::new();
        let data: Vec<f32> = (0..20).map(|i| (i as f32 * 0.31).sin()).collect();
        let x = g.input(Matrix::from_vec(5, 4, data));
        let y = gcn.forward(&mut g, &params, x, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!((g.value(y).rows(), g.value(y).cols()), (5, 3));
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut params);
        for id in params.ids() {
            assert!(params.grad(id).norm() > 0.0, "no gradient reached {id:?}");
        }
    }

    #[test]
    fn gcn_mean_aggregation_is_degree_invariant() {
        // A node fed by k identical neighbours gets the same output
        // regardless of k (mean, not sum).
        let mut params = Params::new();
        let mut rng = SeedRng::new(6);
        let gcn = GcnLayer::new(&mut params, 2, 2, &mut rng);
        let run = |edges: &[(usize, usize)], rows: usize| {
            let mut g = Graph::new();
            let x = g.input(Matrix::filled(rows, 2, 0.4));
            let y = gcn.forward(&mut g, &params, x, edges);
            g.value(y).row_slice(0).to_vec()
        };
        let two = run(&[(1, 0), (2, 0)], 3);
        let four = run(&[(1, 0), (2, 0), (3, 0), (4, 0)], 5);
        for (a, b) in two.iter().zip(&four) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn infer_paths_match_graph_forward_bitwise() {
        let mut params = Params::new();
        let mut rng = SeedRng::new(21);
        let gat = GatLayer::new(&mut params, 6, 4, 2, &mut rng);
        let gcn = GcnLayer::new(&mut params, 6, 4, &mut rng);
        let mlp = Mlp::new(&mut params, 8, &[5, 3], &mut rng);
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)];
        let xdata: Vec<f32> = (0..30).map(|i| (i as f32 * 0.43).sin()).collect();
        let x = Matrix::from_vec(5, 6, xdata);

        let mut ctx = InferCtx::new();
        let mut index = MessageIndex::new();
        index.rebuild(&edges, 5);

        // GAT
        let mut g = Graph::new();
        let gx = g.input(x.clone());
        let gy = gat.forward(&mut g, &params, gx, &edges);
        ctx.begin();
        let cx = ctx.load(&x);
        let cy = gat.infer(&mut ctx, &params, cx, &index);
        assert_eq!(ctx.value(cy), g.value(gy), "GAT infer diverged");

        // GCN
        let mut g = Graph::new();
        let gx = g.input(x.clone());
        let gy = gcn.forward(&mut g, &params, gx, &edges);
        ctx.begin();
        let cx = ctx.load(&x);
        let cy = gcn.infer(&mut ctx, &params, cx, &index);
        assert_eq!(ctx.value(cy), g.value(gy), "GCN infer diverged");

        // MLP (ReLU between layers)
        let mdata: Vec<f32> = (0..16).map(|i| (i as f32 * 0.61).cos()).collect();
        let mx = Matrix::from_vec(2, 8, mdata);
        let mut g = Graph::new();
        let gx = g.input(mx.clone());
        let gy = mlp.forward(&mut g, &params, gx);
        ctx.begin();
        let cx = ctx.load(&mx);
        let cy = mlp.infer(&mut ctx, &params, cx);
        assert_eq!(ctx.value(cy), g.value(gy), "MLP infer diverged");
    }

    #[test]
    fn gat_message_direction_matters() {
        // A lone directed edge 0 -> 1 must change node 1's embedding,
        // not node 0's (beyond its self-loop).
        let mut params = Params::new();
        let mut rng = SeedRng::new(11);
        let gat = GatLayer::new(&mut params, 3, 3, 1, &mut rng);
        let base = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[0.4, 0.5, 0.6]]);
        let run = |edges: &[(usize, usize)], params: &Params| {
            let mut g = Graph::new();
            let x = g.input(base.clone());
            let y = gat.forward(&mut g, params, x, edges);
            g.value(y).clone()
        };
        let with_edge = run(&[(0, 1)], &params);
        let without = run(&[], &params);
        // Node 0's row is unchanged, node 1's differs.
        let row0_diff: f32 =
            (0..3).map(|c| (with_edge[(0, c)] - without[(0, c)]).abs()).sum();
        let row1_diff: f32 =
            (0..3).map(|c| (with_edge[(1, c)] - without[(1, c)]).abs()).sum();
        assert!(row0_diff < 1e-6);
        assert!(row1_diff > 1e-6);
    }
}
