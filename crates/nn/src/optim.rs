//! Optimizers, gradient clipping and learning-rate schedules.

use crate::{Matrix, Params};

/// Common optimizer interface: consume the accumulated gradients in
/// `params` and update the values (gradients are *not* zeroed; call
/// [`Params::zero_grads`] afterwards).
pub trait Optimizer {
    /// Apply one update step with the given learning rate.
    fn step(&mut self, params: &mut Params, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Create with the given momentum coefficient (0 disables momentum).
    #[must_use]
    pub fn new(momentum: f32) -> Self {
        Sgd { momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, lr: f32) {
        let ids: Vec<_> = params.ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids
                .iter()
                .map(|&id| {
                    let g = params.grad(id);
                    Matrix::zeros(g.rows(), g.cols())
                })
                .collect();
        }
        for (i, id) in ids.into_iter().enumerate() {
            // v = momentum*v - lr*g, fused in place (no scaled copy,
            // no delta clone — the old defensive clones were pure
            // allocator traffic).
            let v = &mut self.velocity[i];
            v.scale_assign(self.momentum);
            for (vi, &gi) in v.data_mut().iter_mut().zip(params.grad(id).data()) {
                *vi -= lr * gi;
            }
            params.value_mut(id).add_assign(v);
        }
    }
}

/// Adam optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

/// The serializable part of an [`Adam`] optimizer: step count and
/// moment estimates. Checkpoint/resume must carry this alongside the
/// parameters — resuming with fresh moments would take different update
/// directions than the uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamState {
    /// Update steps taken (drives bias correction).
    pub t: u64,
    /// First-moment estimates, one per parameter.
    pub m: Vec<Matrix>,
    /// Second-moment estimates, one per parameter.
    pub v: Vec<Matrix>,
}

impl Adam {
    /// Create with standard coefficients (β₁ = 0.9, β₂ = 0.999).
    #[must_use]
    pub fn new() -> Self {
        Adam { beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Snapshot the optimizer state for checkpointing.
    #[must_use]
    pub fn export_state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restore a previously exported state (coefficients are
    /// construction-time constants and are kept).
    ///
    /// # Panics
    /// Panics if the two moment vectors disagree in length.
    pub fn import_state(&mut self, state: AdamState) {
        assert_eq!(state.m.len(), state.v.len(), "moment vectors must pair up");
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, lr: f32) {
        let ids: Vec<_> = params.ids().collect();
        if self.m.len() != ids.len() {
            self.m = ids
                .iter()
                .map(|&id| {
                    let g = params.grad(id);
                    Matrix::zeros(g.rows(), g.cols())
                })
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in ids.into_iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), &gi) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(params.grad(id).data())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let value = params.value_mut(id);
            for ((val, &mi), &vi) in
                value.data_mut().iter_mut().zip(m.data()).zip(v.data())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *val -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Clip the *global* gradient norm to `max_norm` (the paper clips
/// gradients "to avoid gradient explosion", Alg. 1 line 21).
///
/// Returns the pre-clip norm.
pub fn clip_gradients(params: &mut Params, max_norm: f32) -> f32 {
    let norm = params.grad_norm();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for id in params.ids().collect::<Vec<_>>() {
            params.grad_mut(id).scale_assign(scale);
        }
    }
    norm
}

/// Step-decay learning-rate schedule (Fig. 12(f) shows a decaying LR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrSchedule {
    /// Initial learning rate.
    pub initial: f32,
    /// Multiplicative decay factor applied every `step_every` epochs.
    pub decay: f32,
    /// Number of epochs between decays.
    pub step_every: u32,
    /// Lower bound on the learning rate.
    pub floor: f32,
}

impl LrSchedule {
    /// Constant learning rate.
    #[must_use]
    pub fn constant(lr: f32) -> Self {
        LrSchedule { initial: lr, decay: 1.0, step_every: 1, floor: lr }
    }

    /// Learning rate at `epoch` (0-based).
    #[must_use]
    pub fn at(&self, epoch: u32) -> f32 {
        let steps = epoch / self.step_every.max(1);
        (self.initial * self.decay.powi(steps as i32)).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, ParamId};

    fn quadratic_setup() -> (Params, ParamId) {
        let mut params = Params::new();
        let id = params.register(Matrix::filled(1, 2, 4.0));
        (params, id)
    }

    /// One gradient step for loss = sum(x^2).
    fn accumulate_quadratic_grad(params: &mut Params, id: ParamId) -> f32 {
        let mut g = Graph::new();
        let x = g.param(params, id);
        let sq = g.mul(x, x);
        let loss = g.sum_all(sq);
        let out = g.value(loss)[(0, 0)];
        g.backward(loss, params);
        out
    }

    #[test]
    fn sgd_descends_quadratic() {
        let (mut params, id) = quadratic_setup();
        let mut opt = Sgd::new(0.0);
        let first = accumulate_quadratic_grad(&mut params, id);
        opt.step(&mut params, 0.1);
        params.zero_grads();
        let second = accumulate_quadratic_grad(&mut params, id);
        assert!(second < first);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let (mut params, id) = quadratic_setup();
        let mut opt = Sgd::new(0.9);
        for _ in 0..200 {
            let _ = accumulate_quadratic_grad(&mut params, id);
            opt.step(&mut params, 0.01);
            params.zero_grads();
        }
        assert!(params.value(id).norm() < 0.1);
    }

    #[test]
    fn adam_converges() {
        let (mut params, id) = quadratic_setup();
        let mut opt = Adam::new();
        for _ in 0..500 {
            let _ = accumulate_quadratic_grad(&mut params, id);
            opt.step(&mut params, 0.05);
            params.zero_grads();
        }
        assert!(params.value(id).norm() < 0.1);
    }

    #[test]
    fn clip_scales_down_large_gradients() {
        let (mut params, id) = quadratic_setup();
        let _ = accumulate_quadratic_grad(&mut params, id);
        let before = clip_gradients(&mut params, 1.0);
        assert!(before > 1.0);
        assert!((params.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_leaves_small_gradients() {
        let (mut params, id) = quadratic_setup();
        let _ = accumulate_quadratic_grad(&mut params, id);
        let norm = params.grad_norm();
        let reported = clip_gradients(&mut params, norm + 1.0);
        assert!((reported - norm).abs() < 1e-5);
        assert!((params.grad_norm() - norm).abs() < 1e-5);
    }

    #[test]
    fn schedule_decays_with_floor() {
        let s = LrSchedule { initial: 0.1, decay: 0.5, step_every: 10, floor: 0.02 };
        assert!((s.at(0) - 0.1).abs() < 1e-7);
        assert!((s.at(10) - 0.05).abs() < 1e-7);
        assert!((s.at(20) - 0.025).abs() < 1e-7);
        assert!((s.at(80) - 0.02).abs() < 1e-7); // floored
    }

    #[test]
    fn constant_schedule_is_flat() {
        let s = LrSchedule::constant(0.01);
        assert_eq!(s.at(0), s.at(1000));
    }
}
