//! The MapZero network (Fig. 5): GAT encoders for the DFG and the CGRA
//! slice, an FC encoder for the current node's metadata, an MLP trunk
//! producing the joint state vector, and policy / value heads.

use crate::checkpoint::Fnv64;
use crate::embed::Observation;
use mapzero_nn::infer::{log_softmax_masked_fused_into, log_softmax_masked_into};
use mapzero_nn::{
    clip_gradients, Adam, AdamState, BufId, GatLayer, GcnLayer, Graph, InferCtx, Linear, Matrix,
    MessageIndex, Mlp, Optimizer, Params, SeedRng, VarId,
};
use std::cell::RefCell;

/// Which graph encoder the network uses (§2.2 argues for GAT; GCN is
/// kept for the `ablation_design` comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// Multi-head graph attention (the paper's choice).
    #[default]
    Gat,
    /// Degree-normalized graph convolution (no attention).
    Gcn,
}

/// A graph encoder layer of either kind.
enum Encoder {
    Gat(GatLayer),
    Gcn(GcnLayer),
}

impl Encoder {
    fn new(
        kind: EncoderKind,
        params: &mut Params,
        in_dim: usize,
        head_dim: usize,
        heads: usize,
        rng: &mut SeedRng,
    ) -> Self {
        match kind {
            EncoderKind::Gat => Encoder::Gat(GatLayer::new(params, in_dim, head_dim, heads, rng)),
            EncoderKind::Gcn => {
                Encoder::Gcn(GcnLayer::new(params, in_dim, head_dim * heads, rng))
            }
        }
    }

    fn forward(
        &self,
        g: &mut Graph,
        params: &Params,
        x: VarId,
        edges: &[(usize, usize)],
    ) -> VarId {
        match self {
            Encoder::Gat(l) => l.forward(g, params, x, edges),
            Encoder::Gcn(l) => l.forward(g, params, x, edges),
        }
    }

    fn infer(
        &self,
        ctx: &mut InferCtx,
        params: &Params,
        x: BufId,
        index: &MessageIndex,
    ) -> BufId {
        match self {
            Encoder::Gat(l) => l.infer(ctx, params, x, index),
            Encoder::Gcn(l) => l.infer(ctx, params, x, index),
        }
    }
}

/// Network hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Per-head output width of the GAT layers.
    pub head_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Width of the metadata FC embedding.
    pub meta_dim: usize,
    /// Width of the joint state vector.
    pub state_dim: usize,
    /// Hidden width of the policy / value heads.
    pub head_hidden: usize,
    /// Weight-init seed.
    pub seed: u64,
    /// Graph encoder kind.
    pub encoder: EncoderKind,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            head_dim: 16,
            heads: 2,
            meta_dim: 16,
            state_dim: 64,
            head_hidden: 64,
            seed: 0,
            encoder: EncoderKind::Gat,
        }
    }
}

impl NetConfig {
    /// A tiny configuration for fast tests.
    #[must_use]
    pub fn tiny() -> Self {
        NetConfig {
            head_dim: 4,
            heads: 2,
            meta_dim: 8,
            state_dim: 16,
            head_hidden: 16,
            ..NetConfig::default()
        }
    }
}

/// Network output for one state.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Log-probability per PE (masked actions get a large negative
    /// value).
    pub log_probs: Vec<f32>,
    /// Value estimate in [−1, 1].
    pub value: f32,
}

impl Prediction {
    /// Probabilities (exp of log-probs; masked ≈ 0).
    #[must_use]
    pub fn probs(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.probs_into(&mut out);
        out
    }

    /// Probabilities written into a caller-provided buffer, so per-step
    /// decision loops can reuse one allocation instead of taking a
    /// fresh `Vec` per expansion.
    pub fn probs_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.log_probs.iter().map(|lp| lp.exp()));
    }

    /// Index of the most likely action.
    #[must_use]
    pub fn argmax(&self) -> usize {
        self.log_probs
            .iter()
            .enumerate()
            // `total_cmp`: a NaN log-prob (poisoned weights) sorts low
            // instead of panicking inference.
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// One training sample: an observation with its MCTS policy target and
/// value target.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSample {
    /// The observed state.
    pub observation: Observation,
    /// Target distribution over actions (MCTS visit proportions).
    pub policy: Vec<f32>,
    /// Target value in [−1, 1].
    pub value: f32,
}

/// Losses of one optimization step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBreakdown {
    /// `(r − v)²` averaged over the batch.
    pub value_loss: f32,
    /// `−π·log p` averaged over the batch.
    pub policy_loss: f32,
    /// Sum of the two.
    pub total: f32,
    /// Pre-clip gradient norm.
    pub grad_norm: f32,
}

/// The DFG half of the forward pass, reusable across per-step
/// predictions.
///
/// The DFG encoder is the most expensive branch of the network, and its
/// input only changes when a node's assigned-PE feature changes — once
/// per agent step, while MCTS queries the net at dozens of interior
/// states sharing the same assignment vector. Splitting it out lets
/// [`MapZeroNet::predict_with_dfg`] (and the memo inside
/// [`MapZeroNet::predict`]) run only the CGRA/meta/head path per query.
///
/// The embedding is pinned to the parameters it was computed under via
/// [`Params::fingerprint`]; using it after a weight update or rollback
/// is rejected.
#[derive(Debug, Clone)]
pub struct DfgEmbedding {
    fingerprint: u64,
    key: u64,
    emb: Matrix,
}

impl DfgEmbedding {
    /// FNV key of the DFG observation (features + edges) this embedding
    /// encodes.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }
}

/// Per-thread scratch for the tape-free forward path: the bump-arena
/// workspace, the two message indices (rebuilt in place per problem),
/// and a single-entry DFG-embedding memo. Thread-local so
/// [`MapZeroNet::predict`] keeps its `&self` signature and the net
/// stays shareable across self-play worker threads.
struct InferState {
    ctx: InferCtx,
    dfg_index: MessageIndex,
    cgra_index: MessageIndex,
    memo: Option<DfgEmbedding>,
}

thread_local! {
    static INFER_STATE: RefCell<InferState> = RefCell::new(InferState {
        ctx: InferCtx::new(),
        dfg_index: MessageIndex::new(),
        cgra_index: MessageIndex::new(),
        memo: None,
    });
}

/// Hash the DFG half of an observation: feature-matrix dims and bits
/// plus the edge list. Two observations with equal keys produce the
/// same DFG-encoder output, which is what the memo in
/// [`MapZeroNet::predict`] relies on.
fn dfg_obs_key(obs: &Observation) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(obs.dfg_nodes.rows());
    h.write_usize(obs.dfg_nodes.cols());
    for &v in obs.dfg_nodes.data() {
        h.write_f32(v);
    }
    h.write_usize(obs.dfg_edges.len());
    for &(u, v) in &obs.dfg_edges {
        h.write_usize(u);
        h.write_usize(v);
    }
    h.finish()
}

/// The MapZero policy/value network.
pub struct MapZeroNet {
    /// Parameter store (exposed for checkpointing).
    pub params: Params,
    config: NetConfig,
    action_count: usize,
    gat_dfg1: Encoder,
    gat_dfg2: Encoder,
    gat_cgra1: Encoder,
    gat_cgra2: Encoder,
    fc_meta: Linear,
    trunk: Mlp,
    policy_head: Mlp,
    value_head: Mlp,
    optimizer: Adam,
}

const DFG_DIM: usize = mapzero_dfg::features::DFG_FEATURE_DIM;
const CGRA_DIM: usize = mapzero_arch::features::PE_FEATURE_DIM;
const META_DIM: usize = mapzero_dfg::features::METADATA_DIM;

impl MapZeroNet {
    /// Create a network for a fabric with `action_count` PEs.
    ///
    /// The GAT encoders only depend on feature dimensionality, so the
    /// same weights transfer across fabrics of equal PE count (§4.5).
    #[must_use]
    pub fn new(action_count: usize, config: NetConfig) -> Self {
        // Pre-register the memo hit-rate pair so short runs that never
        // hit still show `hit: 0` in traces and metric dumps.
        mapzero_obs::counter!("nn.dfg_embed.hit", 0);
        mapzero_obs::counter!("nn.dfg_embed.miss", 0);
        let mut params = Params::new();
        let mut rng = SeedRng::new(config.seed);
        let gat_out = config.head_dim * config.heads;
        let kind = config.encoder;
        let gat_dfg1 =
            Encoder::new(kind, &mut params, DFG_DIM, config.head_dim, config.heads, &mut rng);
        let gat_dfg2 =
            Encoder::new(kind, &mut params, gat_out, config.head_dim, config.heads, &mut rng);
        let gat_cgra1 =
            Encoder::new(kind, &mut params, CGRA_DIM, config.head_dim, config.heads, &mut rng);
        let gat_cgra2 =
            Encoder::new(kind, &mut params, gat_out, config.head_dim, config.heads, &mut rng);
        let fc_meta = Linear::new(&mut params, META_DIM, config.meta_dim, &mut rng);
        let joint = gat_out * 2 + config.meta_dim;
        let trunk = Mlp::new(&mut params, joint, &[config.state_dim, config.state_dim], &mut rng);
        let policy_head =
            Mlp::new(&mut params, config.state_dim, &[config.head_hidden, action_count], &mut rng);
        let value_head = Mlp::new(&mut params, config.state_dim, &[config.head_hidden, 1], &mut rng);
        MapZeroNet {
            params,
            config,
            action_count,
            gat_dfg1,
            gat_dfg2,
            gat_cgra1,
            gat_cgra2,
            fc_meta,
            trunk,
            policy_head,
            value_head,
            optimizer: Adam::new(),
        }
    }

    /// Number of actions (PEs) this network scores.
    #[must_use]
    pub fn action_count(&self) -> usize {
        self.action_count
    }

    /// Replace the parameters with a previously-cloned snapshot and
    /// reset the optimizer state. Used by the trainer's divergence
    /// rollback: keeping Adam's moment estimates would immediately
    /// re-apply the exploded update direction the rollback just undid.
    pub fn restore_params(&mut self, params: Params) {
        self.params = params;
        self.optimizer = Adam::new();
    }

    /// The configuration used at construction.
    #[must_use]
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// Snapshot the optimizer state (Adam step count + moments) for
    /// checkpointing.
    #[must_use]
    pub fn optimizer_state(&self) -> AdamState {
        self.optimizer.export_state()
    }

    /// Restore a checkpointed optimizer state. Called *after*
    /// [`MapZeroNet::restore_params`] when resuming (restore resets the
    /// optimizer), so the resumed run takes the exact update directions
    /// the interrupted run would have.
    pub fn restore_optimizer(&mut self, state: AdamState) {
        self.optimizer.import_state(state);
    }

    /// Forward to `(masked log-softmax logits, value)` tape variables.
    fn forward(&self, g: &mut Graph, obs: &Observation) -> (VarId, VarId) {
        let x_dfg = g.input(obs.dfg_nodes.clone());
        let h1 = self.gat_dfg1.forward(g, &self.params, x_dfg, &obs.dfg_edges);
        let h2 = self.gat_dfg2.forward(g, &self.params, h1, &obs.dfg_edges);
        let dfg_emb = g.mean_rows(h2);

        let x_cgra = g.input(obs.cgra_nodes.clone());
        let c1 = self.gat_cgra1.forward(g, &self.params, x_cgra, &obs.cgra_edges);
        let c2 = self.gat_cgra2.forward(g, &self.params, c1, &obs.cgra_edges);
        let cgra_emb = g.mean_rows(c2);

        let meta_in = g.input(obs.metadata.clone());
        let meta_lin = self.fc_meta.forward(g, &self.params, meta_in);
        let meta_emb = g.relu(meta_lin);

        let joined = g.concat_cols(dfg_emb, cgra_emb);
        let joined = g.concat_cols(joined, meta_emb);
        let trunk_out = self.trunk.forward(g, &self.params, joined);
        let state = g.relu(trunk_out);

        let logits = self.policy_head.forward(g, &self.params, state);
        let log_probs = g.log_softmax_masked(logits, &obs.mask);
        let value_raw = self.value_head.forward(g, &self.params, state);
        let value = g.tanh(value_raw);
        (log_probs, value)
    }

    /// Inference: predict the action distribution and state value.
    ///
    /// Runs the tape-free [`InferCtx`] path (no autodiff graph, no
    /// per-op allocations) and memoizes the DFG-encoder branch per
    /// thread, keyed by (parameter fingerprint, DFG observation hash):
    /// successive queries whose DFG half is unchanged — every MCTS
    /// expansion between agent steps — skip the most expensive branch
    /// of the network. Bit-identical to
    /// [`MapZeroNet::predict_reference`].
    ///
    /// # Panics
    /// Panics if the observation mask has no legal action or its mask
    /// length differs from the action count.
    #[must_use]
    pub fn predict(&self, obs: &Observation) -> Prediction {
        assert_eq!(obs.mask.len(), self.action_count, "mask/action mismatch");
        crate::failpoint!("infer.predict");
        let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Infer);
        let started = mapzero_obs::enabled().then(std::time::Instant::now);
        let prediction = INFER_STATE.with(|cell| {
            let st = &mut *cell.borrow_mut();
            let InferState { ctx, dfg_index, cgra_index, memo } = st;
            ctx.begin();
            let fingerprint = self.params.fingerprint();
            let key = dfg_obs_key(obs);
            let cached = memo
                .as_ref()
                .filter(|m| m.fingerprint == fingerprint && m.key == key)
                .map(|m| ctx.load(&m.emb));
            let dfg_emb = if let Some(slot) = cached {
                mapzero_obs::counter!("nn.dfg_embed.hit");
                slot
            } else {
                mapzero_obs::counter!("nn.dfg_embed.miss");
                let slot = self.dfg_branch(ctx, dfg_index, obs);
                *memo = Some(DfgEmbedding {
                    fingerprint,
                    key,
                    emb: ctx.value(slot).clone(),
                });
                slot
            };
            self.finish_forward(ctx, cgra_index, obs, dfg_emb)
        });
        if let Some(start) = started {
            mapzero_obs::observe!(
                "nn.forward_us",
                u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
            );
        }
        prediction
    }

    /// Batched inference: one forward pass over `K` observations of the
    /// same problem, returning one [`Prediction`] per observation in
    /// input order. This is the evaluation kernel behind virtual-loss
    /// MCTS leaf batching: K skinny per-leaf matvecs become one
    /// cache-friendly matmul per layer.
    ///
    /// The K graphs are batched as a disjoint union: node features are
    /// row-stacked ([`InferCtx::load_stacked`]) and the shared edge
    /// list is tiled with per-copy row offsets
    /// ([`MessageIndex::rebuild_tiled`]), so the GAT/GCN message passes
    /// run unchanged over one big graph with no cross-observation
    /// edges. Per-graph pooling uses [`InferCtx::mean_rows_grouped`].
    ///
    /// # Determinism contract
    /// - `K == 1` delegates to [`MapZeroNet::predict`] and is therefore
    ///   **bit-identical** to [`MapZeroNet::predict_reference`].
    /// - `K > 1` is deterministic (same inputs → same outputs) and
    ///   bit-identical to the unbatched pass everywhere except the
    ///   policy log-softmax, whose normalizer uses the fused-order SIMD
    ///   reduction ([`log_softmax_masked_fused_into`]): per-observation
    ///   outputs match `predict_reference` within the documented 1e-5
    ///   kernel tolerance. Batch *composition* never affects a result
    ///   beyond that contract — every other op (matmul, scatter-add,
    ///   segment softmax, grouped mean) preserves the per-observation
    ///   accumulation order of the single-graph pass.
    ///
    /// Skips the per-thread DFG-embedding memo (within one search every
    /// leaf has a distinct placement vector, so batched leaves never
    /// repeat a DFG half); the fresh computations are counted as
    /// `nn.dfg_embed.miss`. The realized batch size is recorded in the
    /// `nn.batch.size` histogram.
    ///
    /// # Panics
    /// Panics on an empty batch, a mask/action mismatch, or (debug)
    /// observations of differing graph shape.
    #[must_use]
    pub fn predict_batch(&self, obs: &[&Observation]) -> Vec<Prediction> {
        assert!(!obs.is_empty(), "predict_batch needs at least one observation");
        mapzero_obs::observe!("nn.batch.size", obs.len() as u64);
        if obs.len() == 1 {
            return vec![self.predict(obs[0])];
        }
        for o in obs {
            assert_eq!(o.mask.len(), self.action_count, "mask/action mismatch");
        }
        debug_assert!(
            obs.iter().all(|o| {
                o.dfg_nodes.rows() == obs[0].dfg_nodes.rows()
                    && o.dfg_edges == obs[0].dfg_edges
                    && o.cgra_nodes.rows() == obs[0].cgra_nodes.rows()
                    && o.cgra_edges == obs[0].cgra_edges
            }),
            "batched observations must share one problem's graph shapes"
        );
        crate::failpoint!("infer.predict");
        let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Infer);
        let started = mapzero_obs::enabled().then(std::time::Instant::now);
        let k = obs.len();
        let predictions = INFER_STATE.with(|cell| {
            let st = &mut *cell.borrow_mut();
            let InferState { ctx, dfg_index, cgra_index, .. } = st;
            ctx.begin();

            mapzero_obs::counter!("nn.dfg_embed.miss", k as u64);
            dfg_index.rebuild_tiled(&obs[0].dfg_edges, obs[0].dfg_nodes.rows(), k);
            let dfg_mats: Vec<&Matrix> = obs.iter().map(|o| &o.dfg_nodes).collect();
            let x_dfg = ctx.load_stacked(&dfg_mats);
            let h1 = self.gat_dfg1.infer(ctx, &self.params, x_dfg, dfg_index);
            let h2 = self.gat_dfg2.infer(ctx, &self.params, h1, dfg_index);
            let dfg_emb = ctx.mean_rows_grouped(h2, k);

            cgra_index.rebuild_tiled(&obs[0].cgra_edges, obs[0].cgra_nodes.rows(), k);
            let cgra_mats: Vec<&Matrix> = obs.iter().map(|o| &o.cgra_nodes).collect();
            let x_cgra = ctx.load_stacked(&cgra_mats);
            let c1 = self.gat_cgra1.infer(ctx, &self.params, x_cgra, cgra_index);
            let c2 = self.gat_cgra2.infer(ctx, &self.params, c1, cgra_index);
            let cgra_emb = ctx.mean_rows_grouped(c2, k);

            let meta_mats: Vec<&Matrix> = obs.iter().map(|o| &o.metadata).collect();
            let meta_in = ctx.load_stacked(&meta_mats);
            let meta_emb = self.fc_meta.infer(ctx, &self.params, meta_in);
            ctx.relu(meta_emb);

            let joined = ctx.concat_cols(dfg_emb, cgra_emb);
            let joined = ctx.concat_cols(joined, meta_emb);
            let state = self.trunk.infer(ctx, &self.params, joined);
            ctx.relu(state);

            let logits = self.policy_head.infer(ctx, &self.params, state);
            let values = self.value_head.infer(ctx, &self.params, state);
            obs.iter()
                .enumerate()
                .map(|(i, o)| {
                    let mut log_probs = Vec::with_capacity(self.action_count);
                    log_softmax_masked_fused_into(
                        ctx.value(logits).row_slice(i),
                        &o.mask,
                        &mut log_probs,
                    );
                    Prediction {
                        log_probs,
                        value: mapzero_nn::simd::tanh1(ctx.value(values)[(i, 0)]),
                    }
                })
                .collect()
        });
        if let Some(start) = started {
            mapzero_obs::observe!(
                "nn.forward_us",
                u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
            );
        }
        predictions
    }

    /// Reference inference through the autodiff tape — the allocation-
    /// heavy path [`MapZeroNet::predict`] replaces. Kept public as the
    /// equivalence oracle for the hot-path proptests and as the
    /// "before" arm of the `hotpath` bench.
    ///
    /// # Panics
    /// Same contract as [`MapZeroNet::predict`].
    #[must_use]
    pub fn predict_reference(&self, obs: &Observation) -> Prediction {
        assert_eq!(obs.mask.len(), self.action_count, "mask/action mismatch");
        let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Infer);
        let mut g = Graph::new();
        let (log_probs, value) = self.forward(&mut g, obs);
        Prediction {
            log_probs: g.value(log_probs).data().to_vec(),
            value: g.value(value)[(0, 0)],
        }
    }

    /// Compute the DFG half of the forward pass for reuse across
    /// per-step predictions (see [`DfgEmbedding`]).
    #[must_use]
    pub fn dfg_embedding(&self, obs: &Observation) -> DfgEmbedding {
        INFER_STATE.with(|cell| {
            let st = &mut *cell.borrow_mut();
            let InferState { ctx, dfg_index, .. } = st;
            ctx.begin();
            let slot = self.dfg_branch(ctx, dfg_index, obs);
            DfgEmbedding {
                fingerprint: self.params.fingerprint(),
                key: dfg_obs_key(obs),
                emb: ctx.value(slot).clone(),
            }
        })
    }

    /// Predict with a precomputed DFG embedding: only the CGRA, meta
    /// and head layers run. Bit-identical to [`MapZeroNet::predict`]
    /// when `emb` matches the observation's DFG half.
    ///
    /// # Panics
    /// Panics on mask/action mismatch, and if `emb` was computed under
    /// different parameter values (a weight update or rollback since) —
    /// a stale embedding must never silently contribute to a
    /// prediction.
    #[must_use]
    pub fn predict_with_dfg(&self, obs: &Observation, emb: &DfgEmbedding) -> Prediction {
        assert_eq!(obs.mask.len(), self.action_count, "mask/action mismatch");
        assert_eq!(
            emb.fingerprint,
            self.params.fingerprint(),
            "stale DfgEmbedding: parameters changed since it was computed"
        );
        crate::failpoint!("infer.predict");
        let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Infer);
        INFER_STATE.with(|cell| {
            let st = &mut *cell.borrow_mut();
            let InferState { ctx, cgra_index, .. } = st;
            ctx.begin();
            let slot = ctx.load(&emb.emb);
            self.finish_forward(ctx, cgra_index, obs, slot)
        })
    }

    /// A cheap identity fingerprint of the current parameter values
    /// (see [`Params::fingerprint`]); prediction caches key on this to
    /// detect weight updates and rollbacks.
    #[must_use]
    pub fn params_fingerprint(&self) -> u64 {
        self.params.fingerprint()
    }

    /// DFG encoder stack → mean-pooled embedding (tape-free).
    fn dfg_branch(
        &self,
        ctx: &mut InferCtx,
        index: &mut MessageIndex,
        obs: &Observation,
    ) -> BufId {
        index.rebuild(&obs.dfg_edges, obs.dfg_nodes.rows());
        let x = ctx.load(&obs.dfg_nodes);
        let h1 = self.gat_dfg1.infer(ctx, &self.params, x, index);
        let h2 = self.gat_dfg2.infer(ctx, &self.params, h1, index);
        ctx.mean_rows(h2)
    }

    /// CGRA branch, meta branch, trunk and heads (tape-free); mirrors
    /// the second half of [`MapZeroNet::forward`] op for op.
    fn finish_forward(
        &self,
        ctx: &mut InferCtx,
        cgra_index: &mut MessageIndex,
        obs: &Observation,
        dfg_emb: BufId,
    ) -> Prediction {
        cgra_index.rebuild(&obs.cgra_edges, obs.cgra_nodes.rows());
        let x_cgra = ctx.load(&obs.cgra_nodes);
        let c1 = self.gat_cgra1.infer(ctx, &self.params, x_cgra, cgra_index);
        let c2 = self.gat_cgra2.infer(ctx, &self.params, c1, cgra_index);
        let cgra_emb = ctx.mean_rows(c2);

        let meta_in = ctx.load(&obs.metadata);
        let meta_emb = self.fc_meta.infer(ctx, &self.params, meta_in);
        ctx.relu(meta_emb);

        let joined = ctx.concat_cols(dfg_emb, cgra_emb);
        let joined = ctx.concat_cols(joined, meta_emb);
        let state = self.trunk.infer(ctx, &self.params, joined);
        ctx.relu(state);

        let logits = self.policy_head.infer(ctx, &self.params, state);
        let mut log_probs = Vec::with_capacity(self.action_count);
        log_softmax_masked_into(ctx.value(logits).row_slice(0), &obs.mask, &mut log_probs);
        let value_raw = self.value_head.infer(ctx, &self.params, state);
        let value = mapzero_nn::simd::tanh1(ctx.value(value_raw)[(0, 0)]);
        Prediction { log_probs, value }
    }

    /// One optimization step on a batch of samples, minimizing
    /// `(r − v)² − π·log p` (Alg. 1 line 21) with gradient clipping.
    ///
    /// # Panics
    /// Panics on an empty batch.
    pub fn train_batch(&mut self, batch: &[TrainSample], lr: f32, clip: f32) -> LossBreakdown {
        assert!(!batch.is_empty(), "batch must not be empty");
        let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Backprop);
        let started = mapzero_obs::enabled().then(std::time::Instant::now);
        self.params.zero_grads();
        let mut value_loss_total = 0.0f32;
        let mut policy_loss_total = 0.0f32;
        let scale = 1.0 / batch.len() as f32;
        for sample in batch {
            let mut g = Graph::new();
            let (log_probs, value) = self.forward(&mut g, &sample.observation);
            // Value loss: (r - v)^2.
            let target = g.input(Matrix::scalar(sample.value));
            let diff = g.sub(value, target);
            let vloss = g.mul(diff, diff);
            // Policy loss: -sum(pi * log p) over legal actions.
            let mut pi = sample.policy.clone();
            for (i, &legal) in sample.observation.mask.iter().enumerate() {
                if !legal {
                    pi[i] = 0.0;
                }
            }
            let pi_row = g.input(Matrix::row(&pi));
            let weighted = g.mul(pi_row, log_probs);
            let psum = g.sum_all(weighted);
            let ploss = g.scale(psum, -1.0);
            let combined = g.add(vloss, ploss);
            let loss = g.scale(combined, scale);
            g.backward(loss, &mut self.params);
            value_loss_total += g.value(vloss)[(0, 0)];
            policy_loss_total += g.value(ploss)[(0, 0)];
        }
        let grad_norm = clip_gradients(&mut self.params, clip);
        self.optimizer.step(&mut self.params, lr);
        self.params.zero_grads();
        let value_loss = value_loss_total * scale;
        let policy_loss = policy_loss_total * scale;
        if let Some(start) = started {
            mapzero_obs::observe!(
                "nn.train_us",
                u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
            );
        }
        LossBreakdown { value_loss, policy_loss, total: value_loss + policy_loss, grad_norm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::observe;
    use crate::env::MapEnv;
    use crate::problem::Problem;
    use mapzero_arch::presets;
    use mapzero_dfg::suite;

    fn sample_obs() -> Observation {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let env = MapEnv::new(&problem);
        observe(&env)
    }

    #[test]
    fn predict_produces_distribution() {
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let obs = sample_obs();
        let pred = net.predict(&obs);
        let total: f32 = pred.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "sums to {total}");
        assert!(pred.value.abs() <= 1.0);
        assert!(pred.argmax() < 16);
    }

    #[test]
    fn prediction_is_deterministic() {
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let obs = sample_obs();
        assert_eq!(net.predict(&obs), net.predict(&obs));
    }

    #[test]
    fn masked_actions_get_zero_probability() {
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let mut obs = sample_obs();
        obs.mask[3] = false;
        obs.mask[7] = false;
        let pred = net.predict(&obs);
        assert!(pred.probs()[3] < 1e-6);
        assert!(pred.probs()[7] < 1e-6);
    }

    #[test]
    fn training_reduces_loss_on_fixed_target() {
        let mut net = MapZeroNet::new(16, NetConfig::tiny());
        let obs = sample_obs();
        let mut policy = vec![0.0f32; 16];
        policy[5] = 1.0;
        let sample = TrainSample { observation: obs, policy, value: 0.8 };
        let first = net.train_batch(std::slice::from_ref(&sample), 0.01, 5.0);
        let mut last = first;
        for _ in 0..30 {
            last = net.train_batch(std::slice::from_ref(&sample), 0.01, 5.0);
        }
        assert!(
            last.total < first.total,
            "loss should fall: {} -> {}",
            first.total,
            last.total
        );
        // The policy should now prefer action 5.
        let pred = net.predict(&sample.observation);
        assert_eq!(pred.argmax(), 5);
    }

    #[test]
    fn gradient_norm_reported_positive() {
        let mut net = MapZeroNet::new(16, NetConfig::tiny());
        let obs = sample_obs();
        let sample =
            TrainSample { observation: obs, policy: vec![1.0 / 16.0; 16], value: -0.5 };
        let loss = net.train_batch(&[sample], 0.001, 10.0);
        assert!(loss.grad_norm > 0.0);
        assert!(loss.total.is_finite());
    }

    #[test]
    #[should_panic(expected = "batch must not be empty")]
    fn empty_batch_panics() {
        let mut net = MapZeroNet::new(16, NetConfig::tiny());
        let _ = net.train_batch(&[], 0.01, 1.0);
    }

    /// The tape-free predict must be bit-identical to the autodiff
    /// reference — fresh, memo-hit, and after a weight update (which
    /// must invalidate the memo via the params fingerprint).
    #[test]
    fn fast_predict_matches_reference_bitwise() {
        let mut net = MapZeroNet::new(16, NetConfig::tiny());
        let obs = sample_obs();
        let reference = net.predict_reference(&obs);
        assert_eq!(net.predict(&obs), reference, "fresh (memo miss)");
        assert_eq!(net.predict(&obs), reference, "repeat (memo hit)");

        let sample = TrainSample {
            observation: sample_obs(),
            policy: vec![1.0 / 16.0; 16],
            value: 0.3,
        };
        let _ = net.train_batch(&[sample], 0.01, 5.0);
        let updated = net.predict_reference(&obs);
        assert_ne!(updated, reference, "training should move the outputs");
        assert_eq!(net.predict(&obs), updated, "memo must invalidate on weight change");
    }

    #[test]
    fn predict_with_dfg_matches_reference() {
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let obs = sample_obs();
        let emb = net.dfg_embedding(&obs);
        assert_eq!(net.predict_with_dfg(&obs, &emb), net.predict_reference(&obs));
    }

    #[test]
    #[should_panic(expected = "stale DfgEmbedding")]
    fn stale_dfg_embedding_is_rejected() {
        let mut net = MapZeroNet::new(16, NetConfig::tiny());
        let obs = sample_obs();
        let emb = net.dfg_embedding(&obs);
        let sample = TrainSample {
            observation: sample_obs(),
            policy: vec![1.0 / 16.0; 16],
            value: 0.0,
        };
        let _ = net.train_batch(&[sample], 0.01, 5.0);
        let _ = net.predict_with_dfg(&obs, &emb);
    }

    #[test]
    fn probs_into_matches_probs() {
        let net = MapZeroNet::new(16, NetConfig::tiny());
        let pred = net.predict(&sample_obs());
        let mut buf = vec![999.0; 3]; // stale contents must be cleared
        pred.probs_into(&mut buf);
        assert_eq!(buf, pred.probs());
    }

    #[test]
    fn dfg_obs_key_tracks_assignment_column() {
        let dfg = suite::by_name("sum").unwrap();
        let cgra = presets::hrea();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let mut env = MapEnv::new(&problem);
        let before = dfg_obs_key(&observe(&env));
        let action = env.legal_actions()[0];
        let _ = env.step(action);
        let after = dfg_obs_key(&observe(&env));
        assert_ne!(before, after, "placing a node must change the DFG key");
    }
}
