//! Space/time-decoupled candidate pruning (the monomorphism idea):
//! per-DFG-node sets of feasible PEs, precomputed against the fabric
//! *before* search starts and maintained incrementally as placements
//! commit.
//!
//! The modulo schedule fixes every node's time slice up front, so
//! placement feasibility decouples into a spatial test per node:
//!
//! * **capability** — the PE's functional unit supports the opcode;
//! * **routability** — for every DFG edge `(u, v, dist)` the value must
//!   travel `hops(pe_u, pe_v)` links within `slack = t_v + dist·II −
//!   t_u` cycles. Registered-neighbour fabrics move one link per cycle
//!   (`hops ≤ slack`); circuit-switched crossbars cross any number of
//!   switches at one boundary (reachability only);
//! * **exclusivity** — two nodes sharing a modulo slot need distinct
//!   PEs (one FU claim per slot), and on row-shared-memory-bus fabrics
//!   two same-slot memory ops need distinct rows.
//!
//! [`CandidateMap::build`] intersects the capability filter with an
//! arc-consistency fixpoint over the routability constraints: a PE
//! stays a candidate for `u` only while every neighbour `v` retains a
//! compatible candidate. [`CandidateState`] then forward-checks the
//! live sets during search — each committed placement removes
//! candidates its occupancy and distance bounds invalidate, and a trail
//! restores them exactly on backtrack, so the live sets are a pure
//! function of the current placement set (the property that keeps the
//! MCTS transposition cache sound).
//!
//! The search consumes the sets three ways (all gated by
//! [`MctsConfig::prune_candidates`](crate::mcts::MctsConfig)):
//! action-mask hard pruning ([`MapEnv::search_mask`](crate::env::MapEnv::search_mask)),
//! fail-first placement ordering (scarcest node first), and
//! dead-state early termination ([`MapEnv::doomed`](crate::env::MapEnv::doomed)).

use crate::mapping::Placement;
use mapzero_arch::{Cgra, PeId, RoutingStyle};
use mapzero_dfg::{Dfg, NodeId, OpClass, Schedule};

/// One routability constraint incident to a node, from that node's own
/// perspective.
#[derive(Debug, Clone, Copy)]
struct Constraint {
    /// The node at the other end of the DFG edge.
    other: u32,
    /// Hop bound (capped at the fabric diameter + 1; an index into the
    /// precomputed reachability tables).
    bound: u32,
    /// True when the value flows from this node to `other`.
    forward: bool,
    /// Both endpoints share a modulo slot, so they also need distinct
    /// PEs.
    same_slot: bool,
}

/// Immutable candidate sets for one `(DFG, CGRA, II)` problem, plus the
/// reachability tables the live propagation needs. Built once per II
/// attempt (rebuilt on an II bump — the slacks change).
#[derive(Debug, Clone)]
pub struct CandidateMap {
    pe_count: usize,
    /// Bitset words per node.
    words: usize,
    /// Arc-consistent candidate bitsets, node-major.
    sets: Vec<u64>,
    counts: Vec<u32>,
    /// Per-node incident constraints.
    constraints: Vec<Vec<Constraint>>,
    /// `fwd[b]` is PE-major: bit `q` of row `p` set iff `hops(p→q) ≤ b`.
    fwd: Vec<Vec<u64>>,
    /// `rev[b]`: bit `q` of row `p` set iff `hops(q→p) ≤ b`.
    rev: Vec<Vec<u64>>,
    /// Nodes per modulo slot (for FU-exclusivity propagation).
    slot_nodes: Vec<Vec<u32>>,
    slot_of: Vec<u32>,
    /// Memory-class flag per node (row-bus propagation).
    is_mem: Vec<bool>,
    /// Row-shared memory bus: PEs per row, as bitsets.
    row_sets: Option<Vec<Vec<u64>>>,
    row_of: Vec<u32>,
}

#[inline]
fn test_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

impl CandidateMap {
    /// Precompute the candidate sets for `(dfg, cgra, schedule)`.
    ///
    /// Registers the `search.prune.*` counters (so metric deltas show
    /// zeros rather than absences on runs that never prune) and records
    /// the post-fixpoint set sizes in the `search.candidates.per_node`
    /// histogram.
    #[must_use]
    pub fn build(dfg: &Dfg, cgra: &Cgra, schedule: &Schedule) -> Self {
        mapzero_obs::counter!("search.prune.candidate_rebuild");
        mapzero_obs::counter!("search.prune.masked_actions", 0);
        mapzero_obs::counter!("search.prune.dead_state", 0);
        let _span = mapzero_obs::span!("candidates.build");
        let n = dfg.node_count();
        let pe_count = cgra.pe_count();
        let words = pe_count.div_ceil(64);
        let ii = schedule.ii();

        // Reachability tables from all-pairs shortest hop distances.
        // Any finite distance is at most the diameter, so bounds are
        // capped at `diameter + 1` ("any reachable PE").
        let dist = mapzero_arch::analysis::shortest_paths(cgra);
        let diameter = dist
            .iter()
            .flatten()
            .filter_map(|d| *d)
            .max()
            .unwrap_or(0);
        let max_bound = diameter + 1;
        let mut fwd = vec![vec![0u64; pe_count * words]; max_bound as usize + 1];
        let mut rev = vec![vec![0u64; pe_count * words]; max_bound as usize + 1];
        for (p, row) in dist.iter().enumerate() {
            for (q, d) in row.iter().enumerate() {
                let Some(d) = *d else { continue };
                for b in d.min(max_bound)..=max_bound {
                    set_bit(&mut fwd[b as usize][p * words..(p + 1) * words], q);
                    set_bit(&mut rev[b as usize][q * words..(q + 1) * words], p);
                }
            }
        }

        // Static capability filter.
        let mut sets = vec![0u64; n * words];
        for u in dfg.node_ids() {
            let op = dfg.node(u).opcode;
            for p in cgra.pe_ids() {
                if cgra.pe(p).capability.supports(op) {
                    set_bit(&mut sets[u.index() * words..(u.index() + 1) * words], p.index());
                }
            }
        }

        // Per-edge hop bounds. A placement of `u` at `p_u` and `v` at
        // `p_v` can only route conflict-free when `hops(p_u→p_v)` fits
        // the edge's slack (registered fabrics) or `p_v` is reachable at
        // all (circuit-switched). Self-loops constrain nothing spatial.
        let mut constraints: Vec<Vec<Constraint>> = vec![Vec::new(); n];
        for e in dfg.edges() {
            if e.src == e.dst {
                continue;
            }
            let slack = schedule.time(e.dst) + e.dist * ii - schedule.time(e.src);
            let bound = match cgra.style() {
                RoutingStyle::NeighborRegister => slack.min(max_bound),
                RoutingStyle::CircuitSwitched => max_bound,
            };
            let same_slot = schedule.modulo_slot(e.src) == schedule.modulo_slot(e.dst);
            constraints[e.src.index()].push(Constraint {
                other: e.dst.0,
                bound,
                forward: true,
                same_slot,
            });
            constraints[e.dst.index()].push(Constraint {
                other: e.src.0,
                bound,
                forward: false,
                same_slot,
            });
        }

        let slot_of: Vec<u32> = dfg.node_ids().map(|u| schedule.modulo_slot(u)).collect();
        let mut slot_nodes: Vec<Vec<u32>> = vec![Vec::new(); ii as usize];
        for u in dfg.node_ids() {
            slot_nodes[slot_of[u.index()] as usize].push(u.0);
        }
        let is_mem: Vec<bool> =
            dfg.node_ids().map(|u| dfg.node(u).opcode.class() == OpClass::Memory).collect();
        let row_of: Vec<u32> = cgra.pe_ids().map(|p| cgra.pe(p).row as u32).collect();
        let row_sets = cgra.row_shared_mem_bus().then(|| {
            let mut rows = vec![vec![0u64; words]; cgra.rows()];
            for p in cgra.pe_ids() {
                set_bit(&mut rows[cgra.pe(p).row], p.index());
            }
            rows
        });

        let mut map = CandidateMap {
            pe_count,
            words,
            sets,
            counts: vec![0; n],
            constraints,
            fwd,
            rev,
            slot_nodes,
            slot_of,
            is_mem,
            row_sets,
            row_of,
        };
        map.arc_consistency();
        for u in 0..n {
            map.counts[u] = map.node_set(NodeId(u as u32)).iter().map(|w| w.count_ones()).sum();
            mapzero_obs::observe!("search.candidates.per_node", u64::from(map.counts[u]));
        }
        map
    }

    /// Refine the static sets to arc consistency: drop a PE from a
    /// node's set while any incident constraint has no compatible
    /// candidate at the other end. Deterministic fixpoint (the result
    /// is order-independent: arc consistency has a unique largest
    /// fixpoint).
    fn arc_consistency(&mut self) {
        let n = self.constraints.len();
        let words = self.words;
        let mut scratch = vec![0u64; words];
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..n {
                for ci in 0..self.constraints[u].len() {
                    let c = self.constraints[u][ci];
                    let other = c.other as usize;
                    for p in 0..self.pe_count {
                        if !test_bit(&self.sets[u * words..(u + 1) * words], p) {
                            continue;
                        }
                        let reach = self.reach(c, p);
                        let other_set = &self.sets[other * words..(other + 1) * words];
                        for (w, s) in scratch.iter_mut().zip(other_set) {
                            *w = *s;
                        }
                        for (w, r) in scratch.iter_mut().zip(reach) {
                            *w &= *r;
                        }
                        if c.same_slot {
                            clear_bit(&mut scratch, p);
                        }
                        if scratch.iter().all(|&w| w == 0) {
                            clear_bit(&mut self.sets[u * words..(u + 1) * words], p);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    /// Reachability row for one constraint endpoint placed at `p`.
    fn reach(&self, c: Constraint, p: usize) -> &[u64] {
        let table = if c.forward { &self.fwd } else { &self.rev };
        &table[c.bound as usize][p * self.words..(p + 1) * self.words]
    }

    /// The arc-consistent candidate bitset of `u`.
    #[must_use]
    pub fn node_set(&self, u: NodeId) -> &[u64] {
        &self.sets[u.index() * self.words..(u.index() + 1) * self.words]
    }

    /// Post-fixpoint candidate count of `u`.
    #[must_use]
    pub fn candidate_count(&self, u: NodeId) -> u32 {
        self.counts[u.index()]
    }

    /// True when `p` is a static candidate for `u`.
    #[must_use]
    pub fn is_candidate(&self, u: NodeId, p: PeId) -> bool {
        test_bit(self.node_set(u), p.index())
    }

    /// Number of PEs covered by the map.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.pe_count
    }
}

/// One candidate removal on the trail: `(node, pe)`.
type Removal = (u32, u32);

/// Live candidate sets during an episode: the static [`CandidateMap`]
/// narrowed by forward checking from every committed placement, with a
/// trail so [`CandidateState::on_undo`] restores the previous state
/// exactly. Cloned with the environment (MCTS walks clone their root
/// env), so all bookkeeping lives in flat vectors.
#[derive(Debug, Clone)]
pub struct CandidateState {
    sets: Vec<u64>,
    counts: Vec<u32>,
    placed: Vec<bool>,
    /// Unplaced nodes whose live set is empty. Any positive value means
    /// the state cannot reach a conflict-free mapping ([`Self::doomed`]).
    empty_unplaced: usize,
    trail: Vec<Removal>,
    /// Per-step frames: `(trail length at entry, node placed)`.
    frames: Vec<(usize, u32)>,
}

impl CandidateState {
    /// Fresh live state equal to the static sets.
    #[must_use]
    pub fn new(map: &CandidateMap) -> Self {
        let n = map.counts.len();
        CandidateState {
            sets: map.sets.clone(),
            counts: map.counts.clone(),
            placed: vec![false; n],
            empty_unplaced: map.counts.iter().filter(|&&c| c == 0).count(),
            trail: Vec::new(),
            frames: Vec::new(),
        }
    }

    fn remove(&mut self, map: &CandidateMap, node: usize, pe: usize) {
        let words = map.words;
        let set = &mut self.sets[node * words..(node + 1) * words];
        if !test_bit(set, pe) {
            return;
        }
        clear_bit(set, pe);
        self.counts[node] -= 1;
        if self.counts[node] == 0 && !self.placed[node] {
            self.empty_unplaced += 1;
        }
        self.trail.push((node as u32, pe as u32));
    }

    /// Forward-check one committed placement: `u` landed on `p`.
    ///
    /// Removes `p` from every unplaced node sharing `u`'s modulo slot
    /// (FU exclusivity), the whole row from unplaced same-slot memory
    /// nodes on row-bus fabrics, and every PE outside the placement's
    /// reach from unplaced neighbours of `u` (distance bounds). Must be
    /// called after the environment records the placement.
    pub fn on_place(
        &mut self,
        map: &CandidateMap,
        u: NodeId,
        p: PeId,
        placements: &[Option<Placement>],
    ) {
        self.frames.push((self.trail.len(), u.0));
        let ui = u.index();
        if self.counts[ui] == 0 {
            self.empty_unplaced -= 1;
        }
        self.placed[ui] = true;

        let words = map.words;
        let slot = map.slot_of[ui] as usize;
        for &w in &map.slot_nodes[slot] {
            let wi = w as usize;
            if wi != ui && placements[wi].is_none() {
                self.remove(map, wi, p.index());
            }
        }
        if let Some(rows) = &map.row_sets {
            if map.is_mem[ui] {
                let row = &rows[map.row_of[p.index()] as usize];
                for &w in &map.slot_nodes[slot] {
                    let wi = w as usize;
                    if wi == ui || !map.is_mem[wi] || placements[wi].is_some() {
                        continue;
                    }
                    for q in bits(&self.sets[wi * words..(wi + 1) * words], row) {
                        self.remove(map, wi, q);
                    }
                }
            }
        }
        for c in &map.constraints[ui] {
            let vi = c.other as usize;
            if placements[vi].is_some() {
                continue;
            }
            let reach = map.reach(*c, p.index());
            let outside: Vec<usize> = {
                let vset = &self.sets[vi * words..(vi + 1) * words];
                vset.iter()
                    .zip(reach)
                    .enumerate()
                    .flat_map(|(w, (s, r))| {
                        let mut out = s & !r;
                        std::iter::from_fn(move || {
                            if out == 0 {
                                return None;
                            }
                            let b = out.trailing_zeros() as usize;
                            out &= out - 1;
                            Some(w * 64 + b)
                        })
                    })
                    .collect()
            };
            for q in outside {
                self.remove(map, vi, q);
            }
        }
    }

    /// Undo the most recent [`Self::on_place`] frame, restoring every
    /// candidate it removed.
    ///
    /// # Panics
    /// Panics if no frame is outstanding (an env undo/step imbalance).
    pub fn on_undo(&mut self) {
        let (start, u) = self.frames.pop().expect("candidate frame per step");
        while self.trail.len() > start {
            let (node, pe) = self.trail.pop().expect("trail at least `start` long");
            let (node, pe) = (node as usize, pe as usize);
            if self.counts[node] == 0 && !self.placed[node] {
                self.empty_unplaced -= 1;
            }
            let words = self.sets.len() / self.counts.len();
            set_bit(&mut self.sets[node * words..(node + 1) * words], pe);
            self.counts[node] += 1;
        }
        let ui = u as usize;
        self.placed[ui] = false;
        if self.counts[ui] == 0 {
            self.empty_unplaced += 1;
        }
    }

    /// True when some unplaced node has an empty live candidate set: no
    /// conflict-free completion exists from this state.
    #[must_use]
    pub fn doomed(&self) -> bool {
        self.empty_unplaced > 0
    }

    /// True when `p` is a live candidate for `u`.
    #[must_use]
    pub fn is_candidate(&self, u: NodeId, p: PeId) -> bool {
        let words = self.sets.len() / self.counts.len();
        test_bit(&self.sets[u.index() * words..(u.index() + 1) * words], p.index())
    }

    /// Live candidate count of `u`.
    #[must_use]
    pub fn candidate_count(&self, u: NodeId) -> u32 {
        self.counts[u.index()]
    }
}

/// Set bits of `a & b`, as indices.
fn bits(a: &[u64], b: &[u64]) -> Vec<usize> {
    a.iter()
        .zip(b)
        .enumerate()
        .flat_map(|(w, (x, y))| {
            let mut v = x & y;
            std::iter::from_fn(move || {
                if v == 0 {
                    return None;
                }
                let bit = v.trailing_zeros() as usize;
                v &= v - 1;
                Some(w * 64 + bit)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use mapzero_arch::presets;
    use mapzero_dfg::{DfgBuilder, Opcode};

    fn chain3() -> Dfg {
        let mut b = DfgBuilder::new("chain3");
        let a = b.node(Opcode::Load);
        let m = b.node(Opcode::Mul);
        let s = b.node(Opcode::Store);
        b.edge(a, m).unwrap();
        b.edge(m, s).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn capability_filter_excludes_incapable_pes() {
        let mut b = DfgBuilder::new("one-load");
        b.node(Opcode::Load);
        let dfg = b.finish().unwrap();
        let mut builder = mapzero_arch::CgraBuilder::new("one-mem", 2, 2)
            .interconnect(mapzero_arch::Interconnect::Mesh)
            .all_capabilities(mapzero_arch::Capability::COMPUTE);
        builder = builder.capability(0, 0, mapzero_arch::Capability::ALL);
        let cgra = builder.finish();
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let map = CandidateMap::build(&dfg, &cgra, problem.schedule());
        assert_eq!(map.candidate_count(NodeId(0)), 1);
        assert!(map.is_candidate(NodeId(0), PeId(0)));
    }

    #[test]
    fn candidate_sets_respect_distance_bounds_after_placement() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let map = CandidateMap::build(&dfg, &cgra, problem.schedule());
        let mut live = CandidateState::new(&map);
        // Place the load on PE 0. At II=1 the mul has slack 1: it must
        // sit on PE 0's neighbourhood minus PE 0 itself (FU exclusivity)
        // = {1, 2} on a 2x2 mesh.
        let mut placements = vec![None; 3];
        placements[0] = Some(Placement { pe: PeId(0), time: 0 });
        live.on_place(&map, NodeId(0), PeId(0), &placements);
        assert!(!live.is_candidate(NodeId(1), PeId(0)), "FU exclusivity");
        assert!(!live.is_candidate(NodeId(1), PeId(3)), "diagonal exceeds slack");
        assert!(live.is_candidate(NodeId(1), PeId(1)));
        assert!(live.is_candidate(NodeId(1), PeId(2)));
        assert!(!live.doomed());
    }

    #[test]
    fn undo_restores_sets_exactly() {
        let dfg = chain3();
        let cgra = presets::simple_mesh(2, 2);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let map = CandidateMap::build(&dfg, &cgra, problem.schedule());
        let mut live = CandidateState::new(&map);
        let baseline = live.clone();
        let mut placements = vec![None; 3];
        placements[0] = Some(Placement { pe: PeId(0), time: 0 });
        live.on_place(&map, NodeId(0), PeId(0), &placements);
        placements[1] = Some(Placement { pe: PeId(1), time: 1 });
        live.on_place(&map, NodeId(1), PeId(1), &placements);
        live.on_undo();
        live.on_undo();
        assert_eq!(live.sets, baseline.sets);
        assert_eq!(live.counts, baseline.counts);
        assert_eq!(live.placed, baseline.placed);
        assert_eq!(live.empty_unplaced, baseline.empty_unplaced);
    }

    #[test]
    fn doomed_when_propagation_empties_a_set() {
        // Two adds feeding a sink on a 1x3 strip at II=1: parking the
        // sources on PEs 0 and 1 leaves the sink no PE that is within
        // one hop of both and unoccupied — forward checking must empty
        // its set and flag the state doomed.
        let mut b = DfgBuilder::new("vee-strip");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        let d = b.node(Opcode::Add);
        b.edge(a, d).unwrap();
        b.edge(c, d).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(1, 3);
        let problem = Problem::new(&dfg, &cgra, 1).unwrap();
        let map = CandidateMap::build(&dfg, &cgra, problem.schedule());
        let mut live = CandidateState::new(&map);
        let mut placements = vec![None; 3];
        placements[0] = Some(Placement { pe: PeId(0), time: 0 });
        live.on_place(&map, NodeId(0), PeId(0), &placements);
        assert!(!live.doomed());
        placements[1] = Some(Placement { pe: PeId(1), time: 0 });
        live.on_place(&map, NodeId(1), PeId(1), &placements);
        assert_eq!(live.candidate_count(NodeId(2)), 0);
        assert!(live.doomed());
        live.on_undo();
        assert!(!live.doomed());
    }

    #[test]
    fn arc_consistency_prunes_statically_impossible_pes() {
        // A node with two same-slot neighbours on a 1x4 strip: the
        // middle of a 3-clique needs two distinct adjacent PEs, so strip
        // ends keep candidates but the AC fixpoint still reflects the
        // adjacency structure (every PE of the sink needs two distinct
        // neighbours in its sources' sets).
        let mut b = DfgBuilder::new("vee");
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        let d = b.node(Opcode::Add);
        b.edge(a, d).unwrap();
        b.edge(c, d).unwrap();
        let dfg = b.finish().unwrap();
        let cgra = presets::simple_mesh(1, 2);
        // II=2: a,c in slot 0, d in slot 1 — both sources same slot,
        // need distinct PEs among {0,1}; d needs both within 1 hop.
        let problem = Problem::new(&dfg, &cgra, 2).unwrap();
        let map = CandidateMap::build(&dfg, &cgra, problem.schedule());
        for u in dfg.node_ids() {
            assert!(map.candidate_count(u) > 0, "node {u} lost all candidates");
        }
    }
}
