//! Prioritized self-play replay buffer (§4.4).
//!
//! "…store the trajectories into a replay buffer of size 10,000. We
//! randomly sample a batch of size 32 once the replay buffer is full…
//! A sampling priority is maintained. Already sampled trajectories will
//! be given a lower priority in the next round of sampling."

use crate::network::TrainSample;
use mapzero_nn::SeedRng;

/// A bounded replay buffer with decay-on-sample priorities.
#[derive(Default)]
pub struct ReplayBuffer {
    capacity: usize,
    samples: Vec<TrainSample>,
    priorities: Vec<f64>,
    next_slot: usize,
}

impl ReplayBuffer {
    /// Create a buffer holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            capacity,
            samples: Vec::with_capacity(capacity.min(4096)),
            priorities: Vec::with_capacity(capacity.min(4096)),
            next_slot: 0,
        }
    }

    /// Number of stored samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// True when the buffer reached capacity (training begins then).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Maximum number of stored samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot the full buffer state for checkpointing:
    /// `(samples, priorities, next_slot)`.
    #[must_use]
    pub fn export(&self) -> (Vec<TrainSample>, Vec<f64>, usize) {
        (self.samples.clone(), self.priorities.clone(), self.next_slot)
    }

    /// Rebuild a buffer from a checkpoint snapshot, validating the
    /// invariants (`samples` and `priorities` pair up, fit in
    /// `capacity`, and `next_slot` indexes a valid eviction slot).
    ///
    /// # Errors
    /// Returns a description of the violated invariant.
    pub fn from_parts(
        capacity: usize,
        samples: Vec<TrainSample>,
        priorities: Vec<f64>,
        next_slot: usize,
    ) -> Result<Self, String> {
        if capacity == 0 {
            return Err("capacity must be positive".to_owned());
        }
        if samples.len() != priorities.len() {
            return Err(format!(
                "{} samples but {} priorities",
                samples.len(),
                priorities.len()
            ));
        }
        if samples.len() > capacity {
            return Err(format!("{} samples exceed capacity {capacity}", samples.len()));
        }
        if next_slot >= capacity {
            return Err(format!("next_slot {next_slot} out of range for capacity {capacity}"));
        }
        if priorities.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err("priorities must be finite and non-negative".to_owned());
        }
        Ok(ReplayBuffer { capacity, samples, priorities, next_slot })
    }

    /// Insert a sample with maximal priority, evicting round-robin when
    /// full.
    pub fn push(&mut self, sample: TrainSample) {
        let priority = 1.0;
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
            self.priorities.push(priority);
        } else {
            self.samples[self.next_slot] = sample;
            self.priorities[self.next_slot] = priority;
            self.next_slot = (self.next_slot + 1) % self.capacity;
        }
    }

    /// Sample a batch proportionally to priority and halve the priority
    /// of everything drawn.
    ///
    /// Returns fewer than `batch` items only when the buffer is smaller
    /// than `batch`.
    pub fn sample(&mut self, batch: usize, rng: &mut SeedRng) -> Vec<TrainSample> {
        let n = self.samples.len();
        if n == 0 {
            return Vec::new();
        }
        let want = batch.min(n);
        let mut out = Vec::with_capacity(want);
        for _ in 0..want {
            let total: f64 = self.priorities.iter().sum();
            let mut target = rng.unit() * total;
            let mut idx = n - 1;
            for (i, &p) in self.priorities.iter().enumerate() {
                if target < p {
                    idx = i;
                    break;
                }
                target -= p;
            }
            self.priorities[idx] *= 0.5;
            out.push(self.samples[idx].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::Observation;
    use mapzero_nn::Matrix;

    fn sample(tag: f32) -> TrainSample {
        TrainSample {
            observation: Observation {
                dfg_nodes: Matrix::scalar(tag),
                dfg_edges: vec![],
                cgra_nodes: Matrix::scalar(tag),
                cgra_edges: vec![],
                metadata: Matrix::scalar(tag),
                mask: vec![true],
            },
            policy: vec![1.0],
            value: tag,
        }
    }

    #[test]
    fn fills_then_evicts_round_robin() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(sample(i as f32));
        }
        assert_eq!(buf.len(), 3);
        assert!(buf.is_full());
        // Slots now hold samples 3, 4, 2 (0 and 1 evicted).
        let values: Vec<f32> = buf.samples.iter().map(|s| s.value).collect();
        assert!(values.contains(&3.0) && values.contains(&4.0) && values.contains(&2.0));
    }

    #[test]
    fn sampling_respects_batch_and_buffer_size() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(sample(i as f32));
        }
        let mut rng = SeedRng::new(0);
        assert_eq!(buf.sample(2, &mut rng).len(), 2);
        assert_eq!(buf.sample(32, &mut rng).len(), 4);
        assert!(buf.sample(1, &mut rng).len() == 1);
    }

    #[test]
    fn sampled_items_lose_priority() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(sample(0.0));
        buf.push(sample(1.0));
        let mut rng = SeedRng::new(7);
        // Draw many batches; priorities decay so both items keep being
        // drawn with nonzero probability but totals stay finite.
        let mut seen = [0usize; 2];
        for _ in 0..50 {
            for s in buf.sample(1, &mut rng) {
                seen[s.value as usize] += 1;
            }
        }
        assert!(seen[0] > 0 && seen[1] > 0, "decay must not starve items: {seen:?}");
    }

    #[test]
    fn empty_buffer_samples_nothing() {
        let mut buf = ReplayBuffer::new(4);
        let mut rng = SeedRng::new(0);
        assert!(buf.sample(8, &mut rng).is_empty());
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }

    #[test]
    fn export_import_round_trip_preserves_sampling() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(sample(i as f32));
        }
        let mut rng = SeedRng::new(9);
        let _ = buf.sample(2, &mut rng); // decay some priorities
        let (samples, priorities, next_slot) = buf.export();
        let mut restored =
            ReplayBuffer::from_parts(3, samples, priorities, next_slot).unwrap();
        // Same contents, same priorities: identical draws under the
        // same RNG stream.
        let mut rng_a = SeedRng::new(42);
        let mut rng_b = SeedRng::new(42);
        let a: Vec<f32> = buf.sample(3, &mut rng_a).iter().map(|s| s.value).collect();
        let b: Vec<f32> = restored.sample(3, &mut rng_b).iter().map(|s| s.value).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_rejects_broken_invariants() {
        assert!(ReplayBuffer::from_parts(0, vec![], vec![], 0).is_err());
        assert!(ReplayBuffer::from_parts(2, vec![sample(0.0)], vec![], 0).is_err());
        assert!(
            ReplayBuffer::from_parts(1, vec![sample(0.0), sample(1.0)], vec![1.0, 1.0], 0)
                .is_err()
        );
        assert!(ReplayBuffer::from_parts(2, vec![sample(0.0)], vec![1.0], 2).is_err());
        assert!(ReplayBuffer::from_parts(2, vec![sample(0.0)], vec![f64::NAN], 0).is_err());
        assert!(ReplayBuffer::from_parts(2, vec![sample(0.0)], vec![1.0], 0).is_ok());
    }
}
