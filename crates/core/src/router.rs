//! Routing over the modulo routing resource graph.
//!
//! Two timing models, matching §3.3:
//!
//! * **Registered neighbour routing** (mesh-class fabrics): a value
//!   advances at most one link per cycle and parks in a PE output
//!   register each cycle. Placement and routing are coupled; the router
//!   runs a 0/1-cost Dijkstra over `(PE, cycle)` states, where reusing a
//!   register already claimed by the same signal is free.
//! * **Circuit-switched crossbar** (HyCube): a value can traverse many
//!   switches within one cycle boundary ("clockless repeaters", §3.2.2).
//!   The router picks a departure cycle, holds the value in the
//!   producer register until then, BFS-routes through free switches at
//!   the boundary, and parks it in the consumer register until the
//!   consumption cycle.
//!
//! Values of the same signal (producer node) share resources, so a
//! multi-fan-out net is routed as a tree. Lifetimes longer than II rely
//! on rotating registers (the DRESC convention).

use crate::ledger::Ledger;
use crate::mapping::{Placement, RouteHop};
use mapzero_arch::{Cgra, PeId, RoutingStyle};
use mapzero_dfg::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A successful route: the hops claimed and the number of *new*
/// resources consumed (shared hops cost nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Resources along the route, in traversal order.
    pub hops: Vec<RouteHop>,
    /// Newly-claimed resource count (the routing-penalty contribution of
    /// a successful route).
    pub cost: usize,
}

/// Route the value of `src` (placed at `from`) to `dst` (placed at `to`)
/// whose consumption deadline is `to.time + dist * ii`.
///
/// On success the route's resources are claimed in `ledger` and the
/// route is returned; on failure the ledger is left untouched and
/// `None` is returned.
pub fn route_edge(
    cgra: &Cgra,
    ledger: &mut Ledger,
    src: NodeId,
    from: Placement,
    to: Placement,
    dist: u32,
) -> Option<Route> {
    // Chaos-testing hook: tests arm this failpoint (e.g. a countdown
    // panic) to prove the supervisor contains faults from deep inside
    // the mapper.
    crate::failpoint!("route.pre");
    let _phase = mapzero_obs::phase::phase_guard(mapzero_obs::Phase::Route);
    let ii = ledger.ii();
    let deadline = to.time + dist * ii;
    debug_assert!(from.time < deadline, "schedule must leave at least one cycle");
    let result = match cgra.style() {
        RoutingStyle::NeighborRegister => {
            route_registered(cgra, ledger, src, from.pe, from.time, to.pe, deadline)
        }
        RoutingStyle::CircuitSwitched => {
            route_circuit_switched(cgra, ledger, src, from.pe, from.time, to.pe, deadline)
        }
    };
    match &result {
        Some(_) => mapzero_obs::counter!("route.routed"),
        None => mapzero_obs::counter!("route.conflicts"),
    }
    result
}

/// Dijkstra over `(pe, cycle)` states for registered neighbour routing.
fn route_registered(
    cgra: &Cgra,
    ledger: &mut Ledger,
    signal: NodeId,
    from: PeId,
    t_start: u32,
    to: PeId,
    deadline: u32,
) -> Option<Route> {
    let ii = ledger.ii();
    let pes = cgra.pe_count();
    let horizon = (deadline - t_start) as usize; // steps available
    // state index: step (1-based cycle offset) * pes + pe
    let nstates = horizon * pes;
    let mut best = vec![usize::MAX; nstates];
    let mut prev: Vec<Option<usize>> = vec![None; nstates];
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    let state = |step: usize, pe: PeId| (step - 1) * pes + pe.index();

    // First hop: the value lands in the producer's own output register
    // one cycle after issue; consumers later read it over a link.
    {
        let slot = (t_start + 1) % ii;
        if ledger.reg_available(from, slot, signal) {
            let cost = usize::from(ledger.reg(from, slot).is_none());
            let s = state(1, from);
            // `horizon == 0` (a degenerate schedule) means no states at
            // all: the route is simply unreachable.
            if let Some(b) = best.get_mut(s) {
                *b = cost;
                heap.push(Reverse((cost, s)));
            }
        }
    }

    let mut goal: Option<usize> = None;
    while let Some(Reverse((cost, s))) = heap.pop() {
        // Heap entries only ever hold indices produced by `state()`, so
        // `s < nstates`; treat a stale/foreign entry as already beaten.
        if best.get(s).is_none_or(|&b| cost > b) {
            continue;
        }
        let step = s / pes + 1;
        let pe = PeId((s % pes) as u32);
        let tau = t_start + step as u32;
        if tau == deadline {
            // The consumer reads from its own or a neighbour's register.
            if pe == to || cgra.links_from(pe).contains(&to) {
                goal = Some(s);
                break;
            }
            continue;
        }
        let next_slot = (tau + 1) % ii;
        for &next in std::iter::once(&pe).chain(cgra.links_from(pe)) {
            if !ledger.reg_available(next, next_slot, signal) {
                continue;
            }
            let hop_cost = usize::from(ledger.reg(next, next_slot).is_none());
            let ns = state(step + 1, next);
            let ncost = cost + hop_cost;
            // `step + 1 <= horizon` here (tau < deadline), so `ns` is in
            // range; skip the relaxation rather than panic if not.
            if best.get(ns).is_some_and(|&b| ncost < b) {
                best[ns] = ncost;
                prev[ns] = Some(s);
                heap.push(Reverse((ncost, ns)));
            }
        }
    }

    let goal = goal?;
    // Reconstruct and claim. Predecessors were recorded for every state
    // the heap relaxed, so the walk terminates at the first hop.
    let mut chain = Vec::new();
    let mut cur = Some(goal);
    while let Some(s) = cur {
        let step = s / pes + 1;
        let pe = PeId((s % pes) as u32);
        chain.push((pe, (t_start + step as u32) % ii));
        cur = prev.get(s).copied().flatten();
    }
    chain.reverse();
    let cp = ledger.checkpoint();
    let mut hops = Vec::with_capacity(chain.len());
    let mut cost = 0;
    for (pe, slot) in chain {
        let was_free = ledger.reg(pe, slot).is_none();
        if !ledger.claim_reg(pe, slot, signal) {
            ledger.undo_to(cp);
            return None;
        }
        cost += usize::from(was_free);
        hops.push(RouteHop::Register { pe, slot });
    }
    Some(Route { hops, cost })
}

/// Circuit-switched routing: pick a departure cycle, cross the crossbar
/// in one boundary, wait at the destination.
fn route_circuit_switched(
    cgra: &Cgra,
    ledger: &mut Ledger,
    signal: NodeId,
    from: PeId,
    t_start: u32,
    to: PeId,
    deadline: u32,
) -> Option<Route> {
    let ii = ledger.ii();
    let mut best: Option<(usize, Vec<RouteHop>)> = None;

    // Same-PE transfer: the value stays in the producer's register.
    if from == to {
        let cp = ledger.checkpoint();
        let mut hops = Vec::new();
        let mut cost = 0;
        let mut ok = true;
        for tau in t_start + 1..deadline {
            let slot = tau % ii;
            let was_free = ledger.reg(from, slot).is_none();
            if !ledger.claim_reg(from, slot, signal) {
                ok = false;
                break;
            }
            cost += usize::from(was_free);
            hops.push(RouteHop::Register { pe: from, slot });
        }
        if ok {
            ledger.undo_to(cp);
            best = Some((cost, hops));
        } else {
            ledger.undo_to(cp);
        }
    } else {
        for t_dep in t_start..deadline {
            let candidate = try_departure(
                cgra, ledger, signal, from, t_start, to, deadline, t_dep,
            );
            if let Some((cost, hops)) = candidate {
                let better = best.as_ref().is_none_or(|(c, _)| cost < *c);
                if better {
                    best = Some((cost, hops));
                    if cost == 0 {
                        break;
                    }
                }
            }
        }
    }

    let (_, hops) = best?;
    // Claim for real.
    let cp = ledger.checkpoint();
    let mut cost = 0;
    for &hop in &hops {
        let ok = match hop {
            RouteHop::Register { pe, slot } => {
                let was_free = ledger.reg(pe, slot).is_none();
                let ok = ledger.claim_reg(pe, slot, signal);
                cost += usize::from(ok && was_free);
                ok
            }
            RouteHop::Switch { pe, slot } => {
                let was_free = ledger.switch(pe, slot).is_none();
                let ok = ledger.claim_switch(pe, slot, signal);
                cost += usize::from(ok && was_free);
                ok
            }
        };
        if !ok {
            ledger.undo_to(cp);
            return None;
        }
    }
    Some(Route { hops, cost })
}

/// Evaluate one departure cycle without leaving claims behind. Returns
/// `(new-resource cost, hops)` on success.
#[allow(clippy::too_many_arguments)]
fn try_departure(
    cgra: &Cgra,
    ledger: &mut Ledger,
    signal: NodeId,
    from: PeId,
    t_start: u32,
    to: PeId,
    deadline: u32,
    t_dep: u32,
) -> Option<(usize, Vec<RouteHop>)> {
    let ii = ledger.ii();
    let arrival = t_dep + 1;
    debug_assert!(arrival <= deadline);
    let mut hops = Vec::new();
    let mut cost = 0usize;
    // Hold at the producer until departure.
    for tau in t_start + 1..=t_dep {
        let slot = tau % ii;
        if !ledger.reg_available(from, slot, signal) {
            return None;
        }
        cost += usize::from(ledger.reg(from, slot).is_none());
        hops.push(RouteHop::Register { pe: from, slot });
    }
    // Cross the crossbar at the boundary entering `arrival`.
    let slot = arrival % ii;
    let path = crossbar_bfs(cgra, ledger, signal, from, to, slot)?;
    for &pe in &path {
        cost += usize::from(ledger.switch(pe, slot).is_none());
        hops.push(RouteHop::Switch { pe, slot });
    }
    // Wait at the consumer until the consumption cycle.
    if arrival < deadline {
        for tau in arrival..=deadline {
            let slot = tau % ii;
            if !ledger.reg_available(to, slot, signal) {
                return None;
            }
            cost += usize::from(ledger.reg(to, slot).is_none());
            hops.push(RouteHop::Register { pe: to, slot });
        }
    }
    Some((cost, hops))
}

/// BFS through the crossbar grid at one boundary slot: returns the
/// intermediate PEs (excluding endpoints) of a shortest path whose
/// switches are available to `signal`.
fn crossbar_bfs(
    cgra: &Cgra,
    ledger: &Ledger,
    signal: NodeId,
    from: PeId,
    to: PeId,
    slot: u32,
) -> Option<Vec<PeId>> {
    if cgra.links_from(from).contains(&to) {
        return Some(Vec::new());
    }
    // Every PeId the fabric hands out (links_from) is < pe_count, so
    // the `seen`/`prev` lookups below cannot miss; an out-of-range id
    // degrades to "already seen" (skipped) instead of a panic.
    let pes = cgra.pe_count();
    let mut prev: Vec<Option<PeId>> = vec![None; pes];
    let mut seen = vec![false; pes];
    if let Some(c) = seen.get_mut(from.index()) {
        *c = true;
    }
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(x) = queue.pop_front() {
        for &y in cgra.links_from(x) {
            if seen.get(y.index()).copied().unwrap_or(true) {
                continue;
            }
            if y == to {
                if let Some(p) = prev.get_mut(y.index()) {
                    *p = Some(x);
                }
                let mut path = Vec::new();
                let mut cur = x;
                // Every enqueued PE got its predecessor recorded before
                // insertion, so the walk back to `from` cannot miss.
                while cur != from {
                    path.push(cur);
                    let Some(p) = prev[cur.index()] else {
                        debug_assert!(false, "bfs predecessor missing for {cur}");
                        return None;
                    };
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            // Intermediate hop: the switch must be usable.
            if ledger.switch_available(y, slot, signal) {
                if let Some(c) = seen.get_mut(y.index()) {
                    *c = true;
                }
                if let Some(p) = prev.get_mut(y.index()) {
                    *p = Some(x);
                }
                queue.push_back(y);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapzero_arch::presets;

    fn place(pe: u32, time: u32) -> Placement {
        Placement { pe: PeId(pe), time }
    }

    mod registered {
        use super::*;

        #[test]
        fn adjacent_single_cycle() {
            let cgra = presets::simple_mesh(2, 2);
            let mut ledger = Ledger::new(&cgra, 1);
            let r =
                route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(1, 1), 0)
                    .unwrap();
            // One register: the producer's output read by the neighbour.
            assert_eq!(r.hops.len(), 1);
            assert_eq!(r.cost, 1);
        }

        #[test]
        fn multi_hop_needs_cycles() {
            // 3x3 mesh, corner to corner is 4 hops; consumer at t=2 can
            // only be reached if it is <= 2 hops away.
            let cgra = presets::simple_mesh(3, 3);
            let mut ledger = Ledger::new(&cgra, 8);
            // pe0 -> pe8 with deadline 2 cycles: impossible.
            assert!(route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(8, 2), 0)
                .is_none());
            // With 4 cycles of slack it works.
            let r = route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(8, 4), 0)
                .unwrap();
            assert!(!r.hops.is_empty());
        }

        #[test]
        fn fanout_shares_resources() {
            let cgra = presets::simple_mesh(2, 2);
            let mut ledger = Ledger::new(&cgra, 2);
            let a =
                route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(1, 1), 0)
                    .unwrap();
            // Second consumer of the same signal at the same cycle: the
            // producer register is shared, cost 0.
            let b =
                route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(2, 1), 0)
                    .unwrap();
            assert_eq!(a.cost, 1);
            assert_eq!(b.cost, 0, "fan-out must share the producer register");
        }

        #[test]
        fn conflicting_signals_blocked() {
            let cgra = presets::simple_mesh(1, 3);
            let mut ledger = Ledger::new(&cgra, 1);
            // Signal A holds pe1's register at slot 0 (the only slot).
            assert!(ledger.claim_reg(PeId(1), 0, NodeId(42)));
            // pe0 -> pe2 must pass through pe1's register at II=1 and a
            // 2-cycle deadline; blocked by signal 42. Direct neighbour
            // read also impossible (pe0 is not adjacent to pe2).
            let got =
                route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(2, 2), 0);
            assert!(got.is_none());
        }

        #[test]
        fn failed_route_leaves_no_claims() {
            let cgra = presets::simple_mesh(1, 3);
            let mut ledger = Ledger::new(&cgra, 1);
            assert!(ledger.claim_reg(PeId(1), 0, NodeId(42)));
            let cp = ledger.checkpoint();
            let _ = route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(2, 2), 0);
            // Checkpoint still valid == nothing appended.
            ledger.undo_to(cp);
            assert_eq!(ledger.reg(PeId(1), 0), Some(NodeId(42)));
        }

        #[test]
        fn self_cycle_routes_in_place() {
            let cgra = presets::simple_mesh(2, 2);
            let mut ledger = Ledger::new(&cgra, 1);
            // u -> u with dist 1 at II=1: deadline = t+1.
            let r = route_edge(&cgra, &mut ledger, NodeId(3), place(0, 5), place(0, 5), 1)
                .unwrap();
            assert_eq!(r.hops.len(), 1);
        }

        #[test]
        fn waiting_in_place_allowed() {
            let cgra = presets::simple_mesh(2, 2);
            let mut ledger = Ledger::new(&cgra, 4);
            // Producer at t=0, consumer 3 cycles later on a neighbour.
            let r = route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(1, 3), 0)
                .unwrap();
            assert_eq!(r.hops.len(), 3, "value parks for three cycles");
        }
    }

    mod circuit_switched {
        use super::*;

        #[test]
        fn long_distance_single_cycle() {
            // HyCube: corner to corner within one cycle.
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 1);
            let r = route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(15, 1), 0)
                .unwrap();
            // Only switches, no waiting registers.
            assert!(r.hops.iter().all(|h| matches!(h, RouteHop::Switch { .. })));
            assert!(!r.hops.is_empty());
        }

        #[test]
        fn adjacent_uses_no_switches() {
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 1);
            let r = route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(1, 1), 0)
                .unwrap();
            assert!(r.hops.is_empty());
            assert_eq!(r.cost, 0);
        }

        #[test]
        fn waiting_claims_registers() {
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 4);
            let r = route_edge(&cgra, &mut ledger, NodeId(0), place(0, 0), place(1, 3), 0)
                .unwrap();
            assert!(r.hops.iter().any(|h| matches!(h, RouteHop::Register { .. })));
        }

        #[test]
        fn switch_congestion_forces_detour_or_failure() {
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 1);
            // Block the entire second column's switches with another
            // signal at the only slot.
            for row in 0..4 {
                assert!(ledger.claim_switch(cgra.at(row, 1), 0, NodeId(99)));
            }
            // pe(0,0) -> pe(0,2) must cross column 1; all switches are
            // blocked, so either it routes around... but column 1 is a
            // full wall on a 4x4 mesh. It must fail.
            let got = route_edge(
                &cgra,
                &mut ledger,
                NodeId(0),
                place(0, 0),
                Placement { pe: cgra.at(0, 2), time: 1 },
                0,
            );
            assert!(got.is_none());
        }

        #[test]
        fn same_pe_transfer() {
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 4);
            let r = route_edge(&cgra, &mut ledger, NodeId(1), place(5, 0), place(5, 2), 0)
                .unwrap();
            assert_eq!(r.hops.len(), 1); // parks one intermediate cycle
        }

        #[test]
        fn same_pe_back_to_back_needs_no_resources() {
            // Consumer on the same PE one cycle later: direct register
            // feedback, zero claims.
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 2);
            let r = route_edge(&cgra, &mut ledger, NodeId(1), place(5, 0), place(5, 1), 0)
                .unwrap();
            assert!(r.hops.is_empty());
            assert_eq!(r.cost, 0);
        }

        #[test]
        fn back_edge_wraps_across_iterations() {
            // Self-cycle at II = 2: producer at t=1, consumer at t=1 of
            // the next iteration (deadline t=3).
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 2);
            let r = route_edge(&cgra, &mut ledger, NodeId(0), place(3, 1), place(3, 1), 1)
                .unwrap();
            assert!(!r.hops.is_empty());
            for hop in &r.hops {
                let crate::mapping::RouteHop::Register { pe, .. } = hop else {
                    panic!("self route stays in registers");
                };
                assert_eq!(*pe, PeId(3));
            }
        }

        #[test]
        fn crossbar_fanout_shares_switches() {
            // Two consumers behind the same first hop: the shared switch
            // is claimed once.
            let cgra = presets::hycube();
            let mut ledger = Ledger::new(&cgra, 1);
            // pe(0,0) -> pe(0,2): crosses the switch at (0,1).
            let a = route_edge(
                &cgra, &mut ledger, NodeId(0), place(0, 0),
                Placement { pe: cgra.at(0, 2), time: 1 }, 0,
            ).unwrap();
            // pe(0,0) -> pe(0,3): reuses (0,1) and claims (0,2).
            let b = route_edge(
                &cgra, &mut ledger, NodeId(0), place(0, 0),
                Placement { pe: cgra.at(0, 3), time: 1 }, 0,
            ).unwrap();
            assert_eq!(a.cost, 1);
            assert!(b.cost <= 2, "shared prefix must cap the cost, got {}", b.cost);
        }
    }
}
