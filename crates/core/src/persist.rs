//! Binary serialization of resumable training state.
//!
//! The weight file (`net_<pe>.mzw`, [`mapzero_nn::serialize`]) only
//! captures the parameters; continuing a killed run *bit-for-bit* also
//! needs everything else the epoch loop consumes: the replay buffer
//! (samples + priorities + eviction cursor), the RNG stream position,
//! the curriculum position (next epoch), the optimizer moments, the LR
//! divergence penalty and retry allowance, and the metrics recorded so
//! far. [`TrainState`] bundles those; `trainer.mzt` is its on-disk
//! form, stored alongside the weights inside one checkpoint generation.
//!
//! Layout (little-endian): magic `MZT1`, u32 version, then the fields
//! in declaration order. Decoding is defensive: every read is
//! length-checked first, so a torn or hostile payload yields
//! [`CheckpointError::Corrupt`], never a panic — the generation
//! manifest's checksum normally catches corruption first, but the
//! decoder must not rely on it.

use crate::checkpoint::CheckpointError;
use crate::embed::Observation;
use crate::network::TrainSample;
use crate::train::{EpochMetrics, TrainConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mapzero_nn::{AdamState, Matrix, RngState};

/// Canonical payload name of the trainer state inside a generation.
pub const TRAINER_STATE_FILE: &str = "trainer.mzt";

const MAGIC: &[u8; 4] = b"MZT1";
const VERSION: u32 = 1;

/// Everything (beyond the network weights) needed to continue a
/// training run exactly where it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Fingerprint of the [`TrainConfig`] that produced this state;
    /// resuming under a different configuration is refused.
    pub fingerprint: u64,
    /// RNG stream position.
    pub rng: RngState,
    /// Curriculum position: the next epoch to run.
    pub next_epoch: u32,
    /// Rollback retries already consumed.
    pub retries: u32,
    /// Divergence-rollback LR multiplier in effect.
    pub lr_penalty: f32,
    /// Rollbacks performed so far (for the resumed metrics).
    pub rollbacks: u32,
    /// Per-epoch metrics recorded so far.
    pub epochs: Vec<EpochMetrics>,
    /// Optimizer moments + step count.
    pub adam: AdamState,
    /// Replay-buffer samples.
    pub samples: Vec<TrainSample>,
    /// Replay-buffer priorities (pairs with `samples`).
    pub priorities: Vec<f64>,
    /// Replay-buffer round-robin eviction cursor.
    pub next_slot: u64,
}

/// A stable fingerprint of the configuration fields that shape the
/// training stream. Two configs with equal fingerprints generate the
/// same curriculum, batch schedule and RNG demand, so a checkpoint from
/// one resumes correctly under the other.
#[must_use]
pub fn config_fingerprint(config: &TrainConfig) -> u64 {
    let rendered = format!(
        "seed={};epochs={};eppe={};batch={};updates={};cap={};aug={};curr={:?};cps={};lr={:08x}/{:08x}/{}/{:08x}",
        config.seed,
        config.epochs,
        config.episodes_per_epoch,
        config.batch_size,
        config.updates_per_epoch,
        config.replay_capacity,
        config.augment_copies,
        config.curriculum_nodes,
        config.curriculum_per_size,
        config.lr.initial.to_bits(),
        config.lr.decay.to_bits(),
        config.lr.step_every,
        config.lr.floor.to_bits(),
    );
    crate::checkpoint::fnv1a64(rendered.as_bytes())
}

fn corrupt(what: &str) -> CheckpointError {
    CheckpointError::Corrupt(format!("trainer state: {what}"))
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        return Err(corrupt(&format!("truncated reading {what}")));
    }
    Ok(())
}

fn put_matrix(out: &mut BytesMut, m: &Matrix) {
    out.put_u32_le(m.rows() as u32);
    out.put_u32_le(m.cols() as u32);
    for &v in m.data() {
        out.put_f32_le(v);
    }
}

fn get_matrix(buf: &mut Bytes) -> Result<Matrix, CheckpointError> {
    need(buf, 8, "matrix header")?;
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let count = rows
        .checked_mul(cols)
        .filter(|&c| c <= buf.remaining() / 4)
        .ok_or_else(|| corrupt("matrix payload overruns buffer"))?;
    let data: Vec<f32> = (0..count).map(|_| buf.get_f32_le()).collect();
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_edges(out: &mut BytesMut, edges: &[(usize, usize)]) {
    out.put_u32_le(edges.len() as u32);
    for &(a, b) in edges {
        out.put_u32_le(a as u32);
        out.put_u32_le(b as u32);
    }
}

fn get_edges(buf: &mut Bytes) -> Result<Vec<(usize, usize)>, CheckpointError> {
    need(buf, 4, "edge count")?;
    let count = buf.get_u32_le() as usize;
    need(buf, count.saturating_mul(8), "edge list")?;
    Ok((0..count)
        .map(|_| (buf.get_u32_le() as usize, buf.get_u32_le() as usize))
        .collect())
}

fn put_observation(out: &mut BytesMut, obs: &Observation) {
    put_matrix(out, &obs.dfg_nodes);
    put_edges(out, &obs.dfg_edges);
    put_matrix(out, &obs.cgra_nodes);
    put_edges(out, &obs.cgra_edges);
    put_matrix(out, &obs.metadata);
    out.put_u32_le(obs.mask.len() as u32);
    for &bit in &obs.mask {
        out.put_u8(u8::from(bit));
    }
}

fn get_observation(buf: &mut Bytes) -> Result<Observation, CheckpointError> {
    let dfg_nodes = get_matrix(buf)?;
    let dfg_edges = get_edges(buf)?;
    let cgra_nodes = get_matrix(buf)?;
    let cgra_edges = get_edges(buf)?;
    let metadata = get_matrix(buf)?;
    need(buf, 4, "mask length")?;
    let mask_len = buf.get_u32_le() as usize;
    need(buf, mask_len, "mask bits")?;
    let mask = (0..mask_len).map(|_| buf.get_u8() != 0).collect();
    Ok(Observation { dfg_nodes, dfg_edges, cgra_nodes, cgra_edges, metadata, mask })
}

fn put_sample(out: &mut BytesMut, sample: &TrainSample) {
    put_observation(out, &sample.observation);
    out.put_u32_le(sample.policy.len() as u32);
    for &p in &sample.policy {
        out.put_f32_le(p);
    }
    out.put_f32_le(sample.value);
}

fn get_sample(buf: &mut Bytes) -> Result<TrainSample, CheckpointError> {
    let observation = get_observation(buf)?;
    need(buf, 4, "policy length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len.saturating_mul(4) + 4, "policy + value")?;
    let policy = (0..len).map(|_| buf.get_f32_le()).collect();
    let value = buf.get_f32_le();
    Ok(TrainSample { observation, policy, value })
}

fn put_epoch(out: &mut BytesMut, e: &EpochMetrics) {
    out.put_u32_le(e.epoch);
    out.put_f32_le(e.total_loss);
    out.put_f32_le(e.value_loss);
    out.put_f32_le(e.policy_loss);
    out.put_f64_le(e.avg_reward);
    out.put_f64_le(e.eval_penalty);
    out.put_f32_le(e.lr);
    out.put_f64_le(e.success_rate);
}

fn get_epoch(buf: &mut Bytes) -> Result<EpochMetrics, CheckpointError> {
    need(buf, 5 * 4 + 3 * 8, "epoch metrics")?;
    Ok(EpochMetrics {
        epoch: buf.get_u32_le(),
        total_loss: buf.get_f32_le(),
        value_loss: buf.get_f32_le(),
        policy_loss: buf.get_f32_le(),
        avg_reward: buf.get_f64_le(),
        eval_penalty: buf.get_f64_le(),
        lr: buf.get_f32_le(),
        success_rate: buf.get_f64_le(),
    })
}

/// Serialize a [`TrainState`] into its on-disk form.
#[must_use]
pub fn encode_train_state(state: &TrainState) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u64_le(state.fingerprint);
    out.put_u64_le(state.rng.seed);
    out.put_u64_le(state.rng.draws);
    out.put_u32_le(state.next_epoch);
    out.put_u32_le(state.retries);
    out.put_f32_le(state.lr_penalty);
    out.put_u32_le(state.rollbacks);
    out.put_u32_le(state.epochs.len() as u32);
    for e in &state.epochs {
        put_epoch(&mut out, e);
    }
    out.put_u64_le(state.adam.t);
    out.put_u32_le(state.adam.m.len() as u32);
    for m in &state.adam.m {
        put_matrix(&mut out, m);
    }
    for v in &state.adam.v {
        put_matrix(&mut out, v);
    }
    out.put_u32_le(state.samples.len() as u32);
    for s in &state.samples {
        put_sample(&mut out, s);
    }
    for &p in &state.priorities {
        out.put_f64_le(p);
    }
    out.put_u64_le(state.next_slot);
    out.freeze().as_ref().to_vec()
}

/// Decode a [`TrainState`] from bytes.
///
/// # Errors
/// Returns [`CheckpointError::Corrupt`] on any malformed, truncated or
/// oversized payload — never panics.
pub fn decode_train_state(bytes: &[u8]) -> Result<TrainState, CheckpointError> {
    let mut buf = Bytes::from(bytes.to_vec());
    need(&buf, 8, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    need(&buf, 8 * 3 + 4 * 4, "fixed fields")?;
    let fingerprint = buf.get_u64_le();
    let rng = RngState { seed: buf.get_u64_le(), draws: buf.get_u64_le() };
    let next_epoch = buf.get_u32_le();
    let retries = buf.get_u32_le();
    let lr_penalty = buf.get_f32_le();
    let rollbacks = buf.get_u32_le();
    need(&buf, 4, "epoch count")?;
    let epoch_count = buf.get_u32_le() as usize;
    let epochs = (0..epoch_count).map(|_| get_epoch(&mut buf)).collect::<Result<_, _>>()?;
    need(&buf, 12, "adam header")?;
    let adam_t = buf.get_u64_le();
    let moment_count = buf.get_u32_le() as usize;
    let m: Vec<Matrix> =
        (0..moment_count).map(|_| get_matrix(&mut buf)).collect::<Result<_, _>>()?;
    let v: Vec<Matrix> =
        (0..moment_count).map(|_| get_matrix(&mut buf)).collect::<Result<_, _>>()?;
    need(&buf, 4, "sample count")?;
    let sample_count = buf.get_u32_le() as usize;
    let samples: Vec<TrainSample> =
        (0..sample_count).map(|_| get_sample(&mut buf)).collect::<Result<_, _>>()?;
    need(&buf, sample_count.saturating_mul(8) + 8, "priorities + next_slot")?;
    let priorities = (0..sample_count).map(|_| buf.get_f64_le()).collect();
    let next_slot = buf.get_u64_le();
    if buf.remaining() != 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok(TrainState {
        fingerprint,
        rng,
        next_epoch,
        retries,
        lr_penalty,
        rollbacks,
        epochs,
        adam: AdamState { t: adam_t, m, v },
        samples,
        priorities,
        next_slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> TrainState {
        let obs = Observation {
            dfg_nodes: Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            dfg_edges: vec![(0, 1), (1, 0)],
            cgra_nodes: Matrix::from_vec(1, 2, vec![0.5, -0.5]),
            cgra_edges: vec![(0, 0)],
            metadata: Matrix::from_vec(1, 1, vec![9.0]),
            mask: vec![true, false, true],
        };
        TrainState {
            fingerprint: 0xfeed,
            rng: RngState { seed: 7, draws: 123 },
            next_epoch: 4,
            retries: 1,
            lr_penalty: 0.5,
            rollbacks: 2,
            epochs: vec![EpochMetrics {
                epoch: 3,
                total_loss: 0.25,
                value_loss: 0.1,
                policy_loss: 0.15,
                avg_reward: -12.5,
                eval_penalty: -100.0,
                lr: 3e-3,
                success_rate: 0.75,
            }],
            adam: AdamState {
                t: 9,
                m: vec![Matrix::from_vec(1, 2, vec![0.1, 0.2])],
                v: vec![Matrix::from_vec(1, 2, vec![0.3, 0.4])],
            },
            samples: vec![TrainSample {
                observation: obs,
                policy: vec![0.2, 0.8],
                value: -0.5,
            }],
            priorities: vec![0.75],
            next_slot: 0,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let state = sample_state();
        let bytes = encode_train_state(&state);
        let back = decode_train_state(&bytes).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn truncation_at_every_offset_is_a_clean_error() {
        let bytes = encode_train_state(&sample_state());
        for cut in 0..bytes.len() {
            let err = decode_train_state(&bytes[..cut])
                .expect_err("every truncation must be rejected");
            assert!(matches!(err, CheckpointError::Corrupt(_)), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_train_state(&sample_state());
        bytes.push(0);
        assert!(decode_train_state(&bytes).is_err());
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = encode_train_state(&sample_state());
        bytes[0] = b'X';
        assert!(decode_train_state(&bytes).is_err());
        let mut bytes = encode_train_state(&sample_state());
        bytes[4] = 99;
        assert!(decode_train_state(&bytes).is_err());
    }

    #[test]
    fn oversized_counts_rejected_without_allocation_blowup() {
        // Patch the epoch count (fixed offset 48) to u32::MAX: the
        // decoder must reject it on the length check, not allocate.
        let mut bytes = encode_train_state(&sample_state());
        bytes[48..52].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_train_state(&bytes).expect_err("oversized count");
        assert!(matches!(err, CheckpointError::Corrupt(_)));
    }

    #[test]
    fn fingerprint_tracks_stream_shaping_fields() {
        let base = TrainConfig::fast_test();
        let same = base;
        assert_eq!(config_fingerprint(&base), config_fingerprint(&same));
        let other_seed = TrainConfig { seed: base.seed + 1, ..base };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_seed));
        let other_epochs = TrainConfig { epochs: base.epochs + 1, ..base };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_epochs));
        // Non-shaping fields (wall-clock deadline) don't change it.
        let other_deadline = TrainConfig {
            episode_deadline: std::time::Duration::from_secs(999),
            ..base
        };
        assert_eq!(config_fingerprint(&base), config_fingerprint(&other_deadline));
    }
}
